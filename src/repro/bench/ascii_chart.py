"""ASCII stacked-bar rendering of latency figures.

The paper's Figs 6/7/9 are stacked bars (start-up | exec | others); this
renders the same picture in a terminal, log-free and dependency-free::

    openwhisk (c)    |SSSSSSSSSSSSSSSSEEEEEEEEEEE.| 2324.2ms
    fireworks (both) |E|                             524.3ms

``S`` = start-up, ``E`` = exec, ``.`` = others; bars scale to the widest
row.
"""

from __future__ import annotations

from typing import List

from repro.bench.results import FigureResult, LatencyRow

_SEGMENTS = (("startup_ms", "S"), ("exec_ms", "E"), ("other_ms", "."))


def render_bar(row: LatencyRow, scale_ms_per_char: float) -> str:
    """One row's stacked bar at the given scale."""
    if scale_ms_per_char <= 0:
        raise ValueError(f"scale must be positive, got {scale_ms_per_char}")
    cells: List[str] = []
    carry = 0.0
    for attribute, glyph in _SEGMENTS:
        value = getattr(row, attribute) + carry
        chars = int(value / scale_ms_per_char)
        carry = value - chars * scale_ms_per_char
        cells.append(glyph * chars)
    return "".join(cells)


def render_figure(figure: FigureResult, width: int = 60) -> str:
    """The whole figure as labeled stacked bars."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not figure.rows:
        return f"== {figure.figure_id}: {figure.title} ==\n(no rows)"
    longest_ms = max(row.total_ms for row in figure.rows)
    scale = max(longest_ms / width, 1e-9)
    label_width = max(len(row.label()) for row in figure.rows)
    lines = [f"== {figure.figure_id}: {figure.title} ==",
             f"   scale: {scale:.1f} ms/char   "
             f"S=start-up  E=exec  .=others"]
    for row in figure.rows:
        bar = render_bar(row, scale)
        lines.append(f"{row.label():<{label_width}} |{bar:<{width}}| "
                     f"{row.total_ms:9.1f}ms")
    return "\n".join(lines)
