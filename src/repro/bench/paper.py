"""The paper's headline claims, evaluated programmatically.

``headline_comparisons()`` runs the underlying experiments and returns one
:class:`PaperComparison` per claim — the machine-checked core of
EXPERIMENTS.md.  A claim *holds* when the measured value lands in the
stated band (generous: a simulator reproduces shapes, not testbeds).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.faasdom_experiments import run_fig6, run_fig7
from repro.bench.memory import fig12_improvements, run_fig10, run_fig12
from repro.bench.results import FigureResult, PaperComparison
from repro.bench.tables import run_snapshot_creation_times
from repro.config import CalibratedParameters


def _fw(figure: FigureResult):
    return figure.row("fireworks", "snapshot")


def _fc(figure: FigureResult, mode: str):
    return figure.row("firecracker", mode)


def headline_comparisons(params: Optional[CalibratedParameters] = None
                         ) -> List[PaperComparison]:
    """Evaluate every headline claim; returns them in paper order."""
    comparisons: List[PaperComparison] = []
    fig6 = run_fig6(params)
    fig7 = run_fig7(params)

    def add(metric: str, paper: str, measured: float, lo: float,
            hi: float, fmt: str = "{:.1f}x", comment: str = "") -> None:
        comparisons.append(PaperComparison(
            metric=metric, paper_value=paper,
            measured_value=fmt.format(measured),
            holds=lo <= measured <= hi, comment=comment))

    # -- Fig 6 (Node.js) -----------------------------------------------------
    fact6 = fig6["faas-fact"]
    add("Node fact cold start-up speedup", "up to 133x",
        _fc(fact6, "cold").startup_ms / _fw(fact6).startup_ms, 80, 200,
        "{:.0f}x")
    add("Node fact warm start-up speedup", "up to 3.8x",
        _fc(fact6, "warm").startup_ms / _fw(fact6).startup_ms, 2.0, 6.0)
    add("Node fact exec improvement (cold)", "38% faster",
        100 * (1 - _fw(fact6).exec_ms / _fc(fact6, "cold").exec_ms),
        25, 50, "{:.0f}%")
    diskio6 = fig6["faas-diskio"]
    add("Node diskio exec vs slowest framework", "up to 9.2x",
        diskio6.row("gvisor", "cold").exec_ms / _fw(diskio6).exec_ms,
        6, 12)
    net6 = fig6["faas-netlatency"]
    add("Node netlatency e2e vs worst cold", "22x",
        max(net6.row(p, "cold").total_ms
            for p in ("openwhisk", "gvisor", "firecracker"))
        / _fw(net6).total_ms, 20, 150,
        comment="start-up is workload-independent here, inflating the "
                "short-benchmark ratio")

    # -- Fig 7 (Python) -------------------------------------------------------
    fact7 = fig7["faas-fact"]
    add("Python fact cold start-up speedup", "59.8x",
        _fc(fact7, "cold").startup_ms / _fw(fact7).startup_ms, 40, 90,
        "{:.0f}x")
    add("Python fact exec speedup (Numba)", "20x",
        _fc(fact7, "cold").exec_ms / _fw(fact7).exec_ms, 15, 25)
    matmul7 = fig7["faas-matrix-mult"]
    add("Python matmul exec speedup", "up to 80x",
        _fc(matmul7, "cold").exec_ms / _fw(matmul7).exec_ms, 55, 95,
        "{:.0f}x")

    # -- Fig 10 ------------------------------------------------------------------
    fig10 = run_fig10(params, sample_every=200)
    fw_vms = fig10["fireworks"].max_vms_before_swap
    fc_vms = fig10["firecracker"].max_vms_before_swap
    add("microVMs before swapping (Firecracker)", "337", float(fc_vms),
        280, 400, "{:.0f}")
    add("microVMs before swapping (Fireworks)", "565", float(fw_vms),
        480, 650, "{:.0f}")
    add("consolidation ratio", "1.68x", fw_vms / fc_vms, 1.45, 1.95,
        "{:.2f}x")

    # -- Fig 12 ------------------------------------------------------------------
    improvements = fig12_improvements(
        run_fig12(params, benchmarks=["faas-fact"]))
    add("Node post-JIT extra memory saving", "up to 74%",
        improvements["faas-fact-nodejs"]["post_jit_vs_os_snapshot_pct"],
        25, 80, "{:.0f}%")
    add("Python post-JIT extra memory saving", "none (Numba duplication)",
        improvements["faas-fact-python"]["post_jit_vs_os_snapshot_pct"],
        -40, 10, "{:.0f}%")

    # -- §5.1 snapshot creation -----------------------------------------------
    creation = run_snapshot_creation_times(params)
    node_times = [v["snapshot_ms"] for k, v in creation.items()
                  if k.endswith("nodejs")]
    add("snapshot creation, Node.js", "0.36-0.47 s",
        max(node_times) / 1000.0, 0.36, 0.47, "{:.2f}s")
    python_times = [v["snapshot_ms"] for k, v in creation.items()
                    if k.endswith("python")]
    add("snapshot creation, Python", "0.38-0.44 s",
        max(python_times) / 1000.0, 0.36, 0.47, "{:.2f}s")

    return comparisons


def comparison_summary(
        comparisons: List[PaperComparison]) -> Dict[str, int]:
    """How many claims hold vs deviate."""
    holds = sum(1 for c in comparisons if c.holds)
    return {"total": len(comparisons), "holds": holds,
            "deviates": len(comparisons) - holds}
