"""Restore-path experiment (extension): lazy loading + streaming transfer.

Two questions, one figure (``repro figure restore`` / ``repro restore``):

1. **Restore latency and bytes-moved per backend per policy.**  Each
   (backend, policy, language) cell installs one FaaSdom function and
   invokes it repeatedly; the first restore is the *cold* row (no recorded
   working set yet), the later restores are the *warm* row (profile
   recorded by the first invocation).  Backends: ``fireworks`` (post-JIT
   snapshot, working-set recorder wired) and ``fc-snapshot`` (Firecracker
   OS-stage snapshot, no recorder — the honest recorder-less contrast:
   ``lazy`` there demand-faults everything, every time).  The headline is
   the warm ``lazy`` cell: it must move fewer bytes than whole-image
   prefetch (``reap`` with no profile) at equal-or-better latency.

2. **Streaming vs full cross-host transfer, 4 hosts.**  The same
   round-robin trace replayed with ``cluster.stream_transfers`` off and
   on: with streaming, an off-home placement becomes runnable as soon as
   the recorded working-set chunks land; the residual streams in the
   background.  The headline is time-to-runnable (end-to-end latency of
   requests that paid a transfer) dropping while total bytes moved stay
   equal — they just move off the critical path.

All latencies and byte counts come from the invocation span trees
(``restore`` / ``snapshot-transfer`` spans and their children), so the
figure measures exactly what the traces tell.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import (fresh_cluster_platform, fresh_platform,
                                 install_all, invoke_once)
from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.errors import ValidationError
from repro.platforms.firecracker import FirecrackerSnapshotPlatform
from repro.platforms.scheduler import POLICY_ROUND_ROBIN
from repro.snapshot.restorer import (POLICY_DEMAND, POLICY_DEMAND_COLD,
                                     POLICY_LAZY, POLICY_REAP)
from repro.workloads.faasdom import faasdom_spec

#: (backend, policy, language) cells of the per-policy half of the figure.
#: fireworks runs every policy on both paper languages; fc-snapshot (no
#: working-set recorder) contributes the recorder-less demand/lazy rows.
RESTORE_CELLS: Tuple[Tuple[str, str, str], ...] = tuple(
    [("fireworks", policy, language)
     for language in ("nodejs", "python")
     for policy in (POLICY_DEMAND, POLICY_DEMAND_COLD,
                    POLICY_REAP, POLICY_LAZY)]
    + [("fc-snapshot", POLICY_DEMAND, "nodejs"),
       ("fc-snapshot", POLICY_LAZY, "nodejs")])

#: Transfer modes of the streaming half.
STREAM_MODES: Tuple[str, ...] = ("full", "streaming")

#: Restores measured per cell: 1 cold + the rest warm (profile recorded).
WARM_RESTORES = 4

#: Round-robin invocations of the 4-host streaming trace.
STREAM_REQUESTS = 12
STREAM_HOSTS = 4


@dataclasses.dataclass(frozen=True)
class RestorePolicyOutcome:
    """One (backend, policy, language) cell of the restore figure."""

    backend: str
    policy: str
    language: str
    image_mb: float
    cold_restore_ms: float       # first restore: no working set recorded
    warm_restore_ms: float       # mean of the profile-guided restores
    cold_bytes_mb: float         # bytes read from the store file, cold
    warm_bytes_mb: float         # bytes read from the store file, warm
    warm_prefetched_mb: float    # lazy only: sequential chunk prefetch
    warm_demand_faulted_mb: float  # lazy only: demand-faulted residual

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.backend:<12} {self.policy:<12} {self.language:<7} "
                f"image={self.image_mb:6.1f}MiB "
                f"cold={self.cold_restore_ms:7.2f}ms/"
                f"{self.cold_bytes_mb:6.1f}MiB "
                f"warm={self.warm_restore_ms:7.2f}ms/"
                f"{self.warm_bytes_mb:6.1f}MiB "
                f"(prefetch={self.warm_prefetched_mb:5.1f} "
                f"fault={self.warm_demand_faulted_mb:5.1f})")


@dataclasses.dataclass(frozen=True)
class StreamingOutcome:
    """One transfer mode of the 4-host streaming comparison."""

    mode: str
    n_hosts: int
    requests: int
    transfers: int               # cross-host transfers paid
    streamed_transfers: int      # of which streamed the working set first
    mean_transfer_ms: float      # mean snapshot-transfer span duration
    mean_off_home_total_ms: float  # end-to-end latency of transfer-paying
    #                                requests: the time-to-runnable headline
    max_off_home_total_ms: float
    foreground_mb: float         # bytes moved on the critical path
    background_mb: float         # bytes streamed behind it
    stores_complete: bool        # every replica fully resident after drain

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.mode:<10} hosts={self.n_hosts} "
                f"req={self.requests:3d} transfers={self.transfers} "
                f"(streamed={self.streamed_transfers}) "
                f"xfer={self.mean_transfer_ms:7.2f}ms "
                f"off-home={self.mean_off_home_total_ms:7.2f}ms "
                f"(max={self.max_off_home_total_ms:7.2f}) "
                f"fg={self.foreground_mb:6.1f}MiB "
                f"bg={self.background_mb:6.1f}MiB "
                f"complete={self.stores_complete}")


def _restore_span_of(record):
    span = record.span.find("restore")
    if span is None:
        raise ValidationError(
            f"invocation {record.request_id} has no restore span")
    return span


def run_restore_policy(backend: str, policy: str, language: str,
                       params: Optional[CalibratedParameters] = None,
                       seed: int = 2022) -> RestorePolicyOutcome:
    """Measure one (backend, policy, language) cell from its span trees."""
    resolved = params or default_parameters()
    if backend == "fireworks":
        platform = fresh_platform(FireworksPlatform, resolved, seed=seed,
                                  restore_policy=policy)
    elif backend == "fc-snapshot":
        platform = fresh_platform(FirecrackerSnapshotPlatform, resolved,
                                  seed=seed, restore_policy=policy)
    else:
        raise ValidationError(f"unknown restore backend {backend!r}")
    spec = faasdom_spec("faas-fact", language)
    install_all(platform, [spec])

    spans = []
    for _ in range(1 + WARM_RESTORES):
        record = invoke_once(platform, spec.name)
        spans.append(_restore_span_of(record))

    cold, warm = spans[0], spans[1:]
    warm_lazy = [s for s in warm if s.attrs.get("prefetched_mb") is not None]
    return RestorePolicyOutcome(
        backend=backend,
        policy=policy,
        language=language,
        image_mb=cold.attrs["image_mb"],
        cold_restore_ms=cold.duration_ms,
        warm_restore_ms=sum(s.duration_ms for s in warm) / len(warm),
        cold_bytes_mb=cold.attrs["bytes_moved_mb"],
        warm_bytes_mb=(sum(s.attrs["bytes_moved_mb"] for s in warm)
                       / len(warm)),
        warm_prefetched_mb=(sum(s.attrs["prefetched_mb"] for s in warm_lazy)
                            / len(warm_lazy) if warm_lazy else 0.0),
        warm_demand_faulted_mb=(
            sum(s.attrs["demand_faulted_mb"] for s in warm_lazy)
            / len(warm_lazy) if warm_lazy else 0.0),
    )


def run_streaming_transfer(mode: str,
                           params: Optional[CalibratedParameters] = None,
                           seed: int = 2022) -> StreamingOutcome:
    """Replay a round-robin 4-host trace under one transfer *mode*."""
    if mode not in STREAM_MODES:
        raise ValidationError(f"unknown transfer mode {mode!r}")
    resolved = params or default_parameters()
    tuned = dataclasses.replace(
        resolved, cluster=dataclasses.replace(
            resolved.cluster, stream_transfers=(mode == "streaming")))
    platform = fresh_cluster_platform(
        FireworksPlatform, tuned, seed=seed, n_hosts=STREAM_HOSTS,
        policy=POLICY_ROUND_ROBIN, restore_policy=POLICY_LAZY)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])

    transfer_ms: List[float] = []
    off_home_totals: List[float] = []
    for _ in range(STREAM_REQUESTS):
        record = invoke_once(platform, spec.name)
        transfers = record.span.find_all("snapshot-transfer")
        if transfers:
            transfer_ms.extend(s.duration_ms for s in transfers)
            off_home_totals.append(record.total_ms)
    # Let background residual streams finish, then audit residency.
    platform.sim.run()
    stores_complete = all(
        host.store.is_complete(spec.name)
        for host in platform.cluster.hosts
        if host.store.contains(spec.name))

    return StreamingOutcome(
        mode=mode,
        n_hosts=STREAM_HOSTS,
        requests=STREAM_REQUESTS,
        transfers=platform.cross_host_transfers,
        streamed_transfers=platform.streamed_transfers,
        mean_transfer_ms=(sum(transfer_ms) / len(transfer_ms)
                          if transfer_ms else 0.0),
        mean_off_home_total_ms=(sum(off_home_totals) / len(off_home_totals)
                                if off_home_totals else 0.0),
        max_off_home_total_ms=max(off_home_totals) if off_home_totals
        else 0.0,
        foreground_mb=platform.transfer_foreground_mb,
        background_mb=platform.transfer_background_mb,
        stores_complete=stores_complete,
    )


def run_restore_figure(params: Optional[CalibratedParameters] = None,
                       seed: int = 2022) -> Dict[str, object]:
    """Every cell of the restore figure, serially (the CLI fast path; the
    parallel engine shards the same cells)."""
    results: Dict[str, object] = {}
    for backend, policy, language in RESTORE_CELLS:
        results[f"{backend}@{policy}@{language}"] = run_restore_policy(
            backend, policy, language, params=params, seed=seed)
    for mode in STREAM_MODES:
        results[f"stream@{mode}"] = run_streaming_transfer(
            mode, params=params, seed=seed)
    return results


def render_restore_figure(results: Dict[str, object]) -> List[str]:
    """The figure as printable lines (CLI + smoke-diff friendly)."""
    lines = ["restore latency / bytes moved per backend per policy "
             f"({WARM_RESTORES} warm restores per cell):"]
    for backend, policy, language in RESTORE_CELLS:
        lines.append("  " + results[f"{backend}@{policy}@{language}"]
                     .as_line())
    lines.append("")
    lines.append(f"cross-host transfer, {STREAM_HOSTS} hosts, round-robin, "
                 "lazy restore:")
    for mode in STREAM_MODES:
        lines.append("  " + results[f"stream@{mode}"].as_line())
    return lines
