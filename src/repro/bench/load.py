"""Open-loop load experiment (extension): the serving layer under
sustained Azure-like traffic.

Replays a Poisson-modulated trace (sinusoidally swinging arrival rates —
the diurnal pattern compressed to a minutes-long period) *open loop*
across a 4-host cluster: every submission fires at its trace time as its
own process, whether or not earlier requests finished, so queueing is
real — a slow backend builds depth, sheds load, and pays tail latency.

Per (backend × scaling mode) it reports p50/p99 end-to-end latency,
queue wait, shed rate, goodput, cold-start share, and the warm-pool
memory footprint, for three warm-pool scaling modes under identical
admission bounds:

* ``none`` — admission control only, no pre-provisioning;
* ``reactive`` — scale up after queue pressure is observed;
* ``predictive`` — pre-provision from arrival-gap histograms *before*
  the predicted arrival.

Everything derives from *seed*: the popularity split, the modulated
trace, and the simulation — two identically-seeded runs are
byte-identical (the seeded E2E determinism test locks this).
"""

from __future__ import annotations

import dataclasses
from array import array
from typing import Dict, Optional, Sequence, Tuple

from repro.autoscale import WarmPoolAutoscaler
from repro.bench.harness import fresh_cluster_platform, install_all
from repro.bench.stats import LatencyStats, percentile
from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.errors import InvocationFailedError, InvocationSheddedError
from repro.platforms.base import MODE_WARM
from repro.platforms.catalyzer import CatalyzerPlatform
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.gvisor_platform import GVisorPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.platforms.scheduler import POLICY_HASH
from repro.policy import default_registry
from repro.sim.rng import RngStreams
from repro.workloads.faasdom import faasdom_spec
from repro.workloads.generator import (assign_popularity,
                                       modulated_poisson_trace)

#: The five backends of the paper's evaluation (incl. the measured
#: Catalyzer baseline extension).
LOAD_PLATFORMS = {
    "fireworks": FireworksPlatform,
    "openwhisk": OpenWhiskPlatform,
    "firecracker": FirecrackerPlatform,
    "gvisor": GVisorPlatform,
    "catalyzer": CatalyzerPlatform,
}

#: Warm-pool scaling modes, all under the same admission bounds — the
#: registered built-in autoscale policies, in registry order.
LOAD_MODES = default_registry().names("autoscale")

#: Defaults sized for the saturation knee of a 4-host cluster: the four
#: popular functions swing around ~100 req/s each (~10⁵ invocations over
#: the default window), so modulation crests push the cluster past its
#: 12 concurrent slots for a fast backend — queueing and shedding become
#: visible — while troughs let it drain.  Slow backends saturate outright
#: and live or die by their warm pools.
DEFAULT_N_HOSTS = 4
DEFAULT_N_FUNCTIONS = 22
DEFAULT_DURATION_MS = 240_000.0
DEFAULT_CAPACITY_PER_HOST = 3
DEFAULT_POPULAR_INTERARRIVAL_MS = 10.0
DEFAULT_RARE_INTERARRIVAL_MS = 60_000.0
DEFAULT_MODULATION_PERIOD_MS = 60_000.0
DEFAULT_MODULATION_DEPTH = 0.6
DEFAULT_KEEPALIVE_MS = 30_000.0
DEFAULT_SAMPLE_INTERVAL_MS = 2000.0
DEFAULT_SEED = 2022


@dataclasses.dataclass(frozen=True)
class LoadOutcome:
    """One (backend, scaling mode) row of the load experiment."""

    platform: str
    mode: str                     # none | reactive | predictive
    n_hosts: int
    requests: int                 # submitted
    completed: int
    shed: int
    failed: int
    latency: LatencyStats         # end-to-end, completed requests only
    queue_wait_p50_ms: float
    queue_wait_p99_ms: float
    warm_starts: int              # completed with a pooled/warm worker
    provisioned: int              # autoscaler provisioning actions
    peak_warm_mb: float           # max Σ pool PSS over the run
    mean_warm_mb: float

    @property
    def shed_rate(self) -> float:
        """Shed / submitted."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def goodput(self) -> float:
        """Completed / submitted."""
        return self.completed / self.requests if self.requests else 1.0

    @property
    def cold_start_share(self) -> float:
        """Fraction of completed requests that did *not* hit a warm
        worker (for Fireworks: paid the restore on the critical path)."""
        if self.completed == 0:
            return 0.0
        return 1.0 - self.warm_starts / self.completed

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.platform:<12} {self.mode:<10} "
                f"p50={self.latency.p50_ms:8.1f}ms "
                f"p99={self.latency.p99_ms:9.1f}ms "
                f"qwait-p99={self.queue_wait_p99_ms:8.1f}ms "
                f"shed={self.shed_rate:7.3%} "
                f"cold={self.cold_start_share:7.2%} "
                f"goodput={self.goodput:7.3%} "
                f"warm-mem peak={self.peak_warm_mb:7.1f}MiB "
                f"mean={self.mean_warm_mb:7.1f}MiB")


def _empty_latency() -> LatencyStats:
    return LatencyStats(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                        p99_ms=0.0, max_ms=0.0)


def _submit(platform, function: str):
    """One open-loop submission: sheds and failures are accounted on the
    platform (``shedded_invocations`` / ``failed_invocations``), never
    crash the replay."""
    try:
        yield from platform.invoke(function)
    except InvocationSheddedError:
        pass
    except InvocationFailedError:
        pass


def _start_memory_sampler(platform, until_ms: float, interval_ms: float,
                          samples: "array") -> None:
    """Periodic Σ pool-PSS sampler (runs for all modes, so the memory
    comparison is apples-to-apples even without an active scaler).

    Rides the kernel's pooled fast-path timers: the sampler is
    fire-and-forget, so a generator process per run was pure overhead.
    """
    sim = platform.sim
    hosts = platform.cluster.hosts

    def tick(_value) -> None:
        samples.append(sum(host.pool.total_pss_mb(sim.now)
                           for host in hosts))
        if sim.now + interval_ms <= until_ms:
            sim.schedule_timeout(interval_ms, tick)

    if sim.now + interval_ms <= until_ms:
        sim.schedule_timeout(interval_ms, tick)


def open_loop_replay(platform, trace, duration_ms: float,
                     sample_interval_ms: float = DEFAULT_SAMPLE_INTERVAL_MS
                     ) -> "array":
    """Fire every trace event at its time as a detached process, then
    drain.  Returns the warm-memory samples (an ``array('d')``).

    Trace times are relative to *now* (installs already advanced the
    clock), so event ``at_ms`` fires at ``start + at_ms``.
    """
    sim = platform.sim
    start_ms = sim.now
    samples = array("d")
    _start_memory_sampler(platform, start_ms + duration_ms,
                          sample_interval_ms, samples)
    for event in trace:
        at_ms = start_ms + event.at_ms
        if sim.now < at_ms:
            sim.run(until=at_ms)
        sim.process(_submit(platform, event.function),
                    name=f"load:{event.function}")
    sim.run()   # drain in-flight requests, reclamation, the scaler
    return samples


def build_load_trace(n_functions: int, duration_ms: float, seed: int,
                     popular_interarrival_ms: float =
                     DEFAULT_POPULAR_INTERARRIVAL_MS,
                     rare_interarrival_ms: float =
                     DEFAULT_RARE_INTERARRIVAL_MS,
                     period_ms: float = DEFAULT_MODULATION_PERIOD_MS,
                     depth: float = DEFAULT_MODULATION_DEPTH):
    """The (popularity, trace) pair every row of one run replays."""
    rng = RngStreams(seed)
    function_names = [f"fn-{i:02d}" for i in range(n_functions)]
    popularity = assign_popularity(
        function_names, rng,
        popular_interarrival_ms=popular_interarrival_ms,
        rare_interarrival_ms=rare_interarrival_ms)
    trace = modulated_poisson_trace(popularity, duration_ms, rng,
                                    period_ms=period_ms, depth=depth)
    return function_names, trace


def _load_specs(function_names: Sequence[str]):
    base_spec = faasdom_spec("faas-netlatency", "nodejs")
    return [base_spec.__class__(
        name=name, language=base_spec.language, app=base_spec.app,
        make_program=base_spec.make_program, source=base_spec.source,
        description=base_spec.description,
        benchmark_suite=base_spec.benchmark_suite)
        for name in function_names]


def _tuned_params(params: Optional[CalibratedParameters],
                  keepalive_ms: float) -> CalibratedParameters:
    resolved = params or default_parameters()
    return dataclasses.replace(
        resolved,
        control_plane=dataclasses.replace(
            resolved.control_plane, warm_keepalive_ms=keepalive_ms),
        autoscale=dataclasses.replace(resolved.autoscale, enabled=True))


def run_load_platform(
        platform_name: str,
        mode: str,
        params: Optional[CalibratedParameters] = None,
        n_hosts: int = DEFAULT_N_HOSTS,
        n_functions: int = DEFAULT_N_FUNCTIONS,
        duration_ms: float = DEFAULT_DURATION_MS,
        seed: int = DEFAULT_SEED,
        capacity_per_host: int = DEFAULT_CAPACITY_PER_HOST,
        keepalive_ms: float = DEFAULT_KEEPALIVE_MS,
        popular_interarrival_ms: float = DEFAULT_POPULAR_INTERARRIVAL_MS,
        rare_interarrival_ms: float = DEFAULT_RARE_INTERARRIVAL_MS,
        chaos_plan=None, return_platform: bool = False,
        placement_policy=POLICY_HASH, autoscale_policy=None):
    """One (backend, mode) row: fresh cluster, same seed, same trace.

    *chaos_plan* optionally attaches a
    :class:`~repro.chaos.HostFailureController`, with plan times
    relative to the trace like everything else (the determinism test
    crashes a host mid-trace through this hook).  *return_platform*
    additionally returns the drained platform so tests can audit
    end-state invariants (no leaked queue slots or warm workers).

    *placement_policy* and *autoscale_policy* accept anything the policy
    registry resolves — a registered name, a DSL document, or a policy
    instance (``repro search`` sweeps documents through these).  When
    *autoscale_policy* is given it overrides *mode*; the outcome's
    ``mode`` field reports the resolved policy's name either way.
    """
    if platform_name not in LOAD_PLATFORMS:
        raise KeyError(f"unknown load platform {platform_name!r}; "
                       f"pick one of {tuple(LOAD_PLATFORMS)}")
    if autoscale_policy is None:
        # Unknown mode names fail here, at config-parse time, with the
        # registered names (ValidationError).
        default_registry().entry("autoscale", mode)
    tuned = _tuned_params(params, keepalive_ms)
    function_names, trace = build_load_trace(
        n_functions, duration_ms, seed,
        popular_interarrival_ms=popular_interarrival_ms,
        rare_interarrival_ms=rare_interarrival_ms)
    platform = fresh_cluster_platform(
        LOAD_PLATFORMS[platform_name], tuned, seed=seed, n_hosts=n_hosts,
        policy=placement_policy, capacity_per_host=capacity_per_host)
    install_all(platform, _load_specs(function_names))
    # Installs advance the clock; the replay (and the scaler's control
    # loop) run over [start, start + duration].
    start_ms = platform.sim.now
    scaler = WarmPoolAutoscaler(platform, mode=mode,
                                until_ms=start_ms + duration_ms,
                                policy=autoscale_policy)
    if chaos_plan is not None:
        from repro.chaos import HostFailureController
        from repro.chaos.plan import ChaosPlan
        # Plan times are trace-relative, like the trace itself.
        shifted = ChaosPlan([
            dataclasses.replace(event, at_ms=start_ms + event.at_ms)
            for event in chaos_plan.events])
        HostFailureController(platform, shifted, failover=True)

    samples = open_loop_replay(platform, trace, duration_ms)

    latencies = array("d", (record.total_ms for record in platform.records))
    waits = array("d", (record.queue_wait_ms for record in platform.records))
    warm = sum(1 for record in platform.records
               if record.mode == MODE_WARM)
    outcome = LoadOutcome(
        platform=platform_name,
        mode=scaler.mode,
        n_hosts=n_hosts,
        requests=len(trace),
        completed=len(platform.records),
        shed=len(platform.shedded_invocations),
        failed=len(platform.failed_invocations),
        latency=(LatencyStats.from_samples(latencies) if latencies
                 else _empty_latency()),
        queue_wait_p50_ms=percentile(waits, 50) if waits else 0.0,
        queue_wait_p99_ms=percentile(waits, 99) if waits else 0.0,
        warm_starts=warm,
        provisioned=scaler.provisioned,
        peak_warm_mb=max(samples) if samples else 0.0,
        mean_warm_mb=(sum(samples) / len(samples)) if samples else 0.0)
    if return_platform:
        return outcome, platform
    return outcome


def run_load_experiment(
        params: Optional[CalibratedParameters] = None,
        platforms: Sequence[str] = tuple(LOAD_PLATFORMS),
        modes: Sequence[str] = LOAD_MODES,
        seed: int = DEFAULT_SEED,
        **kwargs) -> Dict[Tuple[str, str], LoadOutcome]:
    """Every (backend, mode) row, keyed ``(platform, mode)``."""
    outcomes: Dict[Tuple[str, str], LoadOutcome] = {}
    for platform_name in platforms:
        for mode in modes:
            outcomes[(platform_name, mode)] = run_load_platform(
                platform_name, mode, params=params, seed=seed, **kwargs)
    return outcomes
