"""Chaos experiment (extension): the cluster trace under host failure.

Replays the same Azure-like trace as :mod:`repro.bench.cluster` on a
Fireworks cluster while a :class:`~repro.chaos.HostFailureController`
crashes one host mid-trace, and reports per policy:

* **availability** — completed / submitted requests (failed invocations
  are first-class results, not crashes);
* **p99 under failure** — tail latency of the requests that *did*
  complete, retries and failovers included;
* **recovery time** — from the crash to the completion of the first
  request submitted after it.

Two policy rows run with and without platform failover (Fireworks
regenerating a snapshot whose every replica died with the crashed host),
which separates the two recovery mechanisms: *rerouting* (retry loop +
placement skipping dead hosts — always on) and *state repair* (failover
regeneration — gated).  ``snapshot-locality`` keeps each image on its
home host only, so the crash hurts it most without repair and least with
it; ``round-robin`` pre-replicates popular images everywhere but strands
rare functions whose only replica died.

Everything is seeded: the trace, the plan, and the retry jitter all
derive from *seed*, so two identically-seeded runs are byte-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.cluster import (KEEPALIVE_MS, POPULAR_INTERARRIVAL_MS,
                                 RARE_INTERARRIVAL_MS)
from repro.bench.harness import (fresh_cluster_platform, install_all,
                                 invoke_once)
from repro.bench.stats import LatencyStats
from repro.chaos import (KIND_BUS_PARTITION, KIND_HOST_CRASH, ChaosEvent,
                         ChaosPlan, HostFailureController)
from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.errors import InvocationFailedError
from repro.faults import FaultInjector
from repro.platforms.scheduler import (POLICY_ROUND_ROBIN,
                                       POLICY_SNAPSHOT_LOCALITY, home_index)
from repro.sim.rng import RngStreams
from repro.workloads.faasdom import faasdom_spec
from repro.workloads.generator import assign_popularity, poisson_trace

#: Mid-trace crash: late enough that warm state and locality built up,
#: early enough that recovery behaviour dominates the remaining half.
DEFAULT_CRASH_AT_MS = 300_000.0

#: The (policy, failover) rows every chaos run reports.
DEFAULT_ROWS: Tuple[Tuple[str, bool], ...] = (
    (POLICY_ROUND_ROBIN, False),
    (POLICY_ROUND_ROBIN, True),
    (POLICY_SNAPSHOT_LOCALITY, False),
    (POLICY_SNAPSHOT_LOCALITY, True),
)


@dataclasses.dataclass(frozen=True)
class ChaosOutcome:
    """One (policy, failover) row's outcome under the fault plan."""

    label: str
    policy: str
    failover: bool
    n_hosts: int
    crash_host: int
    crash_at_ms: float
    requests: int
    completed: int
    failed: int
    latency: LatencyStats        # completed requests only
    recovery_ms: float           # crash -> first post-crash completion
    retries: int
    failovers: int
    regenerations: int

    @property
    def availability(self) -> float:
        """Completed / submitted over the whole trace."""
        if self.requests == 0:
            return 1.0
        return self.completed / self.requests

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        recovery = (f"{self.recovery_ms:8.1f}ms" if self.recovery_ms >= 0
                    else "     n/a")
        return (f"{self.label:<26} avail={self.availability:8.4%} "
                f"failed={self.failed:3d}/{self.requests} "
                f"p99={self.latency.p99_ms:8.1f}ms "
                f"recovery={recovery} "
                f"retries={self.retries:3d} failovers={self.failovers:3d} "
                f"regen={self.regenerations:2d}")


def _chaos_replay(platform, trace) -> Tuple[List[float], int]:
    """Replay *trace*; failed invocations are counted, not raised."""
    latencies: List[float] = []
    failed = 0
    for event in trace:
        if platform.sim.now < event.at_ms:
            platform.sim.run(until=event.at_ms)
        try:
            record = invoke_once(platform, event.function)
            latencies.append(record.total_ms)
        except InvocationFailedError:
            failed += 1
    return latencies, failed


def _recovery_ms(platform, crash_at_ms: float) -> float:
    """Crash-to-first-completion among requests submitted after it."""
    post = [record.completed_ms for record in platform.records
            if record.submitted_ms >= crash_at_ms
            and record.completed_ms is not None]
    if not post:
        return -1.0
    return min(post) - crash_at_ms


def default_crash_host(function_names: Sequence[str], n_hosts: int) -> int:
    """The host that is home to the most functions.

    Crashing the busiest home host maximises the state lost with the
    machine, which is what separates the policies: rare functions homed
    there lose their only snapshot replica.
    """
    counts = [0] * n_hosts
    for name in function_names:
        counts[home_index(name, n_hosts)] += 1
    return max(range(n_hosts), key=lambda host_id: counts[host_id])


def run_chaos_experiment(
        params: Optional[CalibratedParameters] = None,
        n_hosts: int = 4,
        n_functions: int = 12,
        duration_ms: float = 600_000.0,
        seed: int = 11,
        crash_at_ms: float = DEFAULT_CRASH_AT_MS,
        crash_host: Optional[int] = None,
        rows: Sequence[Tuple[str, bool]] = DEFAULT_ROWS
        ) -> Dict[str, ChaosOutcome]:
    """Availability, p99-under-failure and recovery time per policy.

    The same deterministic trace and the same fault plan (one host crash
    at *crash_at_ms*) are replayed for every row, so the rows differ only
    by placement policy and by whether platform failover (snapshot
    regeneration) is enabled.
    """
    resolved = params or default_parameters()
    tuned = dataclasses.replace(
        resolved, control_plane=dataclasses.replace(
            resolved.control_plane, warm_keepalive_ms=KEEPALIVE_MS))

    rng = RngStreams(seed)
    function_names = [f"fn-{i:02d}" for i in range(n_functions)]
    popularity = assign_popularity(
        function_names, rng,
        popular_interarrival_ms=POPULAR_INTERARRIVAL_MS,
        rare_interarrival_ms=RARE_INTERARRIVAL_MS)
    trace = poisson_trace(popularity, duration_ms, rng)

    base_spec = faasdom_spec("faas-netlatency", "nodejs")
    specs = [base_spec.__class__(
        name=name, language=base_spec.language, app=base_spec.app,
        make_program=base_spec.make_program, source=base_spec.source,
        description=base_spec.description,
        benchmark_suite=base_spec.benchmark_suite)
        for name in function_names]

    if crash_host is None:
        crash_host = default_crash_host(function_names, n_hosts)
    plan_events = [ChaosEvent(crash_at_ms, KIND_HOST_CRASH,
                              host_id=crash_host)]
    # A transient bus blip straddling one pre-crash submission exercises
    # the retry/backoff path on every row: the first dispatch attempt
    # fails, the backoff outlives the 1 ms window, the retry succeeds.
    blip = next((event for event in trace
                 if 100_000.0 <= event.at_ms < crash_at_ms), None)
    if blip is not None:
        plan_events.append(ChaosEvent(max(0.0, blip.at_ms - 0.5),
                                      KIND_BUS_PARTITION, duration_ms=1.0))
    plan = ChaosPlan(plan_events)

    outcomes: Dict[str, ChaosOutcome] = {}
    for policy, failover in rows:
        label = f"{policy}+failover" if failover else policy
        # A fresh injector per run: armed budgets must never leak across
        # repetitions (the engine's cache depends on runs being pure).
        faults = FaultInjector()
        platform = fresh_cluster_platform(
            FireworksPlatform, tuned, seed=seed, n_hosts=n_hosts,
            policy=policy, faults=faults)
        install_all(platform, specs)
        # One armed snapshot corruption exercises the §6 regeneration
        # path under chaos too (deterministic: same budget every row).
        faults.arm("restore", function_names[0], count=1)
        HostFailureController(platform, plan, failover=failover)

        latencies, failed = _chaos_replay(platform, trace)
        platform.sim.run()  # drain clone teardowns + chaos reclamation
        outcomes[label] = ChaosOutcome(
            label=label,
            policy=policy,
            failover=failover,
            n_hosts=n_hosts,
            crash_host=crash_host,
            crash_at_ms=crash_at_ms,
            requests=len(trace),
            completed=len(latencies),
            failed=failed,
            latency=LatencyStats.from_samples(latencies),
            recovery_ms=_recovery_ms(platform, crash_at_ms),
            retries=platform.retries,
            failovers=platform.failovers,
            regenerations=platform.regenerations)
    return outcomes
