"""Figure 9: the real-world ServerlessBench applications.

Both applications run through the DAG chain executor
(:class:`repro.platforms.chains.ChainExecutor`), which installs the
functions, wires the CouchDB trigger edges, and drives the chains —
on chain-capable backends in guest mode (byte-identical to invoking the
entry function directly, which the golden Fig 9 hash pins), and on every
other backend in orchestrated mode.  The paper's figure compares
OpenWhisk and Fireworks; latency is aggregated over the whole chain
(every function's start-up and exec summed, as the stacked bars do).

For the data-analysis app, the insertion chain (da-input -> da-format ->
CouchDB) and the triggered analysis chain (da-analyze -> da-stats) are
reported separately, matching the paper's two sets of ratios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.bench.harness import drain, fresh_platform
from repro.bench.results import FigureResult, LatencyRow
from repro.config import CalibratedParameters
from repro.core.fireworks import FireworksPlatform
from repro.errors import PlatformError
from repro.platforms.base import InvocationRecord, ServerlessPlatform
from repro.platforms.chains import MODE_GUEST, ChainExecutor, DagRun
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.workloads.serverlessbench import (ALEXA_SKILLS,
                                             alexa_skills_dag,
                                             data_analysis_dag)

#: The paper's Fig 9 comparison pair.  Any backend in
#: ``repro.bench.load.LOAD_PLATFORMS`` works here — the executor
#: orchestrates chains for backends without guest-chain support.
FIG9_PLATFORMS = (OpenWhiskPlatform, FireworksPlatform)


def _top_records(runs: List[DagRun]) -> List[InvocationRecord]:
    """The top-level records of *runs*: the entry record per guest run
    (its chain children hang off it), every stage record otherwise."""
    records: List[InvocationRecord] = []
    for run in runs:
        if run.mode == MODE_GUEST:
            if run.entry_record is not None:
                records.append(run.entry_record)
        else:
            records.extend(result.record for result in run.executed()
                           if result.record is not None)
    return records


def _chain_row(records: List[InvocationRecord], platform: str,
               mode: str) -> LatencyRow:
    return LatencyRow(
        platform=platform, mode=mode,
        startup_ms=sum(r.chain_startup_ms() for r in records),
        exec_ms=sum(r.chain_exec_ms() for r in records),
        other_ms=sum(r.chain_other_ms() for r in records))


def _run_alexa(platform_cls: Type[ServerlessPlatform],
               params: Optional[CalibratedParameters]) -> LatencyRow:
    """§5.3(1): ask a fact, check the schedule, check the smart home."""
    platform = fresh_platform(platform_cls, params)
    executor = ChainExecutor(platform)
    dag = alexa_skills_dag()
    executor.install(dag)
    runs = [executor.run(dag, payload={"skill": skill})
            for skill in ALEXA_SKILLS]
    drain(platform)
    return _chain_row(_top_records(runs), platform.name, "chain")


def _run_data_analysis(platform_cls: Type[ServerlessPlatform],
                       params: Optional[CalibratedParameters]
                       ) -> Dict[str, LatencyRow]:
    """§5.3(2): wage insertion, then the db-triggered analysis chain."""
    platform = fresh_platform(platform_cls, params)
    executor = ChainExecutor(platform)
    dag = data_analysis_dag()
    executor.install(dag)  # functions + the wages-db trigger edge

    insertion = executor.run(dag, payload={"name": "alice", "id": "e1",
                                           "role": "engineer",
                                           "base": 7200})
    drain(platform)  # let the triggered analysis chain finish

    analysis_records = [r for r in platform.records
                        if r.function == "da-analyze"]
    if not analysis_records:
        raise PlatformError(
            "the wages-db trigger never fired the analysis chain")
    return {
        "insertion": _chain_row(_top_records([insertion]),
                                platform.name, "insert"),
        "analysis": _chain_row(analysis_records, platform.name, "analysis"),
    }


def run_fig9(params: Optional[CalibratedParameters] = None
             ) -> Dict[str, FigureResult]:
    """Figure 9(a) and 9(b): Alexa Skills and data analysis."""
    alexa = FigureResult(figure_id="fig9a",
                         title="Alexa Skills chain (3 requests)")
    for platform_cls in FIG9_PLATFORMS:
        alexa.rows.append(_run_alexa(platform_cls, params))
    ow = alexa.row("openwhisk", "chain")
    fw = alexa.row("fireworks", "chain")
    alexa.notes.append(
        f"fireworks start-up {ow.startup_ms / fw.startup_ms:.1f}x faster, "
        f"exec {ow.exec_ms / fw.exec_ms:.1f}x faster than openwhisk")

    analysis = FigureResult(figure_id="fig9b",
                            title="Data analysis: insertion + analysis")
    ratios = {}
    for platform_cls in FIG9_PLATFORMS:
        rows = _run_data_analysis(platform_cls, params)
        analysis.rows.append(rows["insertion"])
        analysis.rows.append(rows["analysis"])
        ratios[rows["insertion"].platform] = rows
    for step in ("insertion", "analysis"):
        ow_row = ratios["openwhisk"][step]
        fw_row = ratios["fireworks"][step]
        analysis.notes.append(
            f"{step}: fireworks start-up "
            f"{ow_row.startup_ms / fw_row.startup_ms:.1f}x faster, exec "
            f"{ow_row.exec_ms / fw_row.exec_ms:.1f}x faster")
    return {"alexa": alexa, "data-analysis": analysis}
