"""Figure 9: the real-world ServerlessBench applications.

Only OpenWhisk and Fireworks can execute chains of functions (§5.3), so the
comparison is between those two.  Latency is aggregated over the whole chain
(every function's start-up and exec summed, as the paper's stacked bars do).

For the data-analysis app, the insertion chain (da-input -> da-format ->
CouchDB) and the triggered analysis chain (da-analyze -> da-stats) are
reported separately, matching the paper's two sets of ratios.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.bench.harness import (drain, fresh_platform, install_chain,
                                 invoke_once)
from repro.bench.results import FigureResult, LatencyRow
from repro.config import CalibratedParameters
from repro.core.fireworks import FireworksPlatform
from repro.errors import PlatformError
from repro.platforms.base import ServerlessPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.workloads.serverlessbench import (ALEXA_SKILLS, WAGES_DB,
                                             alexa_skills_chain,
                                             data_analysis_chain)


def _chain_row(records, platform: str, mode: str) -> LatencyRow:
    return LatencyRow(
        platform=platform, mode=mode,
        startup_ms=sum(r.chain_startup_ms() for r in records),
        exec_ms=sum(r.chain_exec_ms() for r in records),
        other_ms=sum(r.chain_other_ms() for r in records))


def _run_alexa(platform_cls: Type[ServerlessPlatform],
               params: Optional[CalibratedParameters]) -> LatencyRow:
    """§5.3(1): ask a fact, check the schedule, check the smart home."""
    platform = fresh_platform(platform_cls, params)
    chain = alexa_skills_chain()
    install_chain(platform, chain)
    records = [invoke_once(platform, chain.entry, payload={"skill": skill})
               for skill in ALEXA_SKILLS]
    drain(platform)
    return _chain_row(records, platform.name, "chain")


def _run_data_analysis(platform_cls: Type[ServerlessPlatform],
                       params: Optional[CalibratedParameters]
                       ) -> Dict[str, LatencyRow]:
    """§5.3(2): wage insertion, then the db-triggered analysis chain."""
    platform = fresh_platform(platform_cls, params)
    chain = data_analysis_chain()
    install_chain(platform, chain)
    platform.register_db_trigger(WAGES_DB, "da-analyze")

    insertion = invoke_once(platform, chain.entry,
                            payload={"name": "alice", "id": "e1",
                                     "role": "engineer", "base": 7200})
    drain(platform)  # let the triggered analysis chain finish

    analysis_records = [r for r in platform.records
                        if r.function == "da-analyze"]
    if not analysis_records:
        raise PlatformError(
            "the wages-db trigger never fired the analysis chain")
    return {
        "insertion": _chain_row([insertion], platform.name, "insert"),
        "analysis": _chain_row(analysis_records, platform.name, "analysis"),
    }


def run_fig9(params: Optional[CalibratedParameters] = None
             ) -> Dict[str, FigureResult]:
    """Figure 9(a) and 9(b): Alexa Skills and data analysis."""
    alexa = FigureResult(figure_id="fig9a",
                         title="Alexa Skills chain (3 requests)")
    for platform_cls in (OpenWhiskPlatform, FireworksPlatform):
        alexa.rows.append(_run_alexa(platform_cls, params))
    ow = alexa.row("openwhisk", "chain")
    fw = alexa.row("fireworks", "chain")
    alexa.notes.append(
        f"fireworks start-up {ow.startup_ms / fw.startup_ms:.1f}x faster, "
        f"exec {ow.exec_ms / fw.exec_ms:.1f}x faster than openwhisk")

    analysis = FigureResult(figure_id="fig9b",
                            title="Data analysis: insertion + analysis")
    ratios = {}
    for platform_cls in (OpenWhiskPlatform, FireworksPlatform):
        rows = _run_data_analysis(platform_cls, params)
        analysis.rows.append(rows["insertion"])
        analysis.rows.append(rows["analysis"])
        ratios[rows["insertion"].platform] = rows
    for step in ("insertion", "analysis"):
        ow_row = ratios["openwhisk"][step]
        fw_row = ratios["fireworks"][step]
        analysis.notes.append(
            f"{step}: fireworks start-up "
            f"{ow_row.startup_ms / fw_row.startup_ms:.1f}x faster, exec "
            f"{ow_row.exec_ms / fw_row.exec_ms:.1f}x faster")
    return {"alexa": alexa, "data-analysis": analysis}
