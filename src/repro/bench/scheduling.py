"""Scheduling-policy experiment (extension): warm affinity across hosts.

Replays a multi-function stream against OpenWhisk on a real multi-host
cluster under each load-balancing policy.  Hash scheduling (OpenWhisk's
home invoker) concentrates each function's warm containers on one host and
keeps hitting them; round-robin sprays requests and keeps paying cold
starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.harness import (fresh_cluster_platform, install_all,
                                 invoke_once)
from repro.bench.stats import LatencyStats
from repro.config import CalibratedParameters
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.platforms.scheduler import (POLICY_HASH, POLICY_LEAST_LOADED,
                                       POLICY_ROUND_ROBIN)
from repro.policy import default_registry
from repro.workloads.faasdom import faasdom_spec

#: The policies this figure compares (registry-validated at import).
SCHEDULING_POLICIES = (POLICY_ROUND_ROBIN, POLICY_LEAST_LOADED, POLICY_HASH)


@dataclass(frozen=True)
class PolicyResult:
    """One policy's outcome on the replayed stream."""

    policy: str
    warm_hit_rate: float
    latency: LatencyStats
    load_spread: int     # max-min total assignments across hosts

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.policy:<14} warm-hit={self.warm_hit_rate:6.1%} "
                f"p50={self.latency.p50_ms:8.1f}ms "
                f"p99={self.latency.p99_ms:8.1f}ms "
                f"spread={self.load_spread}")


def run_scheduling_comparison(
        params: Optional[CalibratedParameters] = None,
        n_functions: int = 9,
        rounds: int = 12,
        nodes: int = 4,
        capacity_per_node: int = 16,
        policies=SCHEDULING_POLICIES) -> Dict[str, PolicyResult]:
    """Round-robin vs least-loaded vs hash on an interleaved stream.

    Each round invokes every function once (think: steady per-minute
    traffic for popular functions).  The function count is deliberately
    not a multiple of the host count, so round-robin cannot accidentally
    re-align each function with its previous host.
    """
    registry = default_registry()
    for policy in policies:
        registry.entry("placement", policy)   # fail fast on unknown names
    base = faasdom_spec("faas-netlatency", "nodejs")
    specs = [
        base.__class__(
            name=f"fn-{index:02d}", language=base.language, app=base.app,
            make_program=base.make_program, source=base.source,
            description=base.description)
        for index in range(n_functions)
    ]

    results: Dict[str, PolicyResult] = {}
    for policy in policies:
        platform = fresh_cluster_platform(
            OpenWhiskPlatform, params, n_hosts=nodes, policy=policy,
            capacity_per_host=capacity_per_node)
        install_all(platform, specs)
        latencies: List[float] = []
        for _round in range(rounds):
            for spec in specs:
                record = invoke_once(platform, spec.name)
                latencies.append(record.total_ms)
        total = platform.warm_starts + platform.cold_starts
        results[policy] = PolicyResult(
            policy=policy,
            warm_hit_rate=platform.warm_starts / max(1, total),
            latency=LatencyStats.from_samples(latencies),
            load_spread=int(platform.cluster.load_spread()))
    return results
