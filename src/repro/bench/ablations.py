"""Ablations and extensions beyond the paper's own figures.

* **REAP restore policies** (§7 / DESIGN.md extension): demand paging with a
  warm or cold page cache vs REAP-style working-set prefetch.
* **Snapshot-store replacement** (§6): disk-space-bounded LRU keeping hot
  functions' snapshots.
* **De-optimization** (§6): invoke the Alexa frontend with rotating argument
  shapes and verify Fireworks still wins despite deopts.
* **Warm-pool vs snapshot policy** (§1/§2.2): on an Azure-like trace where
  only 18.6% of functions are popular, compare warm-pool memory cost
  against Fireworks' snapshot-resume approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.harness import (fresh_platform, install_all, invoke_once)
from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.platforms.base import MODE_COLD, MODE_WARM
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.sim.rng import RngStreams
from repro.snapshot.restorer import (POLICY_DEMAND, POLICY_DEMAND_COLD,
                                     POLICY_REAP)
from repro.workloads.faasdom import faasdom_spec
from repro.workloads.generator import (assign_popularity, poisson_trace)
from repro.workloads.serverlessbench import alexa_skills_chain


# ---------------------------------------------------------------------------
# REAP restore policies
# ---------------------------------------------------------------------------
def run_restore_policy_ablation(
        params: Optional[CalibratedParameters] = None,
        benchmark: str = "faas-fact", language: str = "nodejs"
        ) -> Dict[str, float]:
    """Invocation start-up latency under each restore policy (ms)."""
    spec = faasdom_spec(benchmark, language)
    results: Dict[str, float] = {}
    for policy in (POLICY_DEMAND, POLICY_DEMAND_COLD, POLICY_REAP):
        platform = fresh_platform(FireworksPlatform, params,
                                  restore_policy=policy)
        install_all(platform, [spec])
        record = invoke_once(platform, spec.name)
        results[policy] = record.startup_ms
    return results


# ---------------------------------------------------------------------------
# Snapshot store replacement (§6)
# ---------------------------------------------------------------------------
def run_store_eviction_demo(params: Optional[CalibratedParameters] = None,
                            capacity_images: int = 3) -> Dict[str, object]:
    """Install more functions than the store can hold; count evictions."""
    base = params or default_parameters()
    params = base.with_overrides(
        snapshot=base.snapshot.__class__(
            **{**base.snapshot.__dict__,
               "store_capacity_images": capacity_images}))
    platform = fresh_platform(FireworksPlatform, params)
    specs = [faasdom_spec(name, lang)
             for name in ("faas-fact", "faas-matrix-mult", "faas-diskio",
                          "faas-netlatency")
             for lang in ("nodejs", "python")]
    install_all(platform, specs)
    return {
        "installed": len(specs),
        "resident_images": len(platform.store),
        "evictions": platform.store.evictions,
        "resident_keys": list(platform.store.keys()),
    }


# ---------------------------------------------------------------------------
# De-optimization (§6)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DeoptResult:
    total_deopts: int
    fireworks_mean_ms: float
    openwhisk_mean_ms: float

    @property
    def fireworks_still_wins(self) -> bool:
        """§6: 'our evaluation results always show a performance
        improvement' despite de-optimization."""
        return self.fireworks_mean_ms < self.openwhisk_mean_ms


def run_deopt_experiment(params: Optional[CalibratedParameters] = None
                         ) -> DeoptResult:
    """Rotate Alexa skills so each request hits a new argument shape."""
    chain = alexa_skills_chain()
    skills = ("fact", "reminder", "smarthome", "fact", "reminder")

    fw = fresh_platform(FireworksPlatform, params)
    install_all(fw, chain.functions)
    fw_records = [invoke_once(fw, chain.entry, payload={"skill": skill})
                  for skill in skills]
    deopts = sum(r.guest.deopt_count for r in fw_records if r.guest)

    ow = fresh_platform(OpenWhiskPlatform, params)
    install_all(ow, chain.functions)
    ow_records = [invoke_once(ow, chain.entry, payload={"skill": skill})
                  for skill in skills]

    def mean_total(records) -> float:
        return sum(r.chain_total_ms() for r in records) / len(records)

    return DeoptResult(
        total_deopts=deopts,
        fireworks_mean_ms=mean_total(fw_records),
        openwhisk_mean_ms=mean_total(ow_records))


# ---------------------------------------------------------------------------
# Warm pool vs snapshot on an Azure-like trace (§1/§2.2)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyComparison:
    """Latency/memory of warm-pool OpenWhisk vs Fireworks on one trace.

    Memory is split into *idle sandbox* memory (warm containers waiting for
    a request — the waste §2.2 calls out) and, for Fireworks, the clean
    page-cache copies of the snapshot images (evictable, shared by all
    clones of a function).
    """

    events: int
    openwhisk_mean_latency_ms: float
    openwhisk_warm_hit_rate: float
    openwhisk_idle_sandbox_mb: float
    fireworks_mean_latency_ms: float
    fireworks_idle_sandbox_mb: float
    fireworks_image_cache_mb: float


def run_policy_comparison(params: Optional[CalibratedParameters] = None,
                          n_functions: int = 16,
                          duration_ms: float = 1_800_000.0,
                          seed: int = 7) -> PolicyComparison:
    """Replay the same Poisson trace on both platforms.

    Rare functions (81.4% of them) miss OpenWhisk's warm pool most of the
    time, paying cold starts and holding idle memory; Fireworks pays its
    flat snapshot-resume cost for everyone.
    """
    rng = RngStreams(seed)
    function_names = [f"fn-{i:02d}" for i in range(n_functions)]
    popularity = assign_popularity(function_names, rng)
    trace = poisson_trace(popularity, duration_ms, rng)

    base_spec = faasdom_spec("faas-netlatency", "nodejs")
    specs = {name: base_spec.__class__(
        name=name, language=base_spec.language, app=base_spec.app,
        make_program=base_spec.make_program, source=base_spec.source,
        description=base_spec.description,
        benchmark_suite=base_spec.benchmark_suite)
        for name in function_names}

    # OpenWhisk replay.
    ow = fresh_platform(OpenWhiskPlatform, params)
    install_all(ow, specs.values())
    ow_latencies: List[float] = []
    for event in trace:
        if ow.sim.now < event.at_ms:
            ow.sim.run(until=event.at_ms)
        record = invoke_once(ow, event.function)
        ow_latencies.append(record.total_ms)
    # End-of-trace idle memory: every live warm container is waiting memory.
    ow_idle_mb = ow.host_memory.used_mb
    warm_rate = ow.warm_starts / max(1, ow.warm_starts + ow.cold_starts)

    # Fireworks replay.
    fw = fresh_platform(FireworksPlatform, params)
    install_all(fw, specs.values())
    fw_latencies: List[float] = []
    for event in trace:
        if fw.sim.now < event.at_ms:
            fw.sim.run(until=event.at_ms)
        record = invoke_once(fw, event.function)
        fw_latencies.append(record.total_ms)
    fw.sim.run()  # drain clone teardowns
    image_cache_mb = sum(
        report.image.size_mb for report in fw.install_reports.values()
        if report.image.materialized)
    fw_idle_mb = fw.host_memory.used_mb - image_cache_mb

    return PolicyComparison(
        events=len(trace),
        openwhisk_mean_latency_ms=sum(ow_latencies) / len(ow_latencies),
        openwhisk_warm_hit_rate=warm_rate,
        openwhisk_idle_sandbox_mb=ow_idle_mb,
        fireworks_mean_latency_ms=sum(fw_latencies) / len(fw_latencies),
        fireworks_idle_sandbox_mb=fw_idle_mb,
        fireworks_image_cache_mb=image_cache_mb)


# ---------------------------------------------------------------------------
# Remote snapshot storage (§6)
# ---------------------------------------------------------------------------
def run_remote_store_ablation(
        params: Optional[CalibratedParameters] = None) -> Dict[str, float]:
    """Restore start-up when the snapshot image is local vs remote (§6).

    Uses the tiered store directly: a local LRU hit adds nothing; a local
    miss pays the remote download before the (identical) restore.
    """
    from repro.snapshot.restorer import Restorer
    from repro.storage.disk import BlockDevice
    from repro.storage.remote_store import (RemoteObjectStore,
                                            TieredSnapshotStore)

    spec = faasdom_spec("faas-fact", "nodejs")
    platform = fresh_platform(FireworksPlatform, params)
    install_all(platform, [spec])
    image = platform.image_for(spec.name)

    tiered = TieredSnapshotStore(BlockDevice(4096), RemoteObjectStore(),
                                 local_capacity_images=4)
    tiered.put(spec.name, image)
    restorer = Restorer(platform.sim, platform.params,
                        platform.host_memory)

    _, local_extra_ms = tiered.get(spec.name)
    local_ms = local_extra_ms + restorer.restore_ms(image, POLICY_DEMAND)

    tiered.evict_local(spec.name)
    _, remote_extra_ms = tiered.get(spec.name)
    remote_ms = remote_extra_ms + restorer.restore_ms(image, POLICY_DEMAND)

    return {"local_hit_ms": local_ms, "remote_fetch_ms": remote_ms,
            "image_mb": image.size_mb}


# ---------------------------------------------------------------------------
# Catalyzer comparison (extension: the baseline the paper could not run)
# ---------------------------------------------------------------------------
def run_catalyzer_comparison(
        params: Optional[CalibratedParameters] = None,
        benchmark: str = "faas-fact",
        language: str = "nodejs") -> Dict[str, Dict[str, float]]:
    """Catalyzer (checkpoint+sfork, gVisor isolation) vs Fireworks.

    Expected shape from Table 1: Catalyzer's *warm* (sfork) start-up beats
    even Fireworks' restore, but its cold (checkpoint) start-up loses, its
    execution still pays gVisor's I/O tax, and its isolation stays at the
    container level.
    """
    from repro.platforms.catalyzer import CatalyzerPlatform

    spec = faasdom_spec(benchmark, language)
    results: Dict[str, Dict[str, float]] = {}

    catalyzer = fresh_platform(CatalyzerPlatform, params)
    install_all(catalyzer, [spec])
    cold = invoke_once(catalyzer, spec.name, mode=MODE_COLD)
    warm = invoke_once(catalyzer, spec.name, mode=MODE_WARM)
    results["catalyzer"] = {
        "cold_startup_ms": cold.startup_ms,
        "warm_startup_ms": warm.startup_ms,
        "exec_ms": warm.exec_ms,
        "isolation": 0.0,  # container-level (flag, not a latency)
    }

    fireworks = fresh_platform(FireworksPlatform, params)
    install_all(fireworks, [spec])
    record = invoke_once(fireworks, spec.name)
    results["fireworks"] = {
        "cold_startup_ms": record.startup_ms,
        "warm_startup_ms": record.startup_ms,
        "exec_ms": record.exec_ms,
        "isolation": 1.0,  # VM-level
    }
    return results


# ---------------------------------------------------------------------------
# Keep-alive policies: fixed vs hybrid histogram [48] vs snapshots
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KeepAliveOutcome:
    """One keep-alive configuration's trace outcome."""

    label: str
    mean_latency_ms: float
    warm_hit_rate: float
    idle_sandbox_mb: float

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.label:<22} mean={self.mean_latency_ms:8.1f}ms "
                f"warm-hit={self.warm_hit_rate:6.1%} "
                f"idle-mem={self.idle_sandbox_mb:8.0f}M")


def run_keepalive_policy_comparison(
        params: Optional[CalibratedParameters] = None,
        n_functions: int = 12,
        duration_ms: float = 1_800_000.0,
        seed: int = 11) -> Dict[str, KeepAliveOutcome]:
    """Fixed keep-alive vs [48]'s hybrid histogram vs Fireworks.

    The adaptive policy shrinks popular functions' windows (less idle
    memory, same warm hits) and stops rare functions from holding
    containers they will not reuse — but it can only *trade* along the
    memory/latency frontier.  Fireworks sits off the frontier entirely.
    """
    from repro.platforms.keepalive import (FixedKeepAlive,
                                           HybridHistogramKeepAlive)

    rng = RngStreams(seed)
    function_names = [f"fn-{index:02d}" for index in range(n_functions)]
    popularity = assign_popularity(function_names, rng)
    trace = poisson_trace(popularity, duration_ms, rng)

    base_spec = faasdom_spec("faas-netlatency", "nodejs")
    specs = [base_spec.__class__(
        name=name, language=base_spec.language, app=base_spec.app,
        make_program=base_spec.make_program, source=base_spec.source,
        description=base_spec.description) for name in function_names]

    def replay_openwhisk(label: str, policy) -> KeepAliveOutcome:
        platform = fresh_platform(OpenWhiskPlatform, params,
                                  keepalive_policy=policy)
        install_all(platform, specs)
        latencies: List[float] = []
        for event in trace:
            if platform.sim.now < event.at_ms:
                platform.sim.run(until=event.at_ms)
            latencies.append(invoke_once(platform, event.function).total_ms)
        total = platform.warm_starts + platform.cold_starts
        # Idle memory: let the fleet settle 3 minutes past the last
        # request, then run the periodic reaper.
        platform.sim.run(until=platform.sim.now + 180000.0)
        platform.reap_idle()
        platform.sim.run()
        return KeepAliveOutcome(
            label=label,
            mean_latency_ms=sum(latencies) / len(latencies),
            warm_hit_rate=platform.warm_starts / max(1, total),
            idle_sandbox_mb=platform.host_memory.used_mb)

    results = {
        "fixed-10min": replay_openwhisk(
            "fixed-10min", FixedKeepAlive(600000.0)),
        "hybrid-histogram": replay_openwhisk(
            "hybrid-histogram", HybridHistogramKeepAlive()),
    }

    fireworks = fresh_platform(FireworksPlatform, params)
    install_all(fireworks, specs)
    fw_latencies: List[float] = []
    for event in trace:
        if fireworks.sim.now < event.at_ms:
            fireworks.sim.run(until=event.at_ms)
        fw_latencies.append(
            invoke_once(fireworks, event.function).total_ms)
    fireworks.sim.run()
    image_cache_mb = sum(
        report.image.size_mb
        for report in fireworks.install_reports.values()
        if report.image.materialized)
    results["fireworks"] = KeepAliveOutcome(
        label="fireworks",
        mean_latency_ms=sum(fw_latencies) / len(fw_latencies),
        warm_hit_rate=1.0,  # every start is a snapshot resume
        idle_sandbox_mb=fireworks.host_memory.used_mb - image_cache_mb)
    return results


# ---------------------------------------------------------------------------
# AOT (.NET) vs post-JIT snapshot (extension; §3.1/§7)
# ---------------------------------------------------------------------------
_CSHARP_FACT = """\
public static object Main(IDictionary<string, object> parameters)
{
    // integer factorization, AOT-compiled at build time
    return Factorize(parameters);
}
"""


def _dotnet_fact_spec():
    from repro.runtime.interpreter import AppCode, GuestFunction
    from repro.runtime.ops import Compute, Respond, program
    from repro.workloads.base import FunctionSpec
    app = AppCode(
        name="faas-fact-dotnet", language="dotnet",
        guest_functions=(GuestFunction("main", code_units=500.0,
                                       jit_speedup=1.0),),
        extra_load_ms=30.0)
    prog = program(Compute(27000.0), Respond(0.57))
    return FunctionSpec(
        name="faas-fact-dotnet", language="dotnet", app=app,
        make_program=lambda payload, _p=prog: _p,
        source=_CSHARP_FACT,
        description="Integer factorization, C#/.NET AOT")


def run_aot_comparison(params: Optional[CalibratedParameters] = None,
                       n_vms_for_memory: int = 10) -> Dict[str, Dict]:
    """C#/.NET AOT on Firecracker vs Node post-JIT on Fireworks (§3.1/§7).

    AOT removes the JIT penalty (execution matches Fireworks) but shares
    nothing: cold starts still boot the whole VM, pre-provisioned (warm)
    instances hold full private memory, and — per §7 — "the JIT of .NET
    does not allow sharing of code or resources".
    """
    from repro.platforms.firecracker import FirecrackerPlatform

    results: Dict[str, Dict] = {}

    aot_spec = _dotnet_fact_spec()
    firecracker = fresh_platform(FirecrackerPlatform, params)
    install_all(firecracker, [aot_spec])
    cold = invoke_once(firecracker, aot_spec.name, mode=MODE_COLD)
    sim = firecracker.sim
    sim.run(sim.process(firecracker.provision_warm(aot_spec.name)))
    warm = invoke_once(firecracker, aot_spec.name, mode=MODE_WARM)
    firecracker.retain_workers = True
    for _ in range(n_vms_for_memory):
        invoke_once(firecracker, aot_spec.name, mode=MODE_COLD)
    aot_pss = (sum(w.pss_mb() for w in firecracker.active_workers)
               / len(firecracker.active_workers))
    results["dotnet-aot-firecracker"] = {
        "cold_startup_ms": cold.startup_ms,
        "warm_startup_ms": warm.startup_ms,
        "exec_ms": cold.exec_ms,
        "jit_compile_ms": cold.guest.jit_compile_ms,
        "per_vm_pss_mb": aot_pss,
    }

    node_spec = faasdom_spec("faas-fact", "nodejs")
    fireworks = fresh_platform(FireworksPlatform, params)
    install_all(fireworks, [node_spec])
    record = invoke_once(fireworks, node_spec.name)
    fireworks.retain_workers = True
    for _ in range(n_vms_for_memory):
        invoke_once(fireworks, node_spec.name)
    fw_pss = (sum(w.pss_mb() for w in fireworks.active_workers)
              / len(fireworks.active_workers))
    results["nodejs-postjit-fireworks"] = {
        "cold_startup_ms": record.startup_ms,
        "warm_startup_ms": record.startup_ms,
        "exec_ms": record.exec_ms,
        "jit_compile_ms": record.guest.jit_compile_ms,
        "per_vm_pss_mb": fw_pss,
    }
    return results


# ---------------------------------------------------------------------------
# ASLR snapshot regeneration (§6)
# ---------------------------------------------------------------------------
def run_regeneration_demo(params: Optional[CalibratedParameters] = None
                          ) -> Dict[str, float]:
    """Cost of periodically regenerating a snapshot, and that restores
    keep working across generations."""
    spec = faasdom_spec("faas-fact", "nodejs")
    platform = fresh_platform(FireworksPlatform, params)
    install_all(platform, [spec])
    before = invoke_once(platform, spec.name)
    sim = platform.sim
    started = sim.now
    image = sim.run(sim.process(platform.regenerate_snapshot(spec.name)))
    regen_ms = sim.now - started
    after = invoke_once(platform, spec.name)
    return {
        "regeneration_ms": regen_ms,
        "generation": float(image.generation),
        "startup_before_ms": before.startup_ms,
        "startup_after_ms": after.startup_ms,
    }
