"""Tables 1 and 2 and the §5.1 snapshot-creation-time measurements."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import fresh_platform, install_all
from repro.config import CalibratedParameters
from repro.core.fireworks import FireworksPlatform
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.gvisor_platform import GVisorPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.sandbox.isolate import V8Isolate
from repro.workloads.faasdom import all_faasdom_specs
from repro.workloads.serverlessbench import (alexa_skills_chain,
                                             data_analysis_chain)


def run_table1(params: Optional[CalibratedParameters] = None
               ) -> List[Dict[str, str]]:
    """Table 1: the design comparison of serverless platforms.

    Rows come from each platform's declared traits; the rows the paper lists
    for Cloudflare Workers and Catalyzer are included as static entries
    (Catalyzer's source is not public — §5.1 — and Workers is a commercial
    runtime; both appear in the table only, never in the measured figures).
    """
    from repro.platforms.catalyzer import CatalyzerPlatform

    rows = []
    for platform_cls in (FirecrackerPlatform, OpenWhiskPlatform,
                         GVisorPlatform):
        platform = fresh_platform(platform_cls, params)
        rows.append(platform.table1_row())
    rows.append({
        "platform": "cloudflare-workers",
        "isolation": f"Low (runtime: {V8Isolate.isolation})",
        "performance": "High (pre-launching)",
        "memory_efficiency": "High (process sharing)",
    })
    rows.append(fresh_platform(CatalyzerPlatform, params).table1_row())
    fireworks = fresh_platform(FireworksPlatform, params)
    rows.append(fireworks.table1_row())
    return rows


def run_table2() -> List[Dict[str, str]]:
    """Table 2: the tested serverless applications."""
    rows = []
    seen_descriptions = set()
    for spec in all_faasdom_specs():
        base_name = spec.name.rsplit("-", 1)[0]
        if base_name in seen_descriptions:
            continue
        seen_descriptions.add(base_name)
        rows.append({
            "application": f"FaaSdom: {base_name}",
            "description": spec.description,
            "language": "Node.js, Python",
        })
    for chain in (alexa_skills_chain(), data_analysis_chain()):
        rows.append({
            "application": f"ServerlessBench: {chain.name}",
            "description": chain.description,
            "language": "Node.js",
        })
    return rows


def run_snapshot_creation_times(
        params: Optional[CalibratedParameters] = None
        ) -> Dict[str, Dict[str, float]]:
    """§5.1: post-JIT snapshot creation time per FaaSdom benchmark.

    The paper reports 0.36-0.47 s for Node.js and 0.38-0.44 s for Python
    (snapshot write only), with npm installation dominating the Node install
    and JIT compilation scaling with app complexity for Python.
    """
    results: Dict[str, Dict[str, float]] = {}
    platform = fresh_platform(FireworksPlatform, params)
    install_all(platform, all_faasdom_specs())
    for name, report in platform.install_reports.items():
        results[name] = {
            "annotate_ms": report.annotate_ms,
            "boot_ms": report.boot_ms,
            "jit_ms": report.jit_ms,
            "snapshot_ms": report.snapshot_ms,
            "total_ms": report.total_ms,
        }
    return results
