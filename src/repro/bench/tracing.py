"""Chrome-trace export of invocation records.

Turns a platform's :class:`InvocationRecord` list into the Chrome trace
event format (``chrome://tracing`` / Perfetto JSON): one lane per chain
depth, one span per latency phase (frontend, queue, start-up, exec).  Handy
for eyeballing where a chain's time goes.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.platforms.base import InvocationRecord

_PHASE_ORDER = ("frontend", "queue", "startup", "exec")


def _phases_of(record: InvocationRecord) -> Dict[str, float]:
    frontend_ms = record.other_ms - record.queue_wait_ms
    return {
        "frontend": max(0.0, frontend_ms),
        "queue": record.queue_wait_ms,
        "startup": record.startup_ms,
        "exec": record.exec_ms,
    }


def trace_events(records: Iterable[InvocationRecord],
                 pid: int = 1) -> List[dict]:
    """Flatten records (including chain children) into trace events.

    Spans are laid out sequentially from each record's submit time — an
    approximation (parameter publish interleaves with restore), documented
    here so nobody reads microsecond truth into the picture.
    """
    events: List[dict] = []

    def walk(record: InvocationRecord, depth: int) -> None:
        cursor_us = record.submitted_ms * 1000.0
        for phase in _PHASE_ORDER:
            duration_ms = _phases_of(record)[phase]
            if duration_ms <= 0:
                continue
            events.append({
                "name": f"{record.function}:{phase}",
                "cat": record.platform,
                "ph": "X",
                "ts": cursor_us,
                "dur": duration_ms * 1000.0,
                "pid": pid,
                "tid": depth + 1,
                "args": {"mode": record.mode},
            })
            cursor_us += duration_ms * 1000.0
        for child in record.children:
            walk(child, depth + 1)

    for record in records:
        walk(record, 0)
    return events


def install_trace_events(reports, pid: int = 1) -> List[dict]:
    """Spans for the installation phase (annotate | boot | jit | snapshot).

    *reports* is an iterable of :class:`~repro.core.installer.InstallReport`;
    spans are laid out back-to-back ending at each report's recorded total.
    """
    events: List[dict] = []
    for report in reports:
        cursor_ms = 0.0
        for phase, duration_ms in (("annotate", report.annotate_ms),
                                   ("boot+load", report.boot_ms),
                                   ("jit", report.jit_ms),
                                   ("snapshot", report.snapshot_ms)):
            if duration_ms <= 0:
                continue
            events.append({
                "name": f"install:{report.function}:{phase}",
                "cat": "install",
                "ph": "X",
                "ts": cursor_ms * 1000.0,
                "dur": duration_ms * 1000.0,
                "pid": pid,
                "tid": 0,
                "args": {"language": report.language},
            })
            cursor_ms += duration_ms
    return events


def to_chrome_trace_json(records: Iterable[InvocationRecord],
                         install_reports=()) -> str:
    """The full Chrome trace document as a JSON string."""
    events = install_trace_events(install_reports) + trace_events(records)
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"}, indent=1)


def write_chrome_trace(records: Iterable[InvocationRecord],
                       path: str, install_reports=()) -> None:
    """Write the trace to *path* (open in chrome://tracing or Perfetto)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_chrome_trace_json(records, install_reports))
