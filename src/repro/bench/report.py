"""One-shot full evaluation report: every artifact, one text document.

``full_report()`` regenerates the complete §5 evaluation plus the
extensions and renders a single readable document — what
``python -m repro report`` prints.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import CalibratedParameters


def _section(title: str) -> List[str]:
    rule = "=" * 72
    return ["", rule, title, rule]


def full_report(params: Optional[CalibratedParameters] = None,
                include_extensions: bool = True) -> str:
    """The whole evaluation as one string (may take ~30 s to compute)."""
    from repro.bench.ablations import (run_catalyzer_comparison,
                                       run_deopt_experiment,
                                       run_restore_policy_ablation)
    from repro.bench.concurrency import run_burst_comparison
    from repro.bench.faasdom_experiments import run_fig6, run_fig7
    from repro.bench.factors import run_fig11
    from repro.bench.memory import (fig12_improvements, run_fig10,
                                    run_fig12)
    from repro.bench.paper import comparison_summary, headline_comparisons
    from repro.bench.realworld import run_fig9
    from repro.bench.results import format_comparisons
    from repro.bench.tables import (run_snapshot_creation_times,
                                    run_table1, run_table2)

    lines: List[str] = [
        "FIREWORKS (EuroSys '22) — full reproduction report",
        "(deterministic; see DESIGN.md for calibration, EXPERIMENTS.md "
        "for bands)",
    ]

    lines += _section("Table 1 — design comparison")
    for row in run_table1(params):
        lines.append(f"{row['platform']:<22} {row['isolation']:<22} "
                     f"{row['performance']:<26} {row['memory_efficiency']}")

    lines += _section("Table 2 — tested applications")
    for row in run_table2():
        lines.append(f"{row['application']:<34} {row['language']}")

    lines += _section("§5.1 — post-JIT snapshot creation time")
    for name, parts in sorted(run_snapshot_creation_times(params).items()):
        lines.append(f"{name:<28} snapshot={parts['snapshot_ms']:6.0f}ms "
                     f"jit={parts['jit_ms']:5.1f}ms "
                     f"total-install={parts['total_ms']:7.0f}ms")

    for figure_id, runner in (("Figure 6 — FaaSdom (Node.js)", run_fig6),
                              ("Figure 7 — FaaSdom (Python)", run_fig7)):
        lines += _section(figure_id)
        for result in runner(params).values():
            lines.append(result.as_table())
            lines.append("")

    lines += _section("Figure 9 — real-world applications")
    for result in run_fig9(params).values():
        lines.append(result.as_table())
        lines.append("")

    lines += _section("Figure 4 — per-region sharing across 10 clones")
    from repro.bench.memory import run_fig4_view
    for region, stats in sorted(run_fig4_view(params).items()):
        lines.append(f"{region:<10} rss={stats['rss_mb']:6.1f}M "
                     f"pss={stats['pss_mb']:6.1f}M "
                     f"shared={stats['shared_fraction']:6.1%}")

    lines += _section("Figure 10 — memory usage / consolidation")
    for series in run_fig10(params, sample_every=100).values():
        lines.append(series.as_table())

    lines += _section("Figure 11 — performance factor analysis")
    lines += [row.as_line() for row in run_fig11(params).values()]

    lines += _section("Figure 12 — memory factor analysis")
    fig12 = run_fig12(params)
    for workload, values in sorted(fig12_improvements(fig12).items()):
        lines.append(
            f"{workload:<28} os-snap saves "
            f"{values['os_snapshot_vs_baseline_pct']:5.1f}%, post-jit "
            f"{values['post_jit_vs_os_snapshot_pct']:+5.1f}% more")

    lines += _section("Scorecard — headline claims")
    comparisons = headline_comparisons(params)
    lines.append(format_comparisons("headline claims", comparisons))
    summary = comparison_summary(comparisons)
    lines.append(f"claims holding: {summary['holds']}/{summary['total']}")

    if include_extensions:
        lines += _section("Extensions")
        lines.append("restore policies (ms): " + ", ".join(
            f"{policy}={ms:.1f}" for policy, ms in
            run_restore_policy_ablation(params).items()))
        deopt = run_deopt_experiment(params)
        lines.append(
            f"deopt: {deopt.total_deopts} deopts, fireworks "
            f"{deopt.fireworks_mean_ms:.0f}ms vs openwhisk "
            f"{deopt.openwhisk_mean_ms:.0f}ms")
        for result in run_burst_comparison(requests=128, cores=64,
                                           params=params).values():
            lines.append("burst: " + result.as_line())
        for name, values in run_catalyzer_comparison(params).items():
            lines.append(
                f"catalyzer-vs-fw: {name} cold="
                f"{values['cold_startup_ms']:.1f}ms warm="
                f"{values['warm_startup_ms']:.1f}ms "
                f"exec={values['exec_ms']:.1f}ms")

    return "\n".join(lines)
