"""Figures 10 and 12: memory usage under snapshot sharing.

Fig 10 (§5.4): launch faas-fact microVMs under sustained load until the
host starts swapping (vm.swappiness=60 => ~60% of 128 GB), comparing plain
Firecracker against Fireworks.  The paper measures 337 vs 565 microVMs.

Fig 12 (§5.5.2): run 10 concurrent microVMs of each benchmark and report
one microVM's PSS for baseline Firecracker, +VM-level OS snapshot, and
+post-JIT snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.bench.harness import fresh_platform, install_all, invoke_once
from repro.bench.results import MemoryPoint, MemorySeries
from repro.config import CalibratedParameters
from repro.core.fireworks import FireworksPlatform
from repro.platforms.base import ServerlessPlatform
from repro.platforms.firecracker import (FirecrackerPlatform,
                                         FirecrackerSnapshotPlatform)
from repro.snapshot.image import STAGE_OS
from repro.workloads.faasdom import faasdom_spec


def _consolidate_until_swap(platform: ServerlessPlatform, name: str,
                            max_vms: int, sample_every: int) -> MemorySeries:
    """Keep adding loaded microVMs until the host memory starts swapping."""
    platform.retain_workers = True
    series = MemorySeries(platform=platform.name)
    host = platform.host_memory
    for n in range(1, max_vms + 1):
        record = invoke_once(platform, name)
        assert record.worker is not None
        record.worker.enter_steady_state()
        if host.is_swapping:
            series.max_vms_before_swap = n - 1
            break
        if n % sample_every == 0 or n == 1:
            workers = platform.active_workers
            mean_pss = (sum(w.pss_mb() for w in workers) / len(workers))
            series.points.append(MemoryPoint(
                n_vms=n, host_used_mb=host.used_mb, mean_pss_mb=mean_pss))
    else:
        series.max_vms_before_swap = max_vms
    return series


#: The two platforms Fig 10 consolidates, in paper order.  Keys are the
#: platform ``name`` attributes (also the result-dict keys).
FIG10_PLATFORMS: Dict[str, Type[ServerlessPlatform]] = {
    "firecracker": FirecrackerPlatform,
    "fireworks": FireworksPlatform,
}


def run_fig10_platform(platform: str,
                       params: Optional[CalibratedParameters] = None,
                       benchmark: str = "faas-fact",
                       language: str = "nodejs",
                       max_vms: int = 800,
                       sample_every: int = 50) -> MemorySeries:
    """One platform's Fig 10 series (an independently runnable shard)."""
    spec = faasdom_spec(benchmark, language)
    fresh = fresh_platform(FIG10_PLATFORMS[platform], params)
    install_all(fresh, [spec])
    return _consolidate_until_swap(fresh, spec.name, max_vms, sample_every)


def run_fig10(params: Optional[CalibratedParameters] = None,
              benchmark: str = "faas-fact", language: str = "nodejs",
              max_vms: int = 800, sample_every: int = 50
              ) -> Dict[str, MemorySeries]:
    """Figure 10: memory usage / max consolidation, Firecracker vs Fireworks."""
    return {
        platform: run_fig10_platform(platform, params, benchmark=benchmark,
                                     language=language, max_vms=max_vms,
                                     sample_every=sample_every)
        for platform in FIG10_PLATFORMS
    }


# ---------------------------------------------------------------------------
# Fig 4: what the snapshot actually shares, per region
# ---------------------------------------------------------------------------
def run_fig4_view(params: Optional[CalibratedParameters] = None,
                  benchmark: str = "faas-fact", language: str = "nodejs",
                  n_clones: int = 10) -> Dict[str, Dict[str, float]]:
    """Figure 4, measured: per-region sharing across snapshot clones.

    Returns ``{region: {"rss_mb": one clone's mapped MiB,
    "pss_mb": its proportional share, "shared_fraction": how much of the
    region is still CoW-shared}}``.  The paper's diagram says the snapshot
    shares "the states of the microVM, OS, library, runtime, and even the
    JITted code" — here are the numbers.
    """
    spec = faasdom_spec(benchmark, language)
    platform = fresh_platform(FireworksPlatform, params)
    install_all(platform, [spec])
    platform.retain_workers = True
    for _ in range(n_clones):
        invoke_once(platform, spec.name)

    sample = platform.active_workers[0].sandbox.space
    view: Dict[str, Dict[str, float]] = {}
    for region in sample.region_names():
        rss = sample.region_rss_mb(region)
        pss = sample.region_pss_mb(region)
        shared_fraction = 0.0 if rss == 0 else max(0.0, 1.0 - pss / rss)
        view[region] = {"rss_mb": rss, "pss_mb": pss,
                        "shared_fraction": shared_fraction}
    return view


# ---------------------------------------------------------------------------
# Fig 12: factor analysis, memory
# ---------------------------------------------------------------------------
#: The three configurations of the factor analysis, in paper order.
FACTOR_CONFIGS = ("firecracker", "+os-snapshot", "+post-jit")


def _mean_pss_with_n_vms(platform: ServerlessPlatform, name: str,
                         n_vms: int) -> float:
    platform.retain_workers = True
    for _ in range(n_vms):
        invoke_once(platform, name)
    workers = platform.active_workers
    return sum(worker.pss_mb() for worker in workers) / len(workers)


def _factor_platform(config: str,
                     params: Optional[CalibratedParameters]
                     ) -> ServerlessPlatform:
    if config == "firecracker":
        return fresh_platform(FirecrackerPlatform, params)
    if config == "+os-snapshot":
        return fresh_platform(FirecrackerSnapshotPlatform, params,
                              stage=STAGE_OS)
    if config == "+post-jit":
        return fresh_platform(FireworksPlatform, params)
    raise KeyError(f"unknown factor config {config!r}")


def run_fig12_workload(benchmark: str, language: str,
                       params: Optional[CalibratedParameters] = None,
                       n_vms: int = 10) -> Dict[str, float]:
    """One workload's Fig 12 column (an independently runnable shard).

    Returns ``{config: mean_pss_mb}`` over the three factor configurations.
    """
    spec = faasdom_spec(benchmark, language)
    per_config: Dict[str, float] = {}
    for config in FACTOR_CONFIGS:
        platform = _factor_platform(config, params)
        install_all(platform, [spec])
        per_config[config] = _mean_pss_with_n_vms(platform, spec.name, n_vms)
    return per_config


def run_fig12(params: Optional[CalibratedParameters] = None,
              benchmarks: Optional[List[str]] = None,
              languages: Optional[List[str]] = None,
              n_vms: int = 10) -> Dict[str, Dict[str, float]]:
    """Figure 12: per-microVM PSS (10 concurrent VMs) per configuration.

    Returns ``{f"{benchmark}-{language}": {config: mean_pss_mb}}``.
    """
    from repro.workloads.faasdom import BENCHMARK_NAMES, LANGUAGES
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    languages = languages or list(LANGUAGES)

    return {
        faasdom_spec(benchmark, language).name: run_fig12_workload(
            benchmark, language, params, n_vms)
        for benchmark in benchmarks for language in languages
    }


def fig12_improvements(results: Dict[str, Dict[str, float]]
                       ) -> Dict[str, Dict[str, float]]:
    """Percent memory saved by each factor, per workload."""
    improvements: Dict[str, Dict[str, float]] = {}
    for workload, per_config in results.items():
        base = per_config["firecracker"]
        os_snap = per_config["+os-snapshot"]
        post_jit = per_config["+post-jit"]
        improvements[workload] = {
            "os_snapshot_vs_baseline_pct": 100.0 * (base - os_snap) / base,
            "post_jit_vs_os_snapshot_pct":
                100.0 * (os_snap - post_jit) / os_snap,
        }
    return improvements
