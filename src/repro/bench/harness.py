"""Shared experiment plumbing: build a platform, install, invoke, measure."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Type

from repro.cluster.host import Cluster
from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_WARM,
                                  InvocationRecord, ServerlessPlatform)
from repro.platforms.firecracker import (FirecrackerPlatform,
                                         FirecrackerSnapshotPlatform)
from repro.platforms.gvisor_platform import GVisorPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.platforms.scheduler import POLICY_HASH
from repro.sim.kernel import Simulation
from repro.trace import verify_invocation
from repro.workloads.base import ChainSpec, FunctionSpec

def fresh_platform(platform_cls: Type[ServerlessPlatform],
                   params: Optional[CalibratedParameters] = None,
                   seed: int = 2022,
                   **kwargs) -> ServerlessPlatform:
    """A platform on its own simulation and host (isolated experiment)."""
    sim = Simulation(seed=seed)
    return platform_cls(sim, params or default_parameters(), **kwargs)


def fresh_cluster_platform(platform_cls: Type[ServerlessPlatform],
                           params: Optional[CalibratedParameters] = None,
                           seed: int = 2022,
                           n_hosts: int = 1,
                           policy: str = POLICY_HASH,
                           capacity_per_host: Optional[int] = None,
                           cores_per_host: Optional[int] = None,
                           **kwargs) -> ServerlessPlatform:
    """A platform scheduling over its own N-host cluster."""
    sim = Simulation(seed=seed)
    resolved = params or default_parameters()
    cluster = Cluster(sim, resolved, n_hosts=n_hosts, policy=policy,
                      capacity_per_host=capacity_per_host,
                      cores_per_host=cores_per_host)
    return platform_cls(sim, resolved, cluster=cluster, **kwargs)


def install_all(platform: ServerlessPlatform,
                specs: Iterable[FunctionSpec]) -> None:
    """Run the install phase for every spec, to completion."""
    sim = platform.sim
    for spec in specs:
        sim.run(sim.process(platform.install(spec)))


def install_chain(platform: ServerlessPlatform, chain: ChainSpec) -> None:
    """Install every function of a chain."""
    install_all(platform, chain.functions)


def invoke_once(platform: ServerlessPlatform, name: str,
                mode: str = MODE_AUTO,
                payload: Optional[dict] = None) -> InvocationRecord:
    """One measured invocation, run to completion and trace-verified."""
    sim = platform.sim
    record = sim.run(sim.process(platform.invoke(name, payload=payload,
                                                 mode=mode)))
    # Every measured invocation must tell the same story twice: its span
    # tree and its record breakdown (root span duration == end-to-end,
    # exactly).
    verify_invocation(record)
    return record


def provision_warm(platform: ServerlessPlatform, name: str) -> None:
    """Pre-provision a warm sandbox per §5.1's methodology."""
    sim = platform.sim
    if hasattr(platform, "provision_warm"):
        sim.run(sim.process(platform.provision_warm(name)))
    else:
        # OpenWhisk-style: invoking once leaves the container warm.
        invoke_once(platform, name, mode=MODE_COLD)


def cold_and_warm(platform_cls: Type[ServerlessPlatform],
                  spec: FunctionSpec,
                  params: Optional[CalibratedParameters] = None
                  ) -> Tuple[InvocationRecord, InvocationRecord]:
    """Measure one cold and one warm invocation on a fresh platform."""
    platform = fresh_platform(platform_cls, params)
    install_all(platform, [spec])
    cold = invoke_once(platform, spec.name, mode=MODE_COLD)
    provision_warm(platform, spec.name)
    warm = invoke_once(platform, spec.name, mode=MODE_WARM)
    return cold, warm


def fireworks_invocation(spec: FunctionSpec,
                         params: Optional[CalibratedParameters] = None,
                         **platform_kwargs) -> InvocationRecord:
    """Install + one invocation on a fresh Fireworks platform."""
    platform = fresh_platform(FireworksPlatform, params, **platform_kwargs)
    install_all(platform, [spec])
    return invoke_once(platform, spec.name)


def drain(platform: ServerlessPlatform) -> None:
    """Run the simulation until quiescent (async triggers, reaping...)."""
    platform.sim.run()


__all__ = [
    "FirecrackerPlatform",
    "FirecrackerSnapshotPlatform",
    "FireworksPlatform",
    "GVisorPlatform",
    "OpenWhiskPlatform",
    "cold_and_warm",
    "drain",
    "fireworks_invocation",
    "fresh_cluster_platform",
    "fresh_platform",
    "install_all",
    "install_chain",
    "invoke_once",
    "provision_warm",
]
