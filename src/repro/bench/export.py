"""CSV export of regenerated figures — for plotting outside the harness.

``export_all(directory)`` regenerates every figure and writes one CSV per
artifact, mirroring the bar/series structure of the paper's plots.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.bench.factors import FactorRow
from repro.bench.results import FigureResult, MemorySeries
from repro.config import CalibratedParameters


def write_latency_figure_csv(figure: FigureResult, path: Path) -> None:
    """One row per bar: platform, mode, startup/exec/other/total ms."""
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["platform", "mode", "startup_ms", "exec_ms",
                         "other_ms", "total_ms"])
        for row in figure.rows:
            writer.writerow([row.platform, row.mode,
                             f"{row.startup_ms:.3f}", f"{row.exec_ms:.3f}",
                             f"{row.other_ms:.3f}", f"{row.total_ms:.3f}"])


def write_memory_series_csv(series_by_platform: Dict[str, MemorySeries],
                            path: Path) -> None:
    """Fig 10: platform, n_vms, host MB, mean PSS, max-before-swap."""
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["platform", "n_vms", "host_used_mb",
                         "mean_pss_mb", "max_vms_before_swap"])
        for platform, series in series_by_platform.items():
            for point in series.points:
                writer.writerow([platform, point.n_vms,
                                 f"{point.host_used_mb:.1f}",
                                 f"{point.mean_pss_mb:.2f}",
                                 series.max_vms_before_swap])


def write_factor_csv(rows: Dict[str, FactorRow], path: Path) -> None:
    """Fig 11: workload, per-configuration totals and speedups."""
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["workload", "baseline_ms", "os_snapshot_ms",
                         "post_jit_ms", "os_snapshot_speedup",
                         "post_jit_total_speedup"])
        for workload, row in rows.items():
            writer.writerow([workload, f"{row.baseline_ms:.2f}",
                             f"{row.os_snapshot_ms:.2f}",
                             f"{row.post_jit_ms:.2f}",
                             f"{row.os_snapshot_speedup:.3f}",
                             f"{row.post_jit_speedup:.3f}"])


def write_fig12_csv(results: Dict[str, Dict[str, float]],
                    path: Path) -> None:
    """Fig 12: workload, per-configuration mean PSS."""
    configs: List[str] = []
    for per_config in results.values():
        configs = list(per_config)
        break
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["workload"] + configs)
        for workload, per_config in sorted(results.items()):
            writer.writerow([workload] + [f"{per_config[c]:.2f}"
                                          for c in configs])


def export_all(directory: str,
               params: Optional[CalibratedParameters] = None,
               figures: Optional[Iterable[str]] = None) -> List[str]:
    """Regenerate figures and write CSVs into *directory*.

    Returns the written file names.  ``figures`` limits the set (names:
    fig6, fig7, fig9, fig10, fig11, fig12); default is all of them.
    """
    from repro.bench.faasdom_experiments import run_fig6, run_fig7
    from repro.bench.factors import run_fig11
    from repro.bench.memory import run_fig10, run_fig12
    from repro.bench.realworld import run_fig9

    wanted = set(figures or ("fig6", "fig7", "fig9", "fig10", "fig11",
                             "fig12"))
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    def emit_latency_dict(results: Dict[str, FigureResult]) -> None:
        for result in results.values():
            name = f"{result.figure_id}.csv"
            write_latency_figure_csv(result, out_dir / name)
            written.append(name)

    if "fig6" in wanted:
        emit_latency_dict(run_fig6(params))
    if "fig7" in wanted:
        emit_latency_dict(run_fig7(params))
    if "fig9" in wanted:
        emit_latency_dict(run_fig9(params))
    if "fig10" in wanted:
        write_memory_series_csv(run_fig10(params, sample_every=50),
                                out_dir / "fig10.csv")
        written.append("fig10.csv")
    if "fig11" in wanted:
        write_factor_csv(run_fig11(params), out_dir / "fig11.csv")
        written.append("fig11.csv")
    if "fig12" in wanted:
        write_fig12_csv(run_fig12(params), out_dir / "fig12.csv")
        written.append("fig12.csv")
    return written
