"""Burst-load experiments (extension): cold-start storms on a shared host.

The latency figures of §5.2 measure one invocation at a time.  This
extension asks what happens when *N* requests for the same function arrive
at once on the paper's 64-core host: every baseline must boot (or resume)
sandboxes through the shared core pool, while Fireworks restores snapshots
— each restore both cheap and sharing memory.

This quantifies the paper's consolidation argument (§2.2) on the latency
axis: tail latency under burst tracks how long a sandbox occupies a core
before the function runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

from repro.bench.stats import LatencyStats
from repro.config import CalibratedParameters, default_parameters
from repro.host.cpu import HostCpu
from repro.platforms.base import MODE_AUTO, ServerlessPlatform
from repro.sim.kernel import Simulation
from repro.workloads.faasdom import faasdom_spec


@dataclass(frozen=True)
class BurstResult:
    """Outcome of one burst run."""

    platform: str
    requests: int
    cores: int
    latency: LatencyStats        # per-request end-to-end latency
    makespan_ms: float           # burst start until last completion
    mean_queue_wait_ms: float
    peak_queue_length: int
    warm_share: float            # fraction served from the warm pool

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.platform:<22} {self.latency.as_line()} "
                f"makespan={self.makespan_ms:.0f}ms "
                f"queue(mean={self.mean_queue_wait_ms:.1f}ms "
                f"peak={self.peak_queue_length}) "
                f"warm={self.warm_share:.0%}")


def run_burst(platform_cls: Type[ServerlessPlatform],
              requests: int = 256,
              cores: int = 64,
              benchmark: str = "faas-netlatency",
              language: str = "nodejs",
              params: Optional[CalibratedParameters] = None,
              seed: int = 2022,
              **platform_kwargs) -> BurstResult:
    """Fire *requests* simultaneous invocations of one function."""
    sim = Simulation(seed=seed)
    params = params or default_parameters()
    host_cpu = HostCpu(sim, cores=cores)
    platform = platform_cls(sim, params, host_cpu=host_cpu,
                            **platform_kwargs)
    spec = faasdom_spec(benchmark, language)
    sim.run(sim.process(platform.install(spec)))

    burst_start = sim.now
    completions = []

    def one_request():
        record = yield from platform.invoke(spec.name, mode=MODE_AUTO)
        completions.append((sim.now, record))

    processes = [sim.process(one_request(), name=f"req-{i}")
                 for i in range(requests)]
    sim.run(sim.all_of(processes))

    latencies = [finished_at - burst_start for finished_at, _ in completions]
    warm = sum(1 for _, record in completions if record.mode == "warm")
    return BurstResult(
        platform=platform.name,
        requests=requests,
        cores=cores,
        latency=LatencyStats.from_samples(latencies),
        makespan_ms=max(latencies),
        mean_queue_wait_ms=host_cpu.mean_queue_wait_ms,
        peak_queue_length=host_cpu.peak_queue_length,
        warm_share=warm / requests,
    )


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load level of the sweep."""

    offered_rps: float
    achieved_rps: float
    latency: LatencyStats
    mean_queue_wait_ms: float

    @property
    def saturated(self) -> bool:
        """The knee: queueing dominates service time."""
        return self.mean_queue_wait_ms > self.latency.p50_ms / 2


def run_load_sweep(platform_cls: Type[ServerlessPlatform],
                   rates_rps=(20.0, 60.0, 120.0, 200.0),
                   duration_ms: float = 20000.0,
                   cores: int = 64,
                   benchmark: str = "faas-netlatency",
                   language: str = "nodejs",
                   params: Optional[CalibratedParameters] = None,
                   seed: int = 2022) -> "dict[float, LoadPoint]":
    """Open-loop Poisson arrivals at each rate; find the saturation knee.

    Returns {offered_rps: LoadPoint}.  The knee is where a platform's
    sandbox-construction cost exceeds what the core pool can absorb — the
    throughput side of the paper's consolidation story.
    """
    import math

    results: "dict[float, LoadPoint]" = {}
    for rate in rates_rps:
        sim = Simulation(seed=seed)
        host_cpu = HostCpu(sim, cores=cores)
        platform = platform_cls(sim, params or default_parameters(),
                                host_cpu=host_cpu)
        spec = faasdom_spec(benchmark, language)
        sim.run(sim.process(platform.install(spec)))

        stream = sim.rng.stream(f"load-{rate}")
        arrivals = []
        t = sim.now
        while t < sim.now + duration_ms:
            t += -1000.0 / rate * math.log(1.0 - stream.random())
            arrivals.append(t)
        end_of_offered = arrivals[-1] if arrivals else sim.now

        completions = []

        def request(at_ms):
            if sim.now < at_ms:
                yield sim.timeout(at_ms - sim.now)
            started = sim.now
            yield from platform.invoke(spec.name)
            completions.append((started, sim.now))

        processed = [sim.process(request(at)) for at in arrivals]
        sim.run(sim.all_of(processed))

        latencies = [done - started for started, done in completions]
        span_ms = max(done for _, done in completions) - \
            (arrivals[0] if arrivals else 0.0)
        results[rate] = LoadPoint(
            offered_rps=rate,
            achieved_rps=len(completions) / max(span_ms, 1.0) * 1000.0,
            latency=LatencyStats.from_samples(latencies),
            mean_queue_wait_ms=host_cpu.mean_queue_wait_ms)
        del end_of_offered
    return results


def run_burst_comparison(requests: int = 256, cores: int = 64,
                         benchmark: str = "faas-netlatency",
                         language: str = "nodejs",
                         params: Optional[CalibratedParameters] = None
                         ) -> dict:
    """The burst storm on Fireworks vs OpenWhisk vs Firecracker."""
    from repro.core.fireworks import FireworksPlatform
    from repro.platforms.firecracker import FirecrackerPlatform
    from repro.platforms.openwhisk import OpenWhiskPlatform

    results = {}
    for platform_cls in (FireworksPlatform, OpenWhiskPlatform,
                         FirecrackerPlatform):
        result = run_burst(platform_cls, requests=requests, cores=cores,
                           benchmark=benchmark, language=language,
                           params=params)
        results[result.platform] = result
    return results
