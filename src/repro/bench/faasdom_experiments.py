"""Figs 6 and 7: FaaSdom latency breakdowns, Node.js and Python.

Each sub-figure compares OpenWhisk, gVisor and Firecracker (cold and warm)
against Fireworks (no cold/warm distinction — always a snapshot resume),
with latency broken into start-up / exec / others.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.harness import (cold_and_warm, fireworks_invocation)
from repro.bench.results import FigureResult, LatencyRow, geometric_mean
from repro.config import CalibratedParameters
from repro.platforms.base import InvocationRecord
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.gvisor_platform import GVisorPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.trace import verify_invocation
from repro.workloads.faasdom import BENCHMARK_NAMES, faasdom_spec

_SUBFIGURES = {
    "faas-fact": "a",
    "faas-matrix-mult": "b",
    "faas-diskio": "c",
    "faas-netlatency": "d",
}

_FIGURE_BY_LANGUAGE = {"nodejs": "6", "python": "7"}


def _row_from(record: InvocationRecord, platform: str,
              mode: str) -> LatencyRow:
    # The bar segments come from the invocation's span tree, not from
    # fields tallied in parallel with it; verify_invocation asserts both
    # agree (root span duration == end-to-end latency, exactly) before the
    # figure is built.
    breakdown = verify_invocation(record)
    return LatencyRow(platform=platform, mode=mode,
                      startup_ms=breakdown.startup_ms,
                      exec_ms=breakdown.exec_ms,
                      other_ms=breakdown.other_ms)


def run_faasdom_benchmark(benchmark: str, language: str,
                          params: Optional[CalibratedParameters] = None
                          ) -> FigureResult:
    """One sub-figure: latency breakdown of *benchmark* in *language*."""
    spec = faasdom_spec(benchmark, language)
    figure = _FIGURE_BY_LANGUAGE[language]
    letter = _SUBFIGURES[benchmark]
    result = FigureResult(
        figure_id=f"fig{figure}{letter}",
        title=f"{benchmark} ({language}) latency breakdown")

    for platform_cls, label in ((OpenWhiskPlatform, "openwhisk"),
                                (GVisorPlatform, "gvisor"),
                                (FirecrackerPlatform, "firecracker")):
        cold, warm = cold_and_warm(platform_cls, spec, params)
        result.rows.append(_row_from(cold, label, "cold"))
        result.rows.append(_row_from(warm, label, "warm"))

    fireworks = fireworks_invocation(spec, params)
    result.rows.append(_row_from(fireworks, "fireworks", "snapshot"))

    fw_total = result.row("fireworks", "snapshot").total_ms
    worst_cold = max(result.row(p, "cold").total_ms
                     for p in ("openwhisk", "gvisor", "firecracker"))
    result.notes.append(
        f"fireworks end-to-end is {worst_cold / fw_total:.1f}x faster than "
        "the slowest cold start")
    fc_cold_startup = result.row("firecracker", "cold").startup_ms
    result.notes.append(
        f"cold start-up speedup vs firecracker: "
        f"{fc_cold_startup / result.row('fireworks', 'snapshot').startup_ms:.0f}x")
    return result


def build_geomean(results: Dict[str, FigureResult],
                  language: str) -> FigureResult:
    """Sub-figure (e): the geometric mean over the four benchmark results.

    Pure post-processing — the parallel engine calls this when merging
    per-benchmark shards, so it must derive everything from *results*.
    """
    figure = _FIGURE_BY_LANGUAGE[language]
    geomean = FigureResult(
        figure_id=f"fig{figure}e",
        title=f"geometric mean of FaaSdom benchmarks ({language})")
    combos: List[Tuple[str, str]] = [
        ("openwhisk", "cold"), ("openwhisk", "warm"),
        ("gvisor", "cold"), ("gvisor", "warm"),
        ("firecracker", "cold"), ("firecracker", "warm"),
        ("fireworks", "snapshot"),
    ]
    for platform, mode in combos:
        rows = [results[b].row(platform, mode) for b in BENCHMARK_NAMES]
        geomean.rows.append(LatencyRow(
            platform=platform, mode=mode,
            startup_ms=geometric_mean([max(r.startup_ms, 0.1) for r in rows]),
            exec_ms=geometric_mean([max(r.exec_ms, 0.1) for r in rows]),
            other_ms=geometric_mean([max(r.other_ms, 0.1) for r in rows])))
    fw_total = geomean.row("fireworks", "snapshot").total_ms
    worst = max(row.total_ms for row in geomean.rows)
    geomean.notes.append(
        f"overall fireworks speedup (geomean, vs slowest): "
        f"{worst / fw_total:.1f}x")
    return geomean


def run_faasdom_figure(language: str,
                       params: Optional[CalibratedParameters] = None
                       ) -> Dict[str, FigureResult]:
    """All five sub-figures of Fig 6 (nodejs) or Fig 7 (python).

    Sub-figure (e) is the geometric mean of the four benchmarks, per
    platform and start mode.
    """
    results = {
        benchmark: run_faasdom_benchmark(benchmark, language, params)
        for benchmark in BENCHMARK_NAMES
    }
    results["geomean"] = build_geomean(results, language)
    return results


def run_fig6(params: Optional[CalibratedParameters] = None
             ) -> Dict[str, FigureResult]:
    """Figure 6: the Node.js FaaSdom latency comparison."""
    return run_faasdom_figure("nodejs", params)


def run_fig7(params: Optional[CalibratedParameters] = None
             ) -> Dict[str, FigureResult]:
    """Figure 7: the Python FaaSdom latency comparison."""
    return run_faasdom_figure("python", params)
