"""Parallel experiment engine with content-addressed result caching.

Every paper figure — and the extension experiments around them — decomposes
into *shards*: independent units of work (one platform's Fig 10
consolidation run, one FaaSdom benchmark's latency breakdown, one
sensitivity-sweep point, one burst config) that each build their own
:class:`~repro.sim.kernel.Simulation` from a fixed seed and are therefore
deterministic and perfectly memoizable.

The engine:

* fans shards out across a ``ProcessPoolExecutor`` (``jobs > 1``) or runs
  them inline (``jobs == 1``), then **merges deterministically** — shard
  results are combined in registry order, never completion order, so serial
  and parallel runs produce identical results;
* persists each shard's result as JSON under ``.repro-cache/``, keyed by a
  content hash of ``(experiment id, shard id, canonical hash of
  CalibratedParameters, seed, repro version, shard kwargs)`` — a rerun with
  the same calibration is a pure cache read;
* round-trips *every* result (fresh or cached, serial or parallel) through
  the loss-free codec in :mod:`repro.bench.serialization`, so the cache-hit
  path cannot diverge from the compute path.

Invalidation is by key construction: changing any calibrated constant, the
seed, or the package version changes the key, and stale entries are simply
never read again (``prune()`` deletes entries whose key no longer matches).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import (CalibratedParameters, canonical_jsonable,
                          default_parameters, params_fingerprint)
from repro.errors import ReproError
from repro.bench.serialization import (decode_result, dumps_result,
                                       encode_result, loads_result)

_LOG = logging.getLogger(__name__)

#: Bump when the shard decomposition or payload layout changes shape.
CACHE_SCHEMA_VERSION = 1

DEFAULT_SEED = 2022
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# Shard functions (module-level: picklable into pool workers)
# ---------------------------------------------------------------------------
def _platform_classes() -> Dict[str, type]:
    from repro.core.fireworks import FireworksPlatform
    from repro.platforms.firecracker import FirecrackerPlatform
    from repro.platforms.openwhisk import OpenWhiskPlatform
    return {"fireworks": FireworksPlatform, "openwhisk": OpenWhiskPlatform,
            "firecracker": FirecrackerPlatform}


def _sh_table1(params, seed):
    from repro.bench.tables import run_table1
    return run_table1(params)


def _sh_table2(params, seed):
    from repro.bench.tables import run_table2
    return run_table2()


def _sh_snapshot_creation(params, seed):
    from repro.bench.tables import run_snapshot_creation_times
    return run_snapshot_creation_times(params)


def _sh_faasdom(params, seed, benchmark, language):
    from repro.bench.faasdom_experiments import run_faasdom_benchmark
    return run_faasdom_benchmark(benchmark, language, params)


def _sh_fig9(params, seed):
    from repro.bench.realworld import run_fig9
    return run_fig9(params)


def _sh_fig10(params, seed, platform):
    from repro.bench.memory import run_fig10_platform
    return run_fig10_platform(platform, params)


def _sh_fig11(params, seed, benchmark, language):
    from repro.bench.factors import run_factor_analysis
    return run_factor_analysis(benchmark, language, params)


def _sh_fig12(params, seed, benchmark, language):
    from repro.bench.memory import run_fig12_workload
    return run_fig12_workload(benchmark, language, params)


def _sh_scorecard(params, seed):
    from repro.bench.paper import headline_comparisons
    return headline_comparisons(params)


def _sh_burst(params, seed, platform, requests, cores):
    from repro.bench.concurrency import run_burst
    return run_burst(_platform_classes()[platform], requests=requests,
                     cores=cores, params=params, seed=seed)


def _sh_load_sweep(params, seed, platform, rate):
    from repro.bench.concurrency import run_load_sweep
    points = run_load_sweep(_platform_classes()[platform], rates_rps=(rate,),
                            params=params, seed=seed)
    return points[rate]


def _sh_sensitivity(params, seed, parameter, value, metric):
    from repro.bench.sensitivity import run_sensitivity
    return run_sensitivity(parameter, [value], metric, params)


def _sh_ablation(params, seed, arm):
    from repro.bench import ablations
    return {
        "restore-policy": ablations.run_restore_policy_ablation,
        "store-eviction": ablations.run_store_eviction_demo,
        "deopt": ablations.run_deopt_experiment,
        "remote-store": ablations.run_remote_store_ablation,
        "catalyzer": ablations.run_catalyzer_comparison,
        "aot": ablations.run_aot_comparison,
        "regeneration": ablations.run_regeneration_demo,
    }[arm](params)


def _sh_policies(params, seed):
    from repro.bench.ablations import run_policy_comparison
    return run_policy_comparison(params)


def _sh_keepalive(params, seed):
    from repro.bench.ablations import run_keepalive_policy_comparison
    return run_keepalive_policy_comparison(params)


def _sh_cluster(params, seed):
    from repro.bench.cluster import run_cluster_scheduling
    return run_cluster_scheduling(params, seed=seed)


def _sh_chaos(params, seed):
    from repro.bench.chaos import run_chaos_experiment
    return run_chaos_experiment(params, seed=seed)


def _sh_load(params, seed, platform, mode):
    from repro.bench.load import run_load_platform
    return run_load_platform(platform, mode, params=params, seed=seed)


def _sh_chains(params, seed, platform, policy):
    from repro.bench.chains import run_chains_platform
    return run_chains_platform(platform, policy, params=params, seed=seed)


def _sh_restore_policy(params, seed, backend, policy, language):
    from repro.bench.restore import run_restore_policy
    return run_restore_policy(backend, policy, language, params=params,
                              seed=seed)


def _sh_restore_stream(params, seed, mode):
    from repro.bench.restore import run_streaming_transfer
    return run_streaming_transfer(mode, params=params, seed=seed)


def _sh_search(params, seed, index):
    from repro.bench.search import evaluate_index
    return evaluate_index(params, seed, index)


def _sh_search_smoke(params, seed):
    from repro.bench.search import run_search
    return run_search(params=params, seed=seed, smoke=True)


_SHARD_FNS: Dict[str, Callable[..., Any]] = {
    "table1": _sh_table1,
    "table2": _sh_table2,
    "snapshot-creation": _sh_snapshot_creation,
    "faasdom": _sh_faasdom,
    "fig9": _sh_fig9,
    "fig10": _sh_fig10,
    "fig11": _sh_fig11,
    "fig12": _sh_fig12,
    "scorecard": _sh_scorecard,
    "burst": _sh_burst,
    "load-sweep": _sh_load_sweep,
    "sensitivity": _sh_sensitivity,
    "ablation": _sh_ablation,
    "policies": _sh_policies,
    "keepalive": _sh_keepalive,
    "cluster": _sh_cluster,
    "chaos": _sh_chaos,
    "load": _sh_load,
    "chains": _sh_chains,
    "restore-policy": _sh_restore_policy,
    "restore-stream": _sh_restore_stream,
    "search": _sh_search,
    "search-smoke": _sh_search_smoke,
}


def _execute_shard(fn: str, kwargs: Dict[str, Any],
                   params: CalibratedParameters, seed: int) -> Any:
    """Run one shard and return its *encoded* payload.

    Runs in a pool worker under ``jobs > 1``; encoding here keeps the bytes
    crossing the process boundary identical to what the cache stores.
    """
    result = _SHARD_FNS[fn](params, seed, **kwargs)
    return encode_result(result)


# ---------------------------------------------------------------------------
# Experiment registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One independently executable (and cacheable) unit of an experiment."""

    experiment: str
    key: str                                  # unique within the experiment
    fn: str                                   # _SHARD_FNS entry
    kwargs: Tuple[Tuple[str, Any], ...] = ()  # sorted, JSON-able

    def kwargs_dict(self) -> Dict[str, Any]:
        """The shard kwargs as a plain dict (stored as a hashable tuple)."""
        return dict(self.kwargs)


@dataclass(frozen=True)
class ExperimentDef:
    """An experiment: a fixed shard list plus a deterministic merge."""

    id: str
    title: str
    shards: Tuple[Shard, ...]
    #: merge({shard key: decoded result}) -> experiment result.  Called in
    #: registry order with every shard present; must not depend on wall
    #: clock, completion order, or anything outside its inputs.
    merge: Callable[[Dict[str, Any]], Any]


def _shard(experiment: str, key: str, fn: str, **kwargs: Any) -> Shard:
    return Shard(experiment=experiment, key=key, fn=fn,
                 kwargs=tuple(sorted(kwargs.items())))


def _single(experiment: str, title: str, fn: str) -> ExperimentDef:
    return ExperimentDef(
        id=experiment, title=title,
        shards=(_shard(experiment, "all", fn),),
        merge=lambda shards: shards["all"])


def _faasdom_experiment(experiment: str, language: str,
                        title: str) -> ExperimentDef:
    from repro.workloads.faasdom import BENCHMARK_NAMES

    def merge(shards: Dict[str, Any], _language=language) -> Any:
        from repro.bench.faasdom_experiments import build_geomean
        results = {benchmark: shards[benchmark]
                   for benchmark in BENCHMARK_NAMES}
        results["geomean"] = build_geomean(results, _language)
        return results

    return ExperimentDef(
        id=experiment, title=title,
        shards=tuple(_shard(experiment, benchmark, "faasdom",
                            benchmark=benchmark, language=language)
                     for benchmark in BENCHMARK_NAMES),
        merge=merge)


def _per_workload_experiment(experiment: str, fn: str,
                             title: str) -> ExperimentDef:
    from repro.workloads.faasdom import BENCHMARK_NAMES, LANGUAGES
    pairs = [(benchmark, language) for benchmark in BENCHMARK_NAMES
             for language in LANGUAGES]
    return ExperimentDef(
        id=experiment, title=title,
        shards=tuple(_shard(experiment, f"{benchmark}-{language}", fn,
                            benchmark=benchmark, language=language)
                     for benchmark, language in pairs),
        merge=lambda shards: {f"{b}-{lang}": shards[f"{b}-{lang}"]
                              for b, lang in pairs})


#: Platform order of the burst/load-sweep comparisons (paper-figure order).
_COMPARISON_PLATFORMS = ("fireworks", "openwhisk", "firecracker")

#: Offered-load levels of the load sweep (requests per second).
LOAD_SWEEP_RATES = (20.0, 60.0, 120.0, 200.0)

#: The default sensitivity suite: (knob, swept values, metric).
SENSITIVITY_SUITE: Tuple[Tuple[str, Tuple[float, ...], str], ...] = (
    ("nodejs.hotness_threshold_units", (2000.0, 4000.0, 8000.0, 16000.0),
     "node_exec_improvement_pct"),
    ("snapshot.restore_per_working_mb_ms", (0.1, 0.3, 0.9),
     "cold_start_speedup_x"),
    ("nodejs.steady_state_dirty_fraction", (0.20, 0.33, 0.50),
     "consolidation_ratio"),
)

#: Ablation arms (each one shard), in report order.
ABLATION_ARMS = ("restore-policy", "store-eviction", "deopt",
                 "remote-store", "catalyzer", "aot", "regeneration")


def _burst_experiment() -> ExperimentDef:
    return ExperimentDef(
        id="burst", title="burst-storm comparison (extension)",
        shards=tuple(_shard("burst", platform, "burst", platform=platform,
                            requests=256, cores=64)
                     for platform in _COMPARISON_PLATFORMS),
        merge=lambda shards: {platform: shards[platform]
                              for platform in _COMPARISON_PLATFORMS})


def _load_sweep_experiment() -> ExperimentDef:
    keys = [(platform, rate) for platform in _COMPARISON_PLATFORMS
            for rate in LOAD_SWEEP_RATES]
    return ExperimentDef(
        id="load-sweep", title="offered-load saturation sweep (extension)",
        shards=tuple(_shard("load-sweep", f"{platform}@{rate:g}",
                            "load-sweep", platform=platform, rate=rate)
                     for platform, rate in keys),
        merge=lambda shards: {
            platform: {rate: shards[f"{platform}@{rate:g}"]
                       for rate in LOAD_SWEEP_RATES}
            for platform in _COMPARISON_PLATFORMS})


def _sensitivity_experiment() -> ExperimentDef:
    shards: List[Shard] = []
    for parameter, values, metric in SENSITIVITY_SUITE:
        for value in values:
            shards.append(_shard("sensitivity",
                                 f"{parameter}@{value:g}->{metric}",
                                 "sensitivity", parameter=parameter,
                                 value=value, metric=metric))

    def merge(results: Dict[str, Any]) -> Any:
        from repro.bench.sensitivity import SensitivityResult
        merged: Dict[str, SensitivityResult] = {}
        for parameter, values, metric in SENSITIVITY_SUITE:
            points = []
            for value in values:
                one = results[f"{parameter}@{value:g}->{metric}"]
                points.extend(one.points)
            merged[parameter] = SensitivityResult(
                parameter=parameter, metric_name=metric, points=points)
        return merged

    return ExperimentDef(
        id="sensitivity", title="calibration sensitivity sweeps (extension)",
        shards=tuple(shards), merge=merge)


def _ablations_experiment() -> ExperimentDef:
    return ExperimentDef(
        id="ablations", title="design ablations (extension)",
        shards=tuple(_shard("ablations", arm, "ablation", arm=arm)
                     for arm in ABLATION_ARMS),
        merge=lambda shards: {arm: shards[arm] for arm in ABLATION_ARMS})


def _restore_experiment() -> ExperimentDef:
    from repro.bench.restore import RESTORE_CELLS, STREAM_MODES
    policy_shards = tuple(
        _shard("restore", f"{backend}@{policy}@{language}", "restore-policy",
               backend=backend, policy=policy, language=language)
        for backend, policy, language in RESTORE_CELLS)
    stream_shards = tuple(
        _shard("restore", f"stream@{mode}", "restore-stream", mode=mode)
        for mode in STREAM_MODES)
    keys = ([f"{b}@{p}@{lang}" for b, p, lang in RESTORE_CELLS]
            + [f"stream@{mode}" for mode in STREAM_MODES])
    return ExperimentDef(
        id="restore",
        title="lazy restore + streaming transfer (extension)",
        shards=policy_shards + stream_shards,
        merge=lambda shards: {key: shards[key] for key in keys})


def _load_experiment() -> ExperimentDef:
    from repro.bench.load import LOAD_MODES, LOAD_PLATFORMS
    keys = [(platform, mode) for platform in LOAD_PLATFORMS
            for mode in LOAD_MODES]
    return ExperimentDef(
        id="load", title="open-loop serving-layer load (extension)",
        shards=tuple(_shard("load", f"{platform}@{mode}", "load",
                            platform=platform, mode=mode)
                     for platform, mode in keys),
        merge=lambda shards: {f"{platform}@{mode}":
                              shards[f"{platform}@{mode}"]
                              for platform, mode in keys})


def _chains_experiment() -> ExperimentDef:
    from repro.bench.chains import CHAIN_POLICIES
    from repro.bench.load import LOAD_PLATFORMS
    keys = [(platform, policy) for platform in LOAD_PLATFORMS
            for policy in CHAIN_POLICIES]
    return ExperimentDef(
        id="chains",
        title="multi-tenant function-chain serving (extension)",
        shards=tuple(_shard("chains", f"{platform}@{policy}", "chains",
                            platform=platform, policy=policy)
                     for platform, policy in keys),
        merge=lambda shards: {f"{platform}@{policy}":
                              shards[f"{platform}@{policy}"]
                              for platform, policy in keys})


def _search_experiment() -> ExperimentDef:
    from repro.bench.search import DEFAULT_CANDIDATES
    keys = [f"cand-{index:02d}" for index in range(DEFAULT_CANDIDATES)]

    def merge(shards: Dict[str, Any]) -> Any:
        from repro.bench.search import build_search_result
        return build_search_result(tuple(shards[key] for key in keys))

    return ExperimentDef(
        id="search",
        title="offline Pareto policy search (extension)",
        shards=tuple(_shard("search", key, "search", index=index)
                     for index, key in enumerate(keys)),
        merge=merge)


def _build_registry() -> Dict[str, ExperimentDef]:
    from repro.bench.memory import FIG10_PLATFORMS
    registry: Dict[str, ExperimentDef] = {}

    def add(definition: ExperimentDef) -> None:
        registry[definition.id] = definition

    add(_single("table1", "design comparison of serverless platforms",
                "table1"))
    add(_single("table2", "tested serverless applications", "table2"))
    add(_single("snapshot-creation",
                "post-JIT snapshot creation times (§5.1)",
                "snapshot-creation"))
    add(_faasdom_experiment("fig6", "nodejs",
                            "FaaSdom latency breakdown, Node.js"))
    add(_faasdom_experiment("fig7", "python",
                            "FaaSdom latency breakdown, Python"))
    add(_single("fig9", "real-world ServerlessBench applications", "fig9"))
    add(ExperimentDef(
        id="fig10", title="memory usage / max consolidation",
        shards=tuple(_shard("fig10", platform, "fig10", platform=platform)
                     for platform in FIG10_PLATFORMS),
        merge=lambda shards: {platform: shards[platform]
                              for platform in FIG10_PLATFORMS}))
    add(_per_workload_experiment("fig11", "fig11",
                                 "factor analysis of performance"))
    add(_per_workload_experiment("fig12", "fig12",
                                 "factor analysis of memory"))
    add(_single("scorecard", "paper-vs-measured headline claims",
                "scorecard"))
    add(_burst_experiment())
    add(_load_sweep_experiment())
    add(_sensitivity_experiment())
    add(_ablations_experiment())
    add(_single("policies", "warm-pool vs snapshot policy (extension)",
                "policies"))
    add(_single("keepalive", "keep-alive policy comparison (extension)",
                "keepalive"))
    add(_single("cluster", "cluster placement policies (extension)",
                "cluster"))
    add(_single("chaos", "host-failure chaos experiment (extension)",
                "chaos"))
    add(_load_experiment())
    add(_chains_experiment())
    add(_restore_experiment())
    add(_search_experiment())
    add(_single("search-smoke",
                "Pareto policy search, CI-sized smoke run (extension)",
                "search-smoke"))
    return registry


_REGISTRY: Optional[Dict[str, ExperimentDef]] = None


def experiment_registry() -> Dict[str, ExperimentDef]:
    """The experiment registry (built lazily, import cycles avoided)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def experiment_ids() -> Tuple[str, ...]:
    """Every runnable experiment id, in canonical (report) order."""
    return tuple(experiment_registry())


# ---------------------------------------------------------------------------
# Content-addressed result cache
# ---------------------------------------------------------------------------
class ResultCache:
    """Shard results under *root*, addressed by content hash.

    Entries are written in the compact binary format
    (:func:`repro.bench.serialization.dumps_result`) as ``<key>.bin``;
    pre-rewrite ``<key>.json`` entries are still read as a legacy
    fallback, so an existing cache survives the upgrade.  Corruption in
    either format is a miss, never an error.

    The key bakes in everything a shard's output depends on; see the module
    docstring for the invalidation story.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        # The default is resolved at call time (not def time) so test
        # harnesses can point DEFAULT_CACHE_DIR somewhere disposable.
        self.root = Path(root if root is not None else DEFAULT_CACHE_DIR)
        self.hits = 0
        self.misses = 0

    def key(self, shard: Shard, fingerprint: str, seed: int) -> str:
        """The content hash addressing this shard's cache entry."""
        from repro import __version__
        material = json.dumps({
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "experiment": shard.experiment,
            "shard": shard.key,
            "fn": shard.fn,
            "kwargs": canonical_jsonable(shard.kwargs_dict()),
            "params": fingerprint,
            "seed": seed,
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def _path(self, shard: Shard, key: str) -> Path:
        return self.root / shard.experiment / f"{key}.bin"

    def _legacy_path(self, shard: Shard, key: str) -> Path:
        return self.root / shard.experiment / f"{key}.json"

    def _read_entry(self, shard: Shard, key: str) -> Optional[Dict]:
        """The entry dict from disk (binary first, then legacy JSON)."""
        try:
            entry = loads_result(self._path(shard, key).read_bytes())
            if isinstance(entry, dict):
                return entry
        except (OSError, ReproError):
            pass
        try:
            entry = json.loads(self._legacy_path(shard, key).read_text())
            if isinstance(entry, dict):
                return entry
        except (OSError, ValueError):
            pass
        return None

    def load(self, shard: Shard, fingerprint: str, seed: int
             ) -> Optional[Any]:
        """The cached encoded payload, or None on miss/corruption."""
        entry = self._read_entry(shard, self.key(shard, fingerprint, seed))
        if entry is None or entry.get("schema") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        if "payload" in entry:       # legacy JSON entry: already encoded
            return entry["payload"]
        if "result" not in entry:    # malformed: treat as a miss
            self.hits -= 1
            self.misses += 1
            return None
        # Binary entries store the *decoded* result (the binary codec
        # encodes dataclasses natively and positionally — far more
        # compact than the tagged JSON form); re-encode to keep load()'s
        # contract.  encode/decode are exact inverses, so the cache-hit
        # path still cannot diverge from the compute path.
        return encode_result(entry["result"])

    def store(self, shard: Shard, fingerprint: str, seed: int,
              payload: Any, elapsed_s: float) -> None:
        """Persist one shard's encoded payload (atomic rename)."""
        key = self.key(shard, fingerprint, seed)
        path = self._path(shard, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "experiment": shard.experiment,
            "shard": shard.key,
            "params": fingerprint,
            "seed": seed,
            "elapsed_s": round(elapsed_s, 6),
            "result": decode_result(payload),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(dumps_result(entry))
        tmp.replace(path)

    def prune(self, params: Optional[CalibratedParameters] = None,
              seed: int = DEFAULT_SEED) -> int:
        """Delete entries not reachable from the current registry/params.

        Both binary and legacy-JSON entries at a live key survive; every
        other ``.bin``/``.json`` file under the root is removed.
        """
        fingerprint = params_fingerprint(params or default_parameters())
        live = set()
        for definition in experiment_registry().values():
            for shard in definition.shards:
                key = self.key(shard, fingerprint, seed)
                live.add(str(self._path(shard, key)))
                live.add(str(self._legacy_path(shard, key)))
        removed = 0
        for pattern in ("*/*.bin", "*/*.json"):
            for path in self.root.glob(pattern):
                if str(path) not in live:
                    path.unlink()
                    removed += 1
        return removed


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
@dataclass
class EngineStats:
    """What one :func:`run_experiments` call did."""

    jobs: int
    shards_total: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed_s: float = 0.0

    def summary(self) -> str:
        """One line for the CLI's stderr: shard counts and elapsed time."""
        return (f"{self.shards_total} shards: {self.cache_hits} cached, "
                f"{self.executed} executed on {self.jobs} "
                f"job{'s' if self.jobs != 1 else ''} "
                f"in {self.elapsed_s:.2f}s")


@dataclass
class EngineRun:
    """Results of one engine invocation, in requested order."""

    results: Dict[str, Any] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=lambda: EngineStats(jobs=1))


@dataclass(frozen=True)
class ShardEvent:
    """One progress notification from :func:`run_experiments`.

    ``kind`` is ``"cache-hit"`` (served from the result cache),
    ``"started"`` (compute began — under ``jobs > 1`` this fires at pool
    submission), or ``"finished"`` (compute completed).  Events fire in the
    submitting process, never inside pool workers, so callbacks may touch
    shared state freely.
    """

    kind: str
    experiment: str
    shard: str
    index: int          # position in this run's full shard list
    total: int          # shard count of this run

ProgressFn = Callable[[ShardEvent], None]


def resolve_ids(ids: Sequence[str]) -> List[str]:
    """Expand ``all`` and validate experiment ids, preserving order."""
    known = experiment_registry()
    resolved: List[str] = []
    for experiment_id in ids:
        if experiment_id == "all":
            selected: Sequence[str] = list(known)
        elif experiment_id in known:
            selected = [experiment_id]
        else:
            raise ReproError(
                f"unknown experiment {experiment_id!r}; known: "
                f"{', '.join(known)} (or 'all')")
        for one in selected:
            if one not in resolved:
                resolved.append(one)
    return resolved


def _execute_missing(missing: List[Shard], params: CalibratedParameters,
                     seed: int, jobs: int,
                     notify: Callable[[str, Shard], None]
                     ) -> Dict[Tuple[str, str], Any]:
    """Encoded payloads for *missing* shards, serially or on a pool.

    *notify* is called as ``notify(kind, shard)`` with ``"started"`` /
    ``"finished"`` around each shard's compute, always in this process.
    """
    if not missing:
        return {}
    if jobs > 1 and (os.cpu_count() or 1) == 1:
        # A pool of forks on a single-CPU host only adds fork/IPC
        # overhead on top of the same serial compute — run inline.
        _LOG.info("single-CPU host: running %d shard(s) serially "
                  "(jobs=%d requested)", len(missing), jobs)
        jobs = 1
    if jobs <= 1 or len(missing) == 1:
        payloads: Dict[Tuple[str, str], Any] = {}
        for shard in missing:
            notify("started", shard)
            payloads[(shard.experiment, shard.key)] = _execute_shard(
                shard.fn, shard.kwargs_dict(), params, seed)
            notify("finished", shard)
        return payloads

    import multiprocessing
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = None
    # Results are keyed by shard, so the merge below never observes
    # completion order; only the *progress notifications* follow it.
    with ProcessPoolExecutor(max_workers=min(jobs, len(missing)),
                             mp_context=context) as pool:
        futures = {}
        for shard in missing:
            notify("started", shard)
            futures[pool.submit(_execute_shard, shard.fn,
                                shard.kwargs_dict(), params, seed)] = shard
        payloads = {}
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                shard = futures[future]
                payloads[(shard.experiment, shard.key)] = future.result()
                notify("finished", shard)
        return payloads


def run_experiments(ids: Sequence[str],
                    params: Optional[CalibratedParameters] = None,
                    seed: int = DEFAULT_SEED,
                    jobs: int = 1,
                    use_cache: bool = True,
                    cache_dir: Optional[str] = None,
                    progress: Optional[ProgressFn] = None) -> EngineRun:
    """Run *ids* (or ``["all"]``) and return merged results + stats.

    Serial (``jobs=1``), parallel, and fully cached invocations return
    identical results: every path decodes the same encoded payloads and
    merges them in registry order.  *progress*, when given, receives a
    :class:`ShardEvent` per cache hit / compute start / compute finish —
    it observes execution order, never influences results.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    resolved = resolve_ids(ids)
    params = params or default_parameters()
    fingerprint = params_fingerprint(params)
    registry = experiment_registry()
    cache = ResultCache(cache_dir) if use_cache else None

    started = time.perf_counter()
    shards = [shard for experiment_id in resolved
              for shard in registry[experiment_id].shards]
    indexes = {(shard.experiment, shard.key): position
               for position, shard in enumerate(shards)}

    def notify(kind: str, shard: Shard) -> None:
        if progress is not None:
            progress(ShardEvent(
                kind=kind, experiment=shard.experiment, shard=shard.key,
                index=indexes[(shard.experiment, shard.key)],
                total=len(shards)))

    payloads: Dict[Tuple[str, str], Any] = {}
    missing: List[Shard] = []
    for shard in shards:
        cached = cache.load(shard, fingerprint, seed) if cache else None
        if cached is not None:
            payloads[(shard.experiment, shard.key)] = cached
            notify("cache-hit", shard)
        else:
            missing.append(shard)

    exec_started = time.perf_counter()
    computed = _execute_missing(missing, params, seed, jobs, notify)
    exec_elapsed = time.perf_counter() - exec_started
    payloads.update(computed)
    if cache and missing:
        per_shard = exec_elapsed / len(missing)
        for shard in missing:
            cache.store(shard, fingerprint, seed,
                        payloads[(shard.experiment, shard.key)], per_shard)

    run = EngineRun(stats=EngineStats(
        jobs=jobs, shards_total=len(shards),
        cache_hits=len(shards) - len(missing), executed=len(missing)))
    for experiment_id in resolved:
        definition = registry[experiment_id]
        decoded = {
            shard.key: decode_result(payloads[(shard.experiment, shard.key)])
            for shard in definition.shards
        }
        run.results[experiment_id] = definition.merge(decoded)
    run.stats.elapsed_s = time.perf_counter() - started
    return run


__all__ = [
    "ABLATION_ARMS",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_SEED",
    "EngineRun",
    "EngineStats",
    "ExperimentDef",
    "LOAD_SWEEP_RATES",
    "ProgressFn",
    "ResultCache",
    "SENSITIVITY_SUITE",
    "Shard",
    "ShardEvent",
    "experiment_ids",
    "experiment_registry",
    "resolve_ids",
    "run_experiments",
]
