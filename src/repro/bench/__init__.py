"""Experiment harness: one driver per paper table/figure, plus ablations."""

from repro.bench.ablations import (DeoptResult, KeepAliveOutcome,
                                   PolicyComparison,
                                   run_aot_comparison,
                                   run_catalyzer_comparison,
                                   run_deopt_experiment,
                                   run_keepalive_policy_comparison,
                                   run_policy_comparison,
                                   run_regeneration_demo,
                                   run_remote_store_ablation,
                                   run_restore_policy_ablation,
                                   run_store_eviction_demo)
from repro.bench.concurrency import (BurstResult, run_burst,
                                     run_burst_comparison)
from repro.bench.engine import (ResultCache, experiment_ids,
                                run_experiments)
from repro.bench.stats import LatencyStats, histogram, percentile
from repro.bench.tracing import (to_chrome_trace_json, trace_events,
                                 write_chrome_trace)
from repro.bench.factors import FactorRow, run_factor_analysis, run_fig11
from repro.bench.faasdom_experiments import (run_faasdom_benchmark,
                                             run_faasdom_figure, run_fig6,
                                             run_fig7)
from repro.bench.cluster import (ClusterPolicyOutcome,
                                 run_cluster_scheduling)
from repro.bench.harness import (cold_and_warm, drain, fireworks_invocation,
                                 fresh_cluster_platform, fresh_platform,
                                 install_all, install_chain,
                                 invoke_once, provision_warm)
from repro.bench.export import export_all
from repro.bench.memory import (FACTOR_CONFIGS, fig12_improvements,
                                run_fig4_view, run_fig10, run_fig12)
from repro.bench.paper import comparison_summary, headline_comparisons
from repro.bench.realworld import run_fig9
from repro.bench.results import (FigureResult, LatencyRow, MemoryPoint,
                                 MemorySeries, PaperComparison,
                                 format_comparisons, geometric_mean)
from repro.bench.tables import (run_snapshot_creation_times, run_table1,
                                run_table2)

__all__ = [
    "BurstResult",
    "ClusterPolicyOutcome",
    "DeoptResult",
    "FACTOR_CONFIGS",
    "FactorRow",
    "FigureResult",
    "KeepAliveOutcome",
    "LatencyRow",
    "LatencyStats",
    "MemoryPoint",
    "MemorySeries",
    "PaperComparison",
    "PolicyComparison",
    "ResultCache",
    "cold_and_warm",
    "comparison_summary",
    "drain",
    "experiment_ids",
    "export_all",
    "fig12_improvements",
    "headline_comparisons",
    "fireworks_invocation",
    "format_comparisons",
    "fresh_cluster_platform",
    "fresh_platform",
    "geometric_mean",
    "histogram",
    "install_all",
    "install_chain",
    "invoke_once",
    "percentile",
    "provision_warm",
    "run_aot_comparison",
    "run_burst",
    "run_burst_comparison",
    "run_experiments",
    "run_catalyzer_comparison",
    "run_cluster_scheduling",
    "run_deopt_experiment",
    "run_faasdom_benchmark",
    "run_keepalive_policy_comparison",
    "run_faasdom_figure",
    "run_factor_analysis",
    "run_fig4_view",
    "run_fig6",
    "run_fig7",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_policy_comparison",
    "run_regeneration_demo",
    "run_remote_store_ablation",
    "run_restore_policy_ablation",
    "run_snapshot_creation_times",
    "run_store_eviction_demo",
    "run_table1",
    "run_table2",
    "to_chrome_trace_json",
    "trace_events",
    "write_chrome_trace",
]
