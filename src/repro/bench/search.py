"""Offline Pareto policy search (extension): ``repro search``.

Sweeps *declarative policy documents* — the :mod:`repro.policy` DSL —
across the three decision layers the policy engine unified (placement,
keep-alive, warm-pool autoscaling) and evaluates every candidate on the
open-loop load trace.  The output is a seeded, deterministic Pareto
frontier over three objectives, all minimized:

* **p99 end-to-end latency** (ms) — the tail a user sees;
* **mean warm memory** (MiB) — what the operator pays to keep workers
  resident;
* **shed rate** — admission-control drops / submissions.

Candidate generation is pure function of ``(seed, count)``: candidate 0
is always the ``round-robin`` + ``none`` built-in baseline, a fixed
block of *anchor* DSL documents mirrors (and perturbs) the built-in
policies, and the remainder are RNG-mutated weighted-score placement
documents paired with mutated autoscale documents and a swept keep-alive
window.  Because each candidate is regenerated from the seed, the
parallel engine can shard the search by candidate index and the result
cache stays content-correct.

The evaluation point deliberately sits past the saturation knee of a
small OpenWhisk cluster (popular arrivals ~150 ms against 9 concurrent
slots) with the keep-alive window *above* round-robin's per-host revisit
period: spraying placements then keeps one warm container per host per
popular function resident, so concentrating policies genuinely dominate
the baseline on all three axes rather than merely trading them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.sim.rng import RngStreams

#: The search evaluates on OpenWhisk: cold starts are expensive enough
#: that placement decides the warm-hit rate, and keep-alive memory is
#: visible under every autoscale mode.
SEARCH_PLATFORM = "openwhisk"

#: Default candidate count (>= 20 per the search acceptance bar).
DEFAULT_CANDIDATES = 24
#: Candidate count of the CI smoke run.
SMOKE_CANDIDATES = 6
DEFAULT_SEED = 2022

#: Keep-alive windows the mutated candidates sweep.  600 ms sits just
#: above round-robin's per-host revisit period at the evaluation scale
#: (3 hosts x 150 ms popular gap), which is what makes the frontier
#: interesting — see the module docstring.
KEEPALIVE_CHOICES = (400.0, 600.0, 800.0)
BASELINE_KEEPALIVE_MS = 600.0

#: Full evaluation point: a 3-host / 9-slot OpenWhisk cluster pushed past
#: its saturation knee for one simulated minute (~0.15 s wall per
#: candidate).
SEARCH_EVAL: Dict[str, float] = dict(
    n_hosts=3, n_functions=10, duration_ms=60_000.0, capacity_per_host=3,
    popular_interarrival_ms=150.0, rare_interarrival_ms=120_000.0)

#: CI smoke evaluation point: same shape, a few seconds of trace.
SMOKE_EVAL: Dict[str, float] = dict(
    n_hosts=2, n_functions=6, duration_ms=8_000.0, capacity_per_host=2,
    popular_interarrival_ms=200.0, rare_interarrival_ms=60_000.0)

#: A policy knob: a registered name or a DSL document.
PolicyLike = Union[str, Dict[str, Any]]


# ---------------------------------------------------------------------------
# Candidate documents
# ---------------------------------------------------------------------------
def placement_score_doc(name: str, w_active: float, w_home: float,
                        w_local: float) -> Dict[str, Any]:
    """A weighted-argmin placement document over the node signals.

    ``argmin w_active*active + w_home*home_distance + w_local*local_state``
    over nodes with room — the mutation space of the search.  (0, 1, 0)
    is exactly the built-in ``hash`` policy; (1, 0, 0) is
    ``least-loaded``; a negative ``w_local`` rewards warm/snapshot
    locality.
    """
    return {
        "name": name,
        "domain": "placement",
        "description": (f"searched weighted argmin: {w_active}*active + "
                        f"{w_home}*home_distance + {w_local}*local_state"),
        "tree": {
            "choose": "argmin",
            "score": [
                {"signal": "active", "weight": w_active},
                {"signal": "home_distance", "weight": w_home},
                {"signal": "local_state", "weight": w_local},
            ],
            "where": [{"signal": "has_room", "op": ">=", "value": 1}],
        },
    }


def placement_locality_doc(name: str) -> Dict[str, Any]:
    """A snapshot-locality placement document (built-in mirror)."""
    return {
        "name": name,
        "domain": "placement",
        "description": "searched snapshot-locality mirror",
        "tree": {
            "if": {"signal": "any_local_with_room", "op": ">=", "value": 1},
            "then": {
                "choose": "argmin",
                "score": [{"signal": "active"}],
                "where": [{"signal": "has_room", "op": ">=", "value": 1},
                          {"signal": "local_state", "op": ">=", "value": 1}],
            },
            "else": {
                "choose": "argmin",
                "score": [{"signal": "home_distance"}],
                "where": [{"signal": "has_room", "op": ">=", "value": 1}],
            },
        },
    }


def autoscale_none_doc(name: str) -> Dict[str, Any]:
    """An autoscale document that never asks for warm workers."""
    return {
        "name": name,
        "domain": "autoscale",
        "description": "searched no-op autoscale",
        "candidates": "queue-state",
        "tree": {"value": 0},
    }


def autoscale_reactive_doc(name: str, step: float) -> Dict[str, Any]:
    """A reactive autoscale document with a mutated scale-up *step*."""
    return {
        "name": name,
        "domain": "autoscale",
        "description": f"searched reactive autoscale, step={step}",
        "candidates": "queue-state",
        "tree": {
            "if": {"signal": "pressured", "op": ">=", "value": 1},
            "then": {"value": {"sum": [{"signal": "prev_level"},
                                       {"const": step}]}},
            "else": {"value": {"signal": "prev_level"}},
        },
    }


def autoscale_predictive_doc(name: str, weight: float) -> Dict[str, Any]:
    """A predictive autoscale document with a mutated arrival *weight*."""
    return {
        "name": name,
        "domain": "autoscale",
        "description": f"searched predictive autoscale, weight={weight}",
        "candidates": "home-hosts",
        "tree": {
            "if": {"signal": "has_history", "op": "<", "value": 1},
            "then": {"value": 0},
            "else": {
                "if": {"signal": "predicted_gap_ms", "op": "<=",
                       "value": {"signal": "horizon_ms"}},
                "then": {"value": {
                    "sum": [{"signal": "expected_arrivals_in_horizon",
                             "weight": weight}],
                    "clamp": [1.0, 4.0]}},
                "else": {
                    "if": {"signal": "predicted_within_horizon",
                           "op": ">=", "value": 1},
                    "then": {"value": 1},
                    "else": {"value": 0},
                },
            },
        },
    }


# ---------------------------------------------------------------------------
# Candidates
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SearchCandidate:
    """One point of the search space (regenerated from the seed, never
    serialized — only its outcome crosses the cache boundary)."""

    index: int
    name: str
    placement: PolicyLike
    autoscale: PolicyLike
    keepalive_ms: float


def _anchor_candidates() -> List[Tuple[str, PolicyLike, PolicyLike, float]]:
    """The fixed candidates every search contains, baseline first."""
    return [
        # Candidate 0 is the acceptance baseline: both knobs stay on the
        # built-in (non-DSL) path.
        ("baseline-rr-none", "round-robin", "none", BASELINE_KEEPALIVE_MS),
        ("searched-hash-none",
         placement_score_doc("searched-hash", 0.0, 1.0, 0.0),
         autoscale_none_doc("searched-none"), BASELINE_KEEPALIVE_MS),
        ("searched-least-loaded-none",
         placement_score_doc("searched-least-loaded", 1.0, 0.0, 0.0),
         autoscale_none_doc("searched-none"), BASELINE_KEEPALIVE_MS),
        ("searched-locality-none",
         placement_locality_doc("searched-locality"),
         autoscale_none_doc("searched-none"), BASELINE_KEEPALIVE_MS),
        ("searched-hash-reactive",
         placement_score_doc("searched-hash", 0.0, 1.0, 0.0),
         autoscale_reactive_doc("searched-reactive", 1.0),
         BASELINE_KEEPALIVE_MS),
        ("searched-hash-predictive",
         placement_score_doc("searched-hash", 0.0, 1.0, 0.0),
         autoscale_predictive_doc("searched-predictive", 1.0),
         BASELINE_KEEPALIVE_MS),
        ("searched-hash-none-ka800",
         placement_score_doc("searched-hash", 0.0, 1.0, 0.0),
         autoscale_none_doc("searched-none"), 800.0),
    ]


def generate_candidates(seed: int,
                        count: int = DEFAULT_CANDIDATES
                        ) -> Tuple[SearchCandidate, ...]:
    """The deterministic candidate set for *(seed, count)*.

    Prefix-stable: growing *count* only appends candidates, and the
    parallel engine's per-index shards regenerate exactly this list.
    """
    rng = RngStreams(seed).stream("policy-search")
    rows = _anchor_candidates()[:count]
    while len(rows) < count:
        index = len(rows)
        w_active = round(rng.uniform(0.0, 2.0), 3)
        w_home = round(rng.uniform(0.0, 1.5), 3)
        w_local = round(-rng.uniform(0.0, 3.0), 3)
        placement = placement_score_doc(
            f"searched-{index:02d}", w_active, w_home, w_local)
        kind = rng.randrange(3)
        if kind == 0:
            autoscale: PolicyLike = autoscale_none_doc(
                f"searched-{index:02d}-none")
        elif kind == 1:
            autoscale = autoscale_reactive_doc(
                f"searched-{index:02d}-reactive",
                float(rng.choice((1, 2, 3))))
        else:
            autoscale = autoscale_predictive_doc(
                f"searched-{index:02d}-predictive",
                round(rng.uniform(0.5, 1.5), 3))
        keepalive_ms = rng.choice(KEEPALIVE_CHOICES)
        rows.append((f"searched-{index:02d}", placement, autoscale,
                     keepalive_ms))
    return tuple(
        SearchCandidate(index=index, name=name, placement=placement,
                        autoscale=autoscale, keepalive_ms=keepalive_ms)
        for index, (name, placement, autoscale, keepalive_ms)
        in enumerate(rows))


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SearchCandidateOutcome:
    """One evaluated candidate: resolved policy identity + objectives."""

    index: int
    name: str
    placement: str          # resolved placement policy name
    placement_source: str   # "builtin" | "dsl"
    autoscale: str          # resolved autoscale policy name
    autoscale_source: str   # "builtin" | "dsl"
    keepalive_ms: float
    requests: int
    completed: int
    p50_ms: float
    p99_ms: float
    shed_rate: float
    mean_warm_mb: float

    def objectives(self) -> Tuple[float, float, float]:
        """The minimized objective vector (p99, warm memory, shed)."""
        return (self.p99_ms, self.mean_warm_mb, self.shed_rate)

    def as_line(self) -> str:
        """One-line summary for the search figure."""
        return (f"{self.name:<26} [{self.placement_source[0]}] "
                f"place={self.placement:<21} scale={self.autoscale:<22} "
                f"ka={self.keepalive_ms:5.0f}ms "
                f"p99={self.p99_ms:8.1f}ms "
                f"warm={self.mean_warm_mb:7.1f}MiB "
                f"shed={self.shed_rate:7.3%}")


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """The merged search: every outcome plus the derived frontier."""

    platform: str
    baseline: str                                   # candidate 0's name
    outcomes: Tuple[SearchCandidateOutcome, ...]    # by candidate index
    frontier: Tuple[str, ...]       # Pareto-optimal candidate names
    dominators: Tuple[str, ...]     # candidates dominating the baseline


def dominates(a: SearchCandidateOutcome, b: SearchCandidateOutcome) -> bool:
    """Pareto dominance: *a* is no worse on every objective and strictly
    better on at least one (all objectives minimized)."""
    ours, theirs = a.objectives(), b.objectives()
    return (all(x <= y for x, y in zip(ours, theirs))
            and any(x < y for x, y in zip(ours, theirs)))


def pareto_frontier(outcomes: Tuple[SearchCandidateOutcome, ...]
                    ) -> Tuple[SearchCandidateOutcome, ...]:
    """The outcomes no other outcome dominates, in candidate order."""
    return tuple(one for one in outcomes
                 if not any(dominates(other, one) for other in outcomes
                            if other is not one))


def build_search_result(outcomes: Tuple[SearchCandidateOutcome, ...]
                        ) -> SearchResult:
    """Derive the frontier and baseline dominators from raw outcomes."""
    ordered = tuple(sorted(outcomes, key=lambda one: one.index))
    baseline = ordered[0]
    frontier = pareto_frontier(ordered)
    return SearchResult(
        platform=SEARCH_PLATFORM,
        baseline=baseline.name,
        outcomes=ordered,
        frontier=tuple(one.name for one in frontier),
        dominators=tuple(one.name for one in ordered
                         if one is not baseline
                         and dominates(one, baseline)))


def evaluate_candidate(candidate: SearchCandidate,
                       params=None, seed: int = DEFAULT_SEED,
                       eval_kw: Optional[Dict[str, float]] = None
                       ) -> SearchCandidateOutcome:
    """Run one candidate on the open-loop trace and score it."""
    from repro.bench.load import run_load_platform
    from repro.policy import resolve_autoscale, resolve_placement
    placement = resolve_placement(candidate.placement)
    autoscale = resolve_autoscale(candidate.autoscale)
    outcome = run_load_platform(
        SEARCH_PLATFORM, "none", params=params, seed=seed,
        keepalive_ms=candidate.keepalive_ms,
        placement_policy=candidate.placement,
        autoscale_policy=candidate.autoscale,
        **dict(SEARCH_EVAL if eval_kw is None else eval_kw))
    return SearchCandidateOutcome(
        index=candidate.index,
        name=candidate.name,
        placement=placement.name,
        placement_source=placement.source,
        autoscale=autoscale.name,
        autoscale_source=autoscale.source,
        keepalive_ms=candidate.keepalive_ms,
        requests=outcome.requests,
        completed=outcome.completed,
        p50_ms=outcome.latency.p50_ms,
        p99_ms=outcome.latency.p99_ms,
        shed_rate=outcome.shed_rate,
        mean_warm_mb=outcome.mean_warm_mb)


def evaluate_index(params, seed: int, index: int,
                   count: int = DEFAULT_CANDIDATES) -> SearchCandidateOutcome:
    """Engine shard entry: regenerate candidate *index* from the seed and
    evaluate it (keeps the content-addressed cache key honest)."""
    candidates = generate_candidates(seed, count)
    return evaluate_candidate(candidates[index], params=params, seed=seed)


def run_search(params=None, seed: int = DEFAULT_SEED,
               count: Optional[int] = None,
               smoke: bool = False) -> SearchResult:
    """The whole search, serially (the engine path shards by index).

    *smoke* shrinks both the candidate set and the evaluation trace to a
    couple of wall-clock seconds — the CI byte-determinism job runs it
    twice and diffs the canonical JSON.
    """
    if count is None:
        count = SMOKE_CANDIDATES if smoke else DEFAULT_CANDIDATES
    eval_kw = SMOKE_EVAL if smoke else SEARCH_EVAL
    outcomes = tuple(
        evaluate_candidate(candidate, params=params, seed=seed,
                           eval_kw=eval_kw)
        for candidate in generate_candidates(seed, count))
    return build_search_result(outcomes)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
_PLOT_WIDTH = 56
_PLOT_HEIGHT = 12


def _scatter(result: SearchResult) -> List[str]:
    """ASCII scatter of p99 (x) vs mean warm memory (y); ``#`` marks the
    frontier, ``B`` the baseline, ``o`` everything else."""
    outcomes = result.outcomes
    xs = [one.p99_ms for one in outcomes]
    ys = [one.mean_warm_mb for one in outcomes]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * _PLOT_WIDTH for _ in range(_PLOT_HEIGHT)]
    frontier = set(result.frontier)

    def plot(one: SearchCandidateOutcome, mark: str) -> None:
        col = round((one.p99_ms - x_lo) / x_span * (_PLOT_WIDTH - 1))
        row = round((one.mean_warm_mb - y_lo) / y_span * (_PLOT_HEIGHT - 1))
        grid[_PLOT_HEIGHT - 1 - row][col] = mark

    # Paint in increasing precedence so the interesting marks win cells.
    for one in outcomes:
        if one.name not in frontier and one.name != result.baseline:
            plot(one, "o")
    for one in outcomes:
        if one.name in frontier:
            plot(one, "#")
    for one in outcomes:
        if one.name == result.baseline:
            plot(one, "B")

    lines = [f"warm memory (MiB)  {y_hi:8.1f} " + "." * _PLOT_WIDTH]
    for row in grid:
        lines.append(" " * 28 + "".join(row))
    lines.append(f"{'':19}{y_lo:8.1f} " + "." * _PLOT_WIDTH)
    lines.append(f"{'':28}p99 {x_lo:.0f}ms "
                 + " " * max(0, _PLOT_WIDTH - 24)
                 + f"{x_hi:.0f}ms")
    return lines


def render_search_figure(result: SearchResult) -> List[str]:
    """The ``repro search`` text figure: per-candidate lines, markers for
    the frontier (``*``) and baseline-dominators (``+``), then the
    scatter and a frontier summary."""
    lines = [f"policy search on {result.platform}: "
             f"{len(result.outcomes)} candidates, "
             f"objectives (p99 ms, mean warm MiB, shed rate), "
             f"baseline {result.baseline}"]
    frontier = set(result.frontier)
    dominators = set(result.dominators)
    for one in result.outcomes:
        star = "*" if one.name in frontier else " "
        plus = "+" if one.name in dominators else " "
        lines.append(f"{star}{plus} {one.as_line()}")
    lines.append("")
    lines.extend(_scatter(result))
    lines.append("")
    lines.append(f"frontier ({len(result.frontier)}): "
                 + ", ".join(result.frontier))
    if result.dominators:
        lines.append(f"dominate {result.baseline} on all three objectives: "
                     + ", ".join(result.dominators))
    else:
        lines.append(f"no candidate dominates {result.baseline} "
                     "on all three objectives")
    return lines
