"""Parameter-sensitivity analysis (research tool, extension).

Varies one calibrated constant across a range and reports the effect on a
headline metric, so a reader can see which conclusions are robust to
calibration error and which hinge on a constant.

Example: sweep V8's hotness threshold and watch the Node fact exec
improvement (Fig 6a's 38%) respond; sweep the snapshot working-set fraction
and watch the 133x cold-start ratio respond.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import CalibratedParameters, default_parameters
from repro.errors import ReproError
from repro.validation import validate_or_raise

MetricFn = Callable[[CalibratedParameters], float]


@dataclass(frozen=True)
class SensitivityPoint:
    """One swept value and the metric it produced."""

    value: float
    metric: float


@dataclass(frozen=True)
class SensitivityResult:
    """A full sweep of one parameter against one metric."""

    parameter: str
    metric_name: str
    points: List[SensitivityPoint]

    @property
    def metric_range(self) -> float:
        values = [point.metric for point in self.points]
        return max(values) - min(values)

    def as_table(self) -> str:
        """Render the sweep as an aligned table."""
        lines = [f"-- sensitivity: {self.metric_name} vs "
                 f"{self.parameter} --"]
        for point in self.points:
            lines.append(f"  {self.parameter}={point.value:<12g} "
                         f"{self.metric_name}={point.metric:.2f}")
        return "\n".join(lines)


def _override_runtime(params: CalibratedParameters, language: str,
                      **fields) -> CalibratedParameters:
    runtimes = dict(params.runtimes)
    runtimes[language] = replace(runtimes[language], **fields)
    return params.with_overrides(runtimes=runtimes)


def _override_layout(params: CalibratedParameters, language: str,
                     **fields) -> CalibratedParameters:
    layouts = dict(params.memory_layouts)
    layouts[language] = replace(layouts[language], **fields)
    return params.with_overrides(memory_layouts=layouts)


def _override_snapshot(params: CalibratedParameters,
                       **fields) -> CalibratedParameters:
    return params.with_overrides(
        snapshot=replace(params.snapshot, **fields))


#: parameter name -> function(base_params, value) -> new params
PARAMETER_KNOBS: Dict[str, Callable[[CalibratedParameters, float],
                                    CalibratedParameters]] = {
    "nodejs.hotness_threshold_units": lambda p, v: _override_runtime(
        p, "nodejs", hotness_threshold_units=v),
    "nodejs.jit_compile_ms_per_kunit": lambda p, v: _override_runtime(
        p, "nodejs", jit_compile_ms_per_kunit=v),
    "python.interp_units_per_ms": lambda p, v: _override_runtime(
        p, "python", interp_units_per_ms=v),
    "nodejs.snapshot_working_set_fraction": lambda p, v: _override_layout(
        p, "nodejs", snapshot_working_set_mb_fraction=v),
    "snapshot.restore_per_working_mb_ms": lambda p, v: _override_snapshot(
        p, restore_per_working_mb_ms=v),
    "nodejs.steady_state_dirty_fraction": lambda p, v: _override_layout(
        p, "nodejs", steady_state_dirty_fraction=v),
}


# -- headline metrics ---------------------------------------------------------
def metric_node_exec_improvement(params: CalibratedParameters) -> float:
    """Fig 6a's exec bar: % faster than Firecracker cold (paper: 38%)."""
    from repro.bench.faasdom_experiments import run_faasdom_benchmark
    figure = run_faasdom_benchmark("faas-fact", "nodejs", params)
    fw = figure.row("fireworks", "snapshot").exec_ms
    cold = figure.row("firecracker", "cold").exec_ms
    return 100.0 * (1.0 - fw / cold)


def metric_cold_start_speedup(params: CalibratedParameters) -> float:
    """Fig 6a's start-up ratio (paper: up to 133x)."""
    from repro.bench.faasdom_experiments import run_faasdom_benchmark
    figure = run_faasdom_benchmark("faas-fact", "nodejs", params)
    return (figure.row("firecracker", "cold").startup_ms
            / figure.row("fireworks", "snapshot").startup_ms)


def metric_consolidation_ratio(params: CalibratedParameters) -> float:
    """Fig 10's ratio (paper: 1.68x)."""
    from repro.bench.memory import run_fig10
    results = run_fig10(params, sample_every=400)
    return (results["fireworks"].max_vms_before_swap
            / results["firecracker"].max_vms_before_swap)


METRICS: Dict[str, MetricFn] = {
    "node_exec_improvement_pct": metric_node_exec_improvement,
    "cold_start_speedup_x": metric_cold_start_speedup,
    "consolidation_ratio": metric_consolidation_ratio,
}


def _sweep_point(parameter: str, value: float, metric: str,
                 params: CalibratedParameters) -> float:
    """Measure one sweep point (module-level: picklable into workers)."""
    modified = PARAMETER_KNOBS[parameter](params, value)
    validate_or_raise(modified)
    return METRICS[metric](modified)


def run_sensitivity(parameter: str, values: Sequence[float],
                    metric: str,
                    params: Optional[CalibratedParameters] = None,
                    jobs: int = 1) -> SensitivityResult:
    """Sweep *parameter* over *values*, measuring *metric* at each point.

    With ``jobs > 1`` the (independent) points run on a process pool;
    results are collected in submission order, so the returned sweep is
    identical to a serial run.
    """
    if parameter not in PARAMETER_KNOBS:
        raise ReproError(
            f"unknown knob {parameter!r}; knobs: "
            f"{sorted(PARAMETER_KNOBS)}")
    if metric not in METRICS:
        raise ReproError(
            f"unknown metric {metric!r}; metrics: {sorted(METRICS)}")
    base = params or default_parameters()

    if jobs > 1 and len(values) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(jobs, len(values))) as pool:
            futures = [pool.submit(_sweep_point, parameter, value, metric,
                                   base)
                       for value in values]
            metrics = [future.result() for future in futures]
    else:
        metrics = [_sweep_point(parameter, value, metric, base)
                   for value in values]
    points = [SensitivityPoint(value=value, metric=measured)
              for value, measured in zip(values, metrics)]
    return SensitivityResult(parameter=parameter, metric_name=metric,
                             points=points)
