"""Figure 11: factor analysis of performance.

Starting from plain Firecracker (no snapshot) as the baseline, measure the
end-to-end latency gain from (1) adding a VM-level OS snapshot and (2)
adding the post-JIT snapshot — per FaaSdom benchmark, per language (§5.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.harness import (fireworks_invocation, fresh_platform,
                                 install_all, invoke_once)
from repro.config import CalibratedParameters
from repro.platforms.base import MODE_COLD
from repro.platforms.firecracker import (FirecrackerPlatform,
                                         FirecrackerSnapshotPlatform)
from repro.snapshot.image import STAGE_OS
from repro.workloads.faasdom import BENCHMARK_NAMES, LANGUAGES, faasdom_spec


@dataclass(frozen=True)
class FactorRow:
    """One workload's factor analysis: total latency per configuration."""

    workload: str
    baseline_ms: float        # plain Firecracker, cold
    os_snapshot_ms: float     # + VM-level OS snapshot
    post_jit_ms: float        # + post-JIT snapshot (Fireworks)

    @property
    def os_snapshot_speedup(self) -> float:
        return self.baseline_ms / self.os_snapshot_ms

    @property
    def post_jit_speedup(self) -> float:
        """Total speedup of the full Fireworks design over the baseline."""
        return self.baseline_ms / self.post_jit_ms

    @property
    def post_jit_over_os_speedup(self) -> float:
        """The increment attributable to post-JIT alone."""
        return self.os_snapshot_ms / self.post_jit_ms

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.workload:<28} baseline={self.baseline_ms:>8.1f}m "
                f"+os-snap={self.os_snapshot_ms:>8.1f}m "
                f"({self.os_snapshot_speedup:>4.1f}x) "
                f"+post-jit={self.post_jit_ms:>7.1f}m "
                f"({self.post_jit_speedup:>5.1f}x total)")


def run_factor_analysis(benchmark: str, language: str,
                        params: Optional[CalibratedParameters] = None
                        ) -> FactorRow:
    """Factor analysis for one workload."""
    spec = faasdom_spec(benchmark, language)

    baseline_platform = fresh_platform(FirecrackerPlatform, params)
    install_all(baseline_platform, [spec])
    baseline = invoke_once(baseline_platform, spec.name, mode=MODE_COLD)

    os_platform = fresh_platform(FirecrackerSnapshotPlatform, params,
                                 stage=STAGE_OS)
    install_all(os_platform, [spec])
    os_snap = invoke_once(os_platform, spec.name)

    post_jit = fireworks_invocation(spec, params)

    return FactorRow(
        workload=spec.name,
        baseline_ms=baseline.total_ms,
        os_snapshot_ms=os_snap.total_ms,
        post_jit_ms=post_jit.total_ms)


def run_fig11(params: Optional[CalibratedParameters] = None,
              benchmarks: Optional[List[str]] = None,
              languages: Optional[List[str]] = None
              ) -> Dict[str, FactorRow]:
    """Figure 11: the full performance factor analysis."""
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    languages = languages or list(LANGUAGES)
    return {
        f"{benchmark}-{language}": run_factor_analysis(
            benchmark, language, params)
        for benchmark in benchmarks for language in languages
    }
