"""Text rendering of merged experiment results.

One renderer serves both fronts of the harness: the CLI (``repro run`` /
``repro figure``) prints these strings to stdout, and the experiment
service (:mod:`repro.serve`) returns the *same bytes* from
``GET /experiments/{id}/figures`` — which is what makes the API-vs-CLI
differential test (and the CI byte-diff) meaningful.

Rendering writes to a caller-local stream, never to the process-global
``sys.stdout``: the service registry renders on per-run worker threads,
so concurrent runs (or anything else printing meanwhile) must not be
able to interleave into each other's frozen ``figures_text`` artifact.
"""

from __future__ import annotations

import dataclasses
import io
from typing import TextIO

from repro.errors import ReproError

__all__ = ["render_experiment_text", "render_run_text"]


def _print_fig_dict(results, out: TextIO, chart: bool = False) -> None:
    from repro.bench.ascii_chart import render_figure
    for result in results.values():
        print(render_figure(result) if chart else result.as_table(),
              file=out)
        print(file=out)


def _print_generic(result, out: TextIO, indent: str = "  ") -> None:
    """Fallback renderer for ablation arms: dicts and result dataclasses."""
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        result = {f.name: getattr(result, f.name)
                  for f in dataclasses.fields(result)}
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, dict):
                cells = " ".join(
                    f"{k}={v:.1f}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in value.items())
                print(f"{indent}{key:<22} {cells}", file=out)
            elif isinstance(value, float):
                print(f"{indent}{key:<22} {value:.2f}", file=out)
            else:
                print(f"{indent}{key:<22} {value}", file=out)
    else:
        print(f"{indent}{result}", file=out)


def _render_experiment(name: str, result, out: TextIO,
                       chart: bool = False) -> None:
    """Print *result* (a merged experiment result) to *out*."""
    from repro.bench import fig12_improvements
    from repro.bench.memory import FACTOR_CONFIGS
    if name == "table1":
        for row in result:
            print(f"{row['platform']:<22} {row['isolation']:<22} "
                  f"{row['performance']:<26} {row['memory_efficiency']}",
                  file=out)
    elif name == "table2":
        for row in result:
            print(f"{row['application']:<34} {row['description']:<50} "
                  f"{row['language']}", file=out)
    elif name == "snapshot-creation":
        for fn, parts in sorted(result.items()):
            print(f"{fn:<28} snapshot={parts['snapshot_ms']:.0f}ms "
                  f"total-install={parts['total_ms']:.0f}ms", file=out)
    elif name in ("fig6", "fig7", "fig9"):
        _print_fig_dict(result, out, chart)
    elif name == "fig10":
        for series in result.values():
            print(series.as_table(), file=out)
    elif name == "fig11":
        for row in result.values():
            print(row.as_line(), file=out)
    elif name == "fig12":
        for workload, per_config in sorted(result.items()):
            cells = " ".join(f"{per_config[c]:8.1f}M"
                             for c in FACTOR_CONFIGS)
            print(f"{workload:<28} {cells}", file=out)
        for workload, values in sorted(fig12_improvements(result).items()):
            print(f"{workload:<28} os-snap "
                  f"{values['os_snapshot_vs_baseline_pct']:5.1f}%  "
                  f"post-jit {values['post_jit_vs_os_snapshot_pct']:5.1f}%",
                  file=out)
    elif name == "scorecard":
        from repro.bench.results import format_comparisons
        print(format_comparisons("Fireworks headline claims", result),
              file=out)
    elif name == "burst":
        for burst in result.values():
            print(burst.as_line(), file=out)
    elif name == "load-sweep":
        for platform, points in result.items():
            for rate, point in points.items():
                mark = " saturated" if point.saturated else ""
                print(f"{platform:<22} offered={rate:6.1f}rps "
                      f"achieved={point.achieved_rps:6.1f}rps "
                      f"p50={point.latency.p50_ms:7.1f}ms "
                      f"p99={point.latency.p99_ms:7.1f}ms "
                      f"wait={point.mean_queue_wait_ms:7.1f}ms{mark}",
                      file=out)
    elif name == "sensitivity":
        for sweep in result.values():
            print(sweep.as_table(), file=out)
            print(file=out)
    elif name == "ablations":
        for arm, arm_result in result.items():
            print(f"-- {arm} --", file=out)
            _print_generic(arm_result, out)
    elif name == "policies":
        _print_generic(result, out, indent="")
    elif name in ("keepalive", "cluster", "chaos", "load", "chains"):
        for outcome in result.values():
            print(outcome.as_line(), file=out)
    elif name == "restore":
        from repro.bench.restore import render_restore_figure
        for line in render_restore_figure(result):
            print(line, file=out)
    elif name in ("search", "search-smoke"):
        from repro.bench.search import render_search_figure
        for line in render_search_figure(result):
            print(line, file=out)
    else:  # pragma: no cover - callers validate ids against the registry
        # ReproError, not SystemExit: the service registry renders on a
        # worker thread whose error path only catches Exception — a
        # BaseException here would kill the thread and wedge the run.
        raise ReproError(f"unknown figure {name!r}")


def render_experiment_text(name: str, result, chart: bool = False) -> str:
    """One experiment's rendered body, exactly as ``repro run`` prints it."""
    buffer = io.StringIO()
    _render_experiment(name, result, buffer, chart)
    return buffer.getvalue()


def render_run_text(results, chart: bool = False) -> str:
    """A whole run ({id: merged result}), exactly as ``repro figure``
    prints it to stdout: ``== id ==`` header, body, blank line."""
    parts = []
    for name, result in results.items():
        parts.append(f"== {name} ==\n")
        parts.append(render_experiment_text(name, result, chart))
        parts.append("\n")
    return "".join(parts)
