"""A threaded stdlib HTTP adapter for the ASGI app (``repro serve``).

The container for this repo ships no ASGI server, so ``repro serve``
bridges :class:`http.server.ThreadingHTTPServer` onto the app callable:
each request thread builds an ASGI scope, runs the app coroutine to
completion with :func:`asyncio.run`, and streams response chunks (SSE
included) straight to the socket.  Long-running engine work happens on
the registry's own worker threads, so request handling stays responsive
while experiments run.

This is a control-plane server for experiment orchestration, not an
internet-facing one — bind it to localhost (the default) or put a real
proxy in front.
"""

from __future__ import annotations

import asyncio
import logging
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.app import create_app

__all__ = ["make_server", "run_server"]

_LOG = logging.getLogger(__name__)


class _AsgiRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # The ThreadingHTTPServer subclass injects the app (see make_server).
    @property
    def app(self):
        return self.server.asgi_app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _LOG.debug("%s - %s", self.address_string(), format % args)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")

    def do_PUT(self) -> None:
        self._handle("PUT")

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("content-length") or 0)
        body = self.rfile.read(length) if length else b""
        raw_path, _, query = self.path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": self.request_version.split("/")[-1],
            "method": method,
            "scheme": "http",
            "path": raw_path,
            "raw_path": raw_path.encode("utf-8"),
            "query_string": query.encode("utf-8"),
            "root_path": "",
            "headers": [(key.lower().encode("latin-1"),
                         value.encode("latin-1"))
                        for key, value in self.headers.items()],
            "client": self.client_address,
            "server": self.server.server_address[:2],
        }
        try:
            asyncio.run(self._run_app(scope, body))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    async def _run_app(self, scope, body: bytes) -> None:
        messages = [{"type": "http.request", "body": body,
                     "more_body": False}]

        async def receive():
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        started = {"sent": False, "chunked": False}

        async def send(message) -> None:
            if message["type"] == "http.response.start":
                self.send_response(message["status"])
                headers = message.get("headers", [])
                names = {key.lower() for key, _ in headers}
                for key, value in headers:
                    self.send_header(key.decode("latin-1"),
                                     value.decode("latin-1"))
                if b"content-length" not in names:
                    # Streaming response (SSE): chunked keeps the
                    # keep-alive connection well-framed.
                    started["chunked"] = True
                    self.send_header("transfer-encoding", "chunked")
                self.end_headers()
                started["sent"] = True
            elif message["type"] == "http.response.body":
                chunk = message.get("body", b"")
                if started["chunked"]:
                    if chunk:
                        self.wfile.write(
                            f"{len(chunk):x}\r\n".encode("ascii")
                            + chunk + b"\r\n")
                    if not message.get("more_body"):
                        self.wfile.write(b"0\r\n\r\n")
                elif chunk:
                    self.wfile.write(chunk)
                self.wfile.flush()

        await self.app(scope, receive, send)
        if not started["sent"]:  # pragma: no cover - app always responds
            self.send_response(500)
            self.end_headers()


def make_server(host: str = "127.0.0.1", port: int = 8177,
                app=None, **app_kwargs) -> ThreadingHTTPServer:
    """A ready-to-serve (but not yet serving) HTTP server over *app*."""
    if app is None:
        app = create_app(**app_kwargs)
    server = ThreadingHTTPServer((host, port), _AsgiRequestHandler)
    server.daemon_threads = True
    server.asgi_app = app  # type: ignore[attr-defined]
    return server


def run_server(host: str = "127.0.0.1", port: int = 8177,
               jobs: Optional[int] = None, use_cache: bool = True,
               cache_dir: Optional[str] = None) -> int:
    """``repro serve``: boot the service and block until interrupted."""
    server = make_server(host, port, jobs=jobs, use_cache=use_cache,
                         cache_dir=cache_dir)
    actual_host, actual_port = server.server_address[:2]
    print(f"repro.serve listening on http://{actual_host}:{actual_port} "
          f"(scenarios: GET /scenarios; submit: POST /experiments)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0
