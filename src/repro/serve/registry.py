"""The run registry: scenario submissions, progress events, artifacts.

Each ``POST /experiments`` becomes one :class:`ExperimentRun`: the
scenario's experiment ids go through :func:`repro.bench.engine.run_experiments`
on a worker thread, per-shard :class:`~repro.bench.engine.ShardEvent`
notifications append to the run's event log, and completion freezes three
artifacts:

* ``results_json`` — canonical JSON of the merged results (sorted keys,
  compact separators, loss-free codec) — byte-identical across repeat
  runs with the same scenario + seed, and to the engine's own payloads;
* ``figures_text`` — the rendered figure bodies, byte-identical to the
  ``repro figure <ids>`` CLI stdout for the same run;
* ``trace_events`` — a Chrome ``trace_event`` document of the run's
  shard schedule (wall-clock; the one deliberately non-deterministic
  artifact).

Everything here is plain threads + condition variables; the ASGI layer
adapts it to coroutines.  The registry never mutates engine state: all
determinism comes from the engine's own keyed merge.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ValidationError
from repro.serve.scenarios import Scenario, dump_scenario

__all__ = ["ExperimentRun", "RunRegistry", "TERMINAL_EVENTS",
           "TERMINAL_STATES"]

#: Event kinds that end a run's progress stream.
TERMINAL_EVENTS = ("run-finished", "run-failed")

#: Run states in which no further events will ever be emitted.
TERMINAL_STATES = ("done", "failed")


@dataclass
class ExperimentRun:
    """One submitted scenario run and everything it produced."""

    id: str
    scenario: Scenario
    seed: int
    jobs: int
    use_cache: bool
    state: str = "queued"             # queued | running | done | failed
    created_s: float = field(default_factory=time.time)
    shard_status: "Dict[Tuple[str, str], str]" = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None
    stats: Optional[Dict[str, Any]] = None
    results_json: Optional[bytes] = None
    results_binary: Optional[bytes] = None
    figures_text: Optional[str] = None
    trace_events: Optional[Dict[str, Any]] = None

    def snapshot(self) -> Dict[str, Any]:
        """The JSON body of ``GET /experiments/{id}`` (no artifacts)."""
        shards = [{"experiment": experiment, "shard": shard,
                   "status": status}
                  for (experiment, shard), status
                  in self.shard_status.items()]
        done = sum(1 for one in shards
                   if one["status"] in ("cached", "done"))
        body: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "scenario": dump_scenario(self.scenario),
            "seed": self.seed,
            "jobs": self.jobs,
            "use_cache": self.use_cache,
            "shards": shards,
            "shards_done": done,
            "shards_total": len(shards),
            "last_seq": len(self.events),
        }
        if self.error is not None:
            body["error"] = self.error
        if self.stats is not None:
            body["stats"] = self.stats
        return body


class RunRegistry:
    """Submits scenarios to the engine and tracks their runs.

    Thread-safe: the ASGI handlers call in from the event loop's executor
    threads while engine runs report progress from their worker threads.
    """

    def __init__(self, jobs: Optional[int] = None, use_cache: bool = True,
                 cache_dir: Optional[str] = None) -> None:
        self._jobs = jobs          # force a jobs level on every run (CLI -j)
        self._use_cache = use_cache
        self._cache_dir = cache_dir
        self._runs: "Dict[str, ExperimentRun]" = {}
        self._order: List[str] = []
        self._next = 1
        self._cond = threading.Condition()

    # -- submission ---------------------------------------------------------
    def submit(self, scenario: Scenario, seed: Optional[int] = None,
               jobs: Optional[int] = None,
               use_cache: Optional[bool] = None) -> ExperimentRun:
        """Register *scenario* and start executing it on a worker thread."""
        with self._cond:
            run_id = f"run-{self._next:04d}"
            self._next += 1
            run = ExperimentRun(
                id=run_id, scenario=scenario,
                seed=seed if seed is not None else scenario.seed,
                jobs=self._resolve_jobs(scenario, jobs),
                use_cache=(self._use_cache if use_cache is None
                           else use_cache))
            from repro.bench.engine import experiment_registry
            registry = experiment_registry()
            for experiment_id in scenario.experiments:
                for shard in registry[experiment_id].shards:
                    run.shard_status[(experiment_id, shard.key)] = "pending"
            self._runs[run_id] = run
            self._order.append(run_id)
        self._emit(run, "run-queued")
        worker = threading.Thread(target=self._execute, args=(run,),
                                  name=f"repro-serve-{run_id}", daemon=True)
        worker.start()
        return run

    def _resolve_jobs(self, scenario: Scenario,
                      override: Optional[int]) -> int:
        if override is not None:
            if override < 1:
                raise ValidationError(
                    f"jobs: must be >= 1, got {override}")
            return override
        return self._jobs if self._jobs is not None else scenario.jobs

    # -- lookup -------------------------------------------------------------
    def get(self, run_id: str) -> ExperimentRun:
        """The run with *run_id*; raises ``KeyError`` if unknown."""
        with self._cond:
            if run_id not in self._runs:
                raise KeyError(run_id)
            return self._runs[run_id]

    def list(self) -> List[Dict[str, Any]]:
        """Summaries of every run, in submission order.

        Built entirely under the lock so each summary's fields are read
        consistently with the worker threads' mutations.
        """
        with self._cond:
            return [{"id": run.id, "state": run.state,
                     "scenario": run.scenario.name, "seed": run.seed}
                    for run in (self._runs[run_id]
                                for run_id in self._order)]

    def snapshot(self, run: ExperimentRun) -> Dict[str, Any]:
        """*run*'s snapshot body, read atomically under the lock (so the
        state can never pair with stale shard/stats fields)."""
        with self._cond:
            return run.snapshot()

    # -- events -------------------------------------------------------------
    def _emit(self, run: ExperimentRun, kind: str,
              set_state: Optional[str] = None, **attrs: Any) -> None:
        """Append one event; *set_state* changes ``run.state`` in the same
        critical section, so a waiter can never observe a terminal state
        without the matching terminal event already being in the log."""
        with self._cond:
            if set_state is not None:
                run.state = set_state
            event = {"seq": len(run.events) + 1, "event": kind,
                     "run": run.id,
                     "t_ms": round((time.time() - run.created_s) * 1e3, 3)}
            event.update(attrs)
            run.events.append(event)
            self._cond.notify_all()

    def events_after(self, run: ExperimentRun, seq: int
                     ) -> List[Dict[str, Any]]:
        """Events with ``seq > seq`` (snapshot; safe to iterate)."""
        with self._cond:
            return list(run.events[seq:])

    def wait_events(self, run: ExperimentRun, seq: int,
                    timeout_s: float) -> List[Dict[str, Any]]:
        """Block (up to *timeout_s*) until events beyond *seq* exist."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while len(run.events) <= seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or run.state in TERMINAL_STATES:
                    break
                self._cond.wait(remaining)
            return list(run.events[seq:])

    # -- execution ----------------------------------------------------------
    def _execute(self, run: ExperimentRun) -> None:
        from repro.bench.engine import ShardEvent, run_experiments
        from repro.bench.render import render_run_text
        from repro.bench.serialization import dumps_result, encode_result

        status_of = {"cache-hit": "cached", "started": "running",
                     "finished": "done"}

        def on_progress(event: ShardEvent) -> None:
            with self._cond:
                run.shard_status[(event.experiment, event.shard)] = \
                    status_of[event.kind]
            self._emit(run, f"shard-{event.kind}",
                       experiment=event.experiment, shard=event.shard,
                       index=event.index, total=event.total)

        self._emit(run, "run-started", set_state="running",
                   scenario=run.scenario.name, seed=run.seed, jobs=run.jobs)
        started = time.time()
        try:
            outcome = run_experiments(
                list(run.scenario.experiments), seed=run.seed,
                jobs=run.jobs, use_cache=run.use_cache,
                cache_dir=self._cache_dir, progress=on_progress)
        except ReproError as exc:
            self._fail(run, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - a run must never wedge
            traceback.print_exc()
            self._fail(run, f"internal error: {exc!r}")
            return

        # Encode and render outside the lock (rendering is the slow part),
        # then publish the artifacts before the state flips to "done" —
        # any reader that observes "done" sees every artifact in place.
        encoded = {name: encode_result(result)
                   for name, result in outcome.results.items()}
        results_json = json.dumps(encoded, sort_keys=True,
                                  separators=(",", ":")).encode("utf-8")
        results_binary = dumps_result(
            {"run": "repro.serve", "results": encoded})
        figures_text = render_run_text(outcome.results)
        stats = {
            "jobs": outcome.stats.jobs,
            "shards_total": outcome.stats.shards_total,
            "cache_hits": outcome.stats.cache_hits,
            "executed": outcome.stats.executed,
            "elapsed_s": round(outcome.stats.elapsed_s, 6),
        }
        with self._cond:
            run.results_json = results_json
            run.results_binary = results_binary
            run.figures_text = figures_text
            run.trace_events = self._shard_trace(run, started)
            run.stats = stats
        self._emit(run, "run-finished", set_state="done", **stats)

    def _fail(self, run: ExperimentRun, message: str) -> None:
        with self._cond:
            run.error = message
        self._emit(run, "run-failed", set_state="failed", error=message)

    def _shard_trace(self, run: ExperimentRun,
                     started_s: float) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON of the run's shard schedule.

        Built from the run's own event log: a complete-event per shard
        (started→finished wall time), instant events for cache hits.
        Timing is wall clock — the only artifact that is *not*
        byte-deterministic, and says so in its metadata.
        """
        events: List[Dict[str, Any]] = []
        open_ts: Dict[Tuple[str, str], float] = {}
        for event in run.events:
            kind = event["event"]
            if not kind.startswith("shard-"):
                continue
            key = (event["experiment"], event["shard"])
            name = f"{key[0]}/{key[1]}"
            ts_us = event["t_ms"] * 1e3
            if kind == "shard-started":
                open_ts[key] = ts_us
            elif kind == "shard-finished":
                begin = open_ts.pop(key, ts_us)
                events.append({"name": name, "cat": "shard", "ph": "X",
                               "ts": begin, "dur": ts_us - begin,
                               "pid": 1, "tid": 1,
                               "args": {"experiment": key[0],
                                        "shard": key[1]}})
            elif kind == "shard-cache-hit":
                events.append({"name": name, "cat": "cache", "ph": "i",
                               "ts": ts_us, "pid": 1, "tid": 1, "s": "t",
                               "args": {"experiment": key[0],
                                        "shard": key[1]}})
        return {"traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"run": run.id,
                              "scenario": run.scenario.name,
                              "deterministic": False,
                              "wall_started_s": round(started_s, 3)}}
