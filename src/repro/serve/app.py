"""The experiment service's ASGI application — pure stdlib.

FastAPI/Starlette are deliberately not dependencies: the app is a small
hand-rolled ASGI callable (routing table + JSON error model + SSE), so it
runs identically under the bundled stdlib server (``repro serve``), under
any ASGI server that happens to be installed (``uvicorn
repro.serve.app:asgi``), and under the in-process test client that the
end-to-end harness drives.

Endpoints (see ``docs/service.md`` for the walkthrough):

* ``GET  /``                     — service metadata + endpoint map
* ``GET  /healthz``              — liveness
* ``GET  /scenarios``            — the named scenario library
* ``GET  /scenarios/{name}``     — one scenario document
* ``POST /experiments``          — submit a scenario (by name or inline)
* ``GET  /experiments``          — all runs, submission order
* ``GET  /experiments/{id}``     — run snapshot; ``?wait=S&after=N``
                                   long-polls until events beyond N
* ``GET  /experiments/{id}/events``  — SSE progress stream (closes after
                                   the terminal run event)
* ``GET  /experiments/{id}/results`` — canonical JSON (``?format=binary``
                                   for the versioned binary codec)
* ``GET  /experiments/{id}/figures`` — rendered figure text, byte-equal
                                   to the ``repro figure`` CLI stdout
* ``GET  /experiments/{id}/traces``  — Chrome trace of the shard schedule

Error model: every non-2xx body is ``{"error": <message>}`` (plus
``"path"`` when a :class:`ValidationError` carries a JSON path) — 400 for
malformed JSON, 404 for unknown run/scenario, 405 for a bad method, 409
for artifacts of an unfinished run, 422 for validation failures.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.errors import ValidationError
from repro.serve.registry import (TERMINAL_EVENTS, TERMINAL_STATES,
                                  RunRegistry)
from repro.serve.scenarios import (Scenario, dump_scenario, load_scenario,
                                   load_scenario_library)

__all__ = ["create_app", "asgi"]

_JSON = "application/json; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"
_SSE = "text/event-stream; charset=utf-8"
_BINARY = "application/octet-stream"

#: Long-poll / SSE wait ceiling per blocking step, seconds.
_MAX_WAIT_S = 30.0

#: Submission body keys (anything else is a 422, mirroring the scenario
#: loader's unknown-key convention).
_SUBMIT_KEYS = ("scenario", "seed", "jobs", "use_cache")


class _HttpError(Exception):
    """Internal: turned into a JSON error response by the dispatcher."""

    def __init__(self, status: int, message: str,
                 path: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.path = path


def _split_validation(exc: ValidationError) -> Tuple[Optional[str], str]:
    """(json_path, message) from the loader's ``path: message`` format."""
    text = str(exc)
    if ": " in text:
        head, tail = text.split(": ", 1)
        if " " not in head:
            return head, tail
    return None, text


class ServeApp:
    """The ASGI callable.  One instance per registry (and per server)."""

    def __init__(self, registry: RunRegistry,
                 scenario_root=None) -> None:
        self.registry = registry
        self._scenario_root = scenario_root
        self._routes: List[Tuple[str, re.Pattern, Callable]] = [
            ("GET", re.compile(r"^/$"), self._index),
            ("GET", re.compile(r"^/healthz$"), self._healthz),
            ("GET", re.compile(r"^/scenarios$"), self._scenarios),
            ("GET", re.compile(r"^/scenarios/(?P<name>[^/]+)$"),
             self._scenario),
            ("POST", re.compile(r"^/experiments$"), self._submit),
            ("GET", re.compile(r"^/experiments$"), self._list_runs),
            ("GET", re.compile(r"^/experiments/(?P<run_id>[^/]+)$"),
             self._run_snapshot),
            ("GET",
             re.compile(r"^/experiments/(?P<run_id>[^/]+)/events$"),
             self._run_events),
            ("GET",
             re.compile(r"^/experiments/(?P<run_id>[^/]+)/results$"),
             self._run_results),
            ("GET",
             re.compile(r"^/experiments/(?P<run_id>[^/]+)/figures$"),
             self._run_figures),
            ("GET",
             re.compile(r"^/experiments/(?P<run_id>[^/]+)/traces$"),
             self._run_traces),
        ]

    # -- ASGI entry ---------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websockets etc.
            raise RuntimeError(f"unsupported scope {scope['type']!r}")
        try:
            await self._dispatch(scope, receive, send)
        except _HttpError as exc:
            body: Dict[str, Any] = {"error": exc.message}
            if exc.path is not None:
                body["path"] = exc.path
            await self._respond(send, exc.status, _JSON,
                                _json_bytes(body))

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _dispatch(self, scope, receive, send) -> None:
        path = scope["path"]
        method = scope["method"].upper()
        query = {key: values[-1] for key, values in
                 parse_qs(scope.get("query_string", b"").decode(
                     "utf-8", "replace")).items()}
        allowed: List[str] = []
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if not match:
                continue
            if route_method != method:
                allowed.append(route_method)
                continue
            await handler(send, receive, query, **match.groupdict())
            return
        if allowed:
            raise _HttpError(
                405, f"method {method} not allowed for {path}; "
                     f"allowed: {', '.join(sorted(set(allowed)))}")
        raise _HttpError(404, f"no such resource: {path}")

    # -- plumbing -----------------------------------------------------------
    async def _respond(self, send, status: int, content_type: str,
                       body: bytes,
                       extra_headers: Tuple[Tuple[bytes, bytes], ...] = ()
                       ) -> None:
        headers = [(b"content-type", content_type.encode("ascii")),
                   (b"content-length", str(len(body)).encode("ascii"))]
        headers.extend(extra_headers)
        await send({"type": "http.response.start", "status": status,
                    "headers": headers})
        await send({"type": "http.response.body", "body": body})

    async def _read_json_body(self, receive) -> Any:
        chunks = []
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "client disconnected mid-request")
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                break
        raw = b"".join(chunks)
        if not raw:
            raise _HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")

    def _library(self) -> Dict[str, Scenario]:
        try:
            return load_scenario_library(self._scenario_root)
        except ValidationError as exc:
            path, message = _split_validation(exc)
            raise _HttpError(500, f"scenario library is broken: {message}",
                             path=path)

    def _run_or_404(self, run_id: str):
        try:
            return self.registry.get(run_id)
        except KeyError:
            raise _HttpError(404, f"no such experiment run: {run_id!r}")

    def _finished_or_409(self, run_id: str):
        run = self._run_or_404(run_id)
        if run.state == "failed":
            raise _HttpError(409, f"run {run.id} failed: {run.error}")
        if run.state != "done":
            raise _HttpError(
                409, f"run {run.id} is {run.state}; artifacts exist only "
                     "after the run finishes (long-poll "
                     f"/experiments/{run.id}?wait=10 or stream "
                     f"/experiments/{run.id}/events)")
        return run

    # -- handlers -----------------------------------------------------------
    async def _index(self, send, receive, query) -> None:
        from repro import __version__
        await self._respond(send, 200, _JSON, _json_bytes({
            "service": "repro.serve",
            "paper": "Fireworks (EuroSys '22) reproduction",
            "version": __version__,
            "endpoints": {
                "scenarios": "/scenarios",
                "submit": "POST /experiments",
                "runs": "/experiments",
                "run": "/experiments/{id}",
                "progress_sse": "/experiments/{id}/events",
                "results": "/experiments/{id}/results",
                "figures": "/experiments/{id}/figures",
                "traces": "/experiments/{id}/traces",
            }}))

    async def _healthz(self, send, receive, query) -> None:
        await self._respond(send, 200, _JSON, _json_bytes({"ok": True}))

    async def _scenarios(self, send, receive, query) -> None:
        body = [dump_scenario(scenario)
                for scenario in self._library().values()]
        await self._respond(send, 200, _JSON, _json_bytes(body))

    async def _scenario(self, send, receive, query, name: str) -> None:
        library = self._library()
        if name not in library:
            raise _HttpError(
                404, f"unknown scenario {name!r}; known: "
                     f"{', '.join(library)}")
        await self._respond(send, 200, _JSON,
                            _json_bytes(dump_scenario(library[name])))

    async def _submit(self, send, receive, query) -> None:
        body = await self._read_json_body(receive)
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
        for key in body:
            if key not in _SUBMIT_KEYS:
                raise _HttpError(
                    422, f"unknown key; known keys: "
                         f"{', '.join(_SUBMIT_KEYS)}", path=str(key))
        if "scenario" not in body:
            raise _HttpError(422, "required key is missing",
                             path="scenario")

        spec = body["scenario"]
        try:
            if isinstance(spec, str):
                library = self._library()
                if spec not in library:
                    raise _HttpError(
                        404, f"unknown scenario {spec!r}; known: "
                             f"{', '.join(library)}", path="scenario")
                scenario = library[spec]
            else:
                scenario = load_scenario(spec)
        except ValidationError as exc:
            path, message = _split_validation(exc)
            raise _HttpError(422, message, path=path)

        seed = _optional_int(body, "seed", minimum=0)
        jobs = _optional_int(body, "jobs", minimum=1)
        use_cache = body.get("use_cache")
        if use_cache is not None and not isinstance(use_cache, bool):
            raise _HttpError(422, "must be a boolean", path="use_cache")

        run = self.registry.submit(scenario, seed=seed, jobs=jobs,
                                   use_cache=use_cache)
        location = f"/experiments/{run.id}"
        await self._respond(
            send, 201, _JSON,
            _json_bytes({"id": run.id, "state": run.state,
                         "scenario": scenario.name,
                         "links": {
                             "self": location,
                             "events": f"{location}/events",
                             "results": f"{location}/results",
                             "figures": f"{location}/figures",
                             "traces": f"{location}/traces"}}),
            extra_headers=((b"location", location.encode("ascii")),))

    async def _list_runs(self, send, receive, query) -> None:
        await self._respond(send, 200, _JSON,
                            _json_bytes(self.registry.list()))

    async def _run_snapshot(self, send, receive, query,
                            run_id: str) -> None:
        run = self._run_or_404(run_id)
        wait_s = _query_float(query, "wait", 0.0)
        after = _query_int(query, "after", 0)
        if wait_s > 0:
            loop = asyncio.get_event_loop()
            await loop.run_in_executor(
                None, self.registry.wait_events, run, after,
                min(wait_s, _MAX_WAIT_S))
        await self._respond(send, 200, _JSON,
                            _json_bytes(self.registry.snapshot(run)))

    async def _run_events(self, send, receive, query,
                          run_id: str) -> None:
        """SSE: stream the run's event log, then close at the terminal
        event — every consumer (curl, browser EventSource, the test
        client) sees an identical, finite stream of JSON events."""
        run = self._run_or_404(run_id)
        seq = _query_int(query, "since", 0)
        await send({"type": "http.response.start", "status": 200,
                    "headers": [(b"content-type", _SSE.encode("ascii")),
                                (b"cache-control", b"no-cache")]})
        loop = asyncio.get_event_loop()
        terminal_seen = False
        while not terminal_seen:
            events = await loop.run_in_executor(
                None, self.registry.wait_events, run, seq, _MAX_WAIT_S)
            if not events:
                if run.state in TERMINAL_STATES:
                    # Terminal run with nothing beyond ``since``: the
                    # client already holds the terminal event (the state
                    # flips and the event append in one critical
                    # section), so close the stream — looping here would
                    # busy-spin, as wait_events never blocks on a
                    # finished run.
                    break
                # Wait timed out with the run still going: heartbeat so
                # intermediaries don't kill the idle stream.
                await send({"type": "http.response.body",
                            "body": b": keep-alive\n\n",
                            "more_body": True})
                continue
            chunk = []
            for event in events:
                seq = event["seq"]
                if event["event"] in TERMINAL_EVENTS:
                    terminal_seen = True
                chunk.append(f"id: {event['seq']}\n"
                             f"event: {event['event']}\n"
                             f"data: {json.dumps(event, sort_keys=True)}"
                             "\n\n")
            await send({"type": "http.response.body",
                        "body": "".join(chunk).encode("utf-8"),
                        "more_body": True})
        await send({"type": "http.response.body", "body": b""})

    async def _run_results(self, send, receive, query,
                           run_id: str) -> None:
        run = self._finished_or_409(run_id)
        if query.get("format") == "binary":
            await self._respond(send, 200, _BINARY, run.results_binary)
            return
        if "format" in query and query["format"] != "json":
            raise _HttpError(422, "must be 'json' or 'binary'",
                             path="format")
        await self._respond(send, 200, _JSON, run.results_json)

    async def _run_figures(self, send, receive, query,
                           run_id: str) -> None:
        run = self._finished_or_409(run_id)
        await self._respond(send, 200, _TEXT,
                            run.figures_text.encode("utf-8"))

    async def _run_traces(self, send, receive, query,
                          run_id: str) -> None:
        run = self._finished_or_409(run_id)
        await self._respond(send, 200, _JSON,
                            _json_bytes(run.trace_events))


def _json_bytes(body: Any) -> bytes:
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _optional_int(body: Dict[str, Any], key: str,
                  minimum: int) -> Optional[int]:
    value = body.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _HttpError(422, f"must be an integer, got "
                              f"{type(value).__name__}", path=key)
    if value < minimum:
        raise _HttpError(422, f"must be >= {minimum}, got {value}",
                         path=key)
    return value


def _query_int(query: Dict[str, str], key: str, default: int) -> int:
    try:
        return int(query.get(key, default))
    except ValueError:
        raise _HttpError(422, "must be an integer", path=key)


def _query_float(query: Dict[str, str], key: str, default: float) -> float:
    try:
        return float(query.get(key, default))
    except ValueError:
        raise _HttpError(422, "must be a number", path=key)


def create_app(registry: Optional[RunRegistry] = None,
               scenario_root=None, **registry_kwargs: Any) -> ServeApp:
    """Build the service: an ASGI callable over a (fresh) run registry."""
    if registry is None:
        registry = RunRegistry(**registry_kwargs)
    return ServeApp(registry, scenario_root=scenario_root)


#: Module-level app for ``uvicorn repro.serve.app:asgi`` convenience.
asgi = create_app()
