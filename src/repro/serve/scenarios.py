"""The named-scenario library: schema, loader, and round-trip dumper.

A *scenario* is a small declarative document naming a reproducible
experiment run: which engine experiment ids to run, under which seed and
parallelism, and which docs/ page describes it.  The same documents back
both fronts of the harness — ``repro run <name>`` on the CLI and
``POST /experiments {"scenario": "<name>"}`` on the service — so every
experiment in ``docs/`` is one line either way.

Validation follows the :mod:`repro.policy` registry convention: the only
exception that ever escapes :func:`load_scenario` is
:class:`~repro.errors.ValidationError`, and its message starts with a
JSON path into the offending document (``scenario.experiments[2]: ...``).
Valid documents round-trip exactly: ``load(dump(load(doc))) ==
load(doc)`` (property-tested in ``tests/property``).

Files are JSON by default; YAML is accepted when PyYAML happens to be
installed (it is deliberately *not* a dependency of this package).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ValidationError

__all__ = [
    "SCENARIO_ENV_VAR",
    "Scenario",
    "default_library_root",
    "dump_scenario",
    "load_named_scenario",
    "load_scenario",
    "load_scenario_file",
    "load_scenario_library",
    "scenario_names",
]

#: Environment variable overriding where the scenario library lives.
SCENARIO_ENV_VAR = "REPRO_SCENARIOS"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")

#: Document keys, in canonical (dump) order.
_KNOWN_KEYS = ("name", "title", "description", "experiments", "seed",
               "jobs", "tags", "docs")


@dataclass(frozen=True)
class Scenario:
    """One validated scenario document."""

    name: str                      # library key; kebab-case
    title: str                     # one-line human description
    experiments: Tuple[str, ...]   # engine experiment ids, run order
    description: str = ""
    seed: int = 2022               # engine seed (the paper's evaluation year)
    jobs: int = 1                  # default worker processes
    tags: Tuple[str, ...] = field(default_factory=tuple)
    docs: Tuple[str, ...] = field(default_factory=tuple)  # repo-relative


def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


_IDENT_RE = re.compile(r"^[A-Za-z0-9_-]+$")


def _child(path: str, key: str) -> str:
    """The JSON path of *key* under *path*: dotted for identifier-like
    keys, bracket-quoted otherwise (a key like ``"a b"`` must not smear
    into the surrounding path syntax)."""
    if _IDENT_RE.match(key):
        return f"{path}.{key}"
    return f"{path}[{key!r}]"


def _require_str(value: Any, path: str, allow_empty: bool = False) -> str:
    if not isinstance(value, str):
        _fail(path, f"must be a string, got {type(value).__name__}")
    if not allow_empty and not value:
        _fail(path, "must not be empty")
    return value


def _require_int(value: Any, path: str, minimum: Optional[int] = None) -> int:
    # bool is an int subclass; a scenario seed of ``true`` is a typo.
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(path, f"must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(path, f"must be >= {minimum}, got {value}")
    return value


def _require_str_list(value: Any, path: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        _fail(path, f"must be a list of strings, got {type(value).__name__}")
    return tuple(_require_str(item, f"{path}[{i}]")
                 for i, item in enumerate(value))


def load_scenario(document: Any, path: str = "scenario") -> Scenario:
    """Validate *document* (a parsed mapping) into a :class:`Scenario`.

    Raises :class:`ValidationError` — and only :class:`ValidationError` —
    with a JSON path into the document on any schema violation.
    """
    from repro.bench.engine import experiment_registry
    if not isinstance(document, dict):
        _fail(path, f"must be a mapping, got {type(document).__name__}")
    for key in document:
        if not isinstance(key, str):
            _fail(path, f"keys must be strings, got {key!r}")
        if key not in _KNOWN_KEYS:
            _fail(_child(path, key),
                  f"unknown key; known keys: {', '.join(_KNOWN_KEYS)}")
    for required in ("name", "title", "experiments"):
        if required not in document:
            _fail(f"{path}.{required}", "required key is missing")

    name = _require_str(document["name"], f"{path}.name")
    if not _NAME_RE.match(name):
        _fail(f"{path}.name",
              f"must match {_NAME_RE.pattern} (kebab-case), got {name!r}")
    title = _require_str(document["title"], f"{path}.title")

    experiments = _require_str_list(document["experiments"],
                                    f"{path}.experiments")
    if not experiments:
        _fail(f"{path}.experiments", "must not be empty")
    known = experiment_registry()
    seen = set()
    for i, experiment in enumerate(experiments):
        if experiment not in known:
            _fail(f"{path}.experiments[{i}]",
                  f"unknown experiment {experiment!r}; known: "
                  f"{', '.join(known)}")
        if experiment in seen:
            _fail(f"{path}.experiments[{i}]",
                  f"duplicate experiment {experiment!r}")
        seen.add(experiment)

    description = _require_str(document.get("description", ""),
                               f"{path}.description", allow_empty=True)
    seed = _require_int(document.get("seed", 2022), f"{path}.seed",
                        minimum=0)
    jobs = _require_int(document.get("jobs", 1), f"{path}.jobs", minimum=1)
    tags = _require_str_list(document.get("tags", ()), f"{path}.tags")
    docs = _require_str_list(document.get("docs", ()), f"{path}.docs")
    return Scenario(name=name, title=title, experiments=experiments,
                    description=description, seed=seed, jobs=jobs,
                    tags=tags, docs=docs)


def dump_scenario(scenario: Scenario) -> Dict[str, Any]:
    """*scenario* as a plain document; ``load(dump(s)) == s`` exactly."""
    document: Dict[str, Any] = {}
    for key in _KNOWN_KEYS:
        value = getattr(scenario, key)
        document[key] = list(value) if isinstance(value, tuple) else value
    return document


def _parse_text(text: str, path: Path) -> Any:
    suffix = path.suffix.lower()
    if suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            _fail(str(path),
                  "is YAML but PyYAML is not installed; use JSON or "
                  "install pyyaml")
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            _fail(str(path), f"invalid YAML: {exc}")
    try:
        return json.loads(text)
    except ValueError as exc:
        _fail(str(path), f"invalid JSON: {exc}")


def load_scenario_file(path) -> Scenario:
    """Load + validate one scenario file (.json, or .yaml with PyYAML)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        _fail(str(path), f"cannot read scenario file: {exc}")
    return load_scenario(_parse_text(text, path), path=path.stem)


def default_library_root() -> Path:
    """Where the scenario library lives.

    ``$REPRO_SCENARIOS`` wins; otherwise the repo checkout's
    ``scenarios/`` next to ``src/`` (this file is
    ``src/repro/serve/scenarios.py``); otherwise ``./scenarios``.
    """
    import os
    override = os.environ.get(SCENARIO_ENV_VAR)
    if override:
        return Path(override)
    checkout = Path(__file__).resolve().parents[3] / "scenarios"
    if checkout.is_dir():
        return checkout
    return Path("scenarios")


def load_scenario_library(root=None) -> Dict[str, Scenario]:
    """Every scenario under *root*, by name, in sorted-filename order.

    Only top-level ``*.json`` / ``*.yaml`` / ``*.yml`` files are scenarios
    (``scenarios/policies/`` holds policy DSL documents, not scenarios).
    Filenames must match the document's ``name`` so ``repro run <name>``
    and the file on disk can never disagree.
    """
    root = Path(root) if root is not None else default_library_root()
    if not root.is_dir():
        _fail(str(root), "scenario library directory does not exist")
    library: Dict[str, Scenario] = {}
    for path in sorted(root.iterdir()):
        if not path.is_file() or path.suffix.lower() not in (
                ".json", ".yaml", ".yml"):
            continue
        scenario = load_scenario_file(path)
        if scenario.name != path.stem:
            _fail(f"{path.stem}.name",
                  f"must match its filename, got {scenario.name!r}")
        if scenario.name in library:
            _fail(f"{path.stem}.name",
                  f"duplicate scenario name {scenario.name!r}")
        library[scenario.name] = scenario
    return library


def scenario_names(root=None) -> Tuple[str, ...]:
    """The library's scenario names, sorted."""
    return tuple(load_scenario_library(root))


def load_named_scenario(name: str, root=None) -> Scenario:
    """One scenario by name; unknown names list the valid ones."""
    library = load_scenario_library(root)
    if name not in library:
        _fail("scenario",
              f"unknown scenario {name!r}; known: {', '.join(library)}")
    return library[name]
