"""In-process ASGI test client for the experiment service.

Drives the app callable directly — no sockets, no third-party HTTP
library — so the end-to-end harness exercises exactly the code a real
server would: scope construction, body framing, streamed (SSE) response
chunks.  Each request runs in its own event loop via :func:`asyncio.run`;
the SSE endpoints terminate after the run's terminal event, so streamed
responses are finite and can be collected whole.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ASGITestClient", "Response"]


class Response:
    """One collected HTTP response."""

    def __init__(self, status: int, headers: List[Tuple[str, str]],
                 body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> Any:
        """The body parsed as JSON."""
        return json.loads(self.text)

    def header(self, name: str) -> Optional[str]:
        """First header value matching *name* (case-insensitive), if any."""
        for key, value in self.headers:
            if key.lower() == name.lower():
                return value
        return None

    def sse_events(self) -> List[Dict[str, Any]]:
        """Parsed ``data:`` payloads of a text/event-stream body."""
        events = []
        for block in self.text.split("\n\n"):
            for line in block.splitlines():
                if line.startswith("data: "):
                    events.append(json.loads(line[len("data: "):]))
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Response({self.status}, {len(self.body)} bytes)"


class ASGITestClient:
    """Synchronous client over an ASGI app instance."""

    def __init__(self, app) -> None:
        self.app = app

    # -- public surface -----------------------------------------------------
    def get(self, path: str) -> Response:
        """GET *path* (may include a query string)."""
        return self.request("GET", path)

    def post(self, path: str, json_body: Any = None,
             body: Optional[bytes] = None) -> Response:
        """POST *json_body* (or raw *body* bytes) to *path*."""
        return self.request("POST", path, json_body=json_body, body=body)

    def request(self, method: str, path: str, json_body: Any = None,
                body: Optional[bytes] = None) -> Response:
        """Drive one request through the app and collect the response."""
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        return asyncio.run(self._run(method, path, body or b""))

    # -- ASGI plumbing ------------------------------------------------------
    async def _run(self, method: str, path: str, body: bytes) -> Response:
        raw_path, _, query = path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": raw_path,
            "raw_path": raw_path.encode("utf-8"),
            "query_string": query.encode("utf-8"),
            "root_path": "",
            "headers": [(b"host", b"testserver")],
            "client": ("testclient", 50000),
            "server": ("testserver", 80),
        }
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if request_messages:
                return request_messages.pop(0)
            # The app only re-reads after consuming the whole body when
            # the client is gone.
            return {"type": "http.disconnect"}

        status: List[int] = []
        headers: List[Tuple[str, str]] = []
        chunks: List[bytes] = []

        async def send(message):
            if message["type"] == "http.response.start":
                status.append(message["status"])
                headers.extend(
                    (key.decode("latin-1"), value.decode("latin-1"))
                    for key, value in message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        if not status:
            raise AssertionError(
                "app completed without sending http.response.start")
        return Response(status[0], headers, b"".join(chunks))
