"""The experiment service: a REST control surface over the engine.

``repro.serve`` wraps the parallel experiment engine
(:mod:`repro.bench.engine`) and its content-addressed result cache in a
long-running HTTP service plus a library of *named scenarios*
(``scenarios/*.json``) — every experiment documented under ``docs/`` is
one ``POST /experiments`` or one ``repro run <scenario>`` away.

The pieces:

* :mod:`repro.serve.scenarios` — the scenario schema + loader shared by
  the CLI and the API (JSON-path-carrying :class:`ValidationError`);
* :mod:`repro.serve.registry`  — the run registry: submits scenarios to
  the engine on worker threads, records per-shard progress events, and
  renders artifacts (canonical JSON, figure text, shard trace);
* :mod:`repro.serve.app`       — the ASGI application (pure stdlib: the
  routing table, JSON error model, SSE/long-poll progress streaming);
* :mod:`repro.serve.http`      — a threaded stdlib HTTP adapter so
  ``repro serve`` needs no third-party server;
* :mod:`repro.serve.testclient` — an in-process ASGI test client the
  end-to-end harness (and any notebook) can drive without sockets.

Determinism guarantee: the service adds no RNG draws and no merge
reordering — ``GET /experiments/{id}/results`` and ``/figures`` are
byte-identical to the equivalent ``repro figure`` CLI run with the same
seed, and to themselves across repeat submissions (same cache keys).
"""

from repro.serve.app import create_app
from repro.serve.registry import ExperimentRun, RunRegistry
from repro.serve.scenarios import (Scenario, dump_scenario, load_scenario,
                                   load_scenario_file,
                                   load_scenario_library,
                                   load_named_scenario, scenario_names)

__all__ = [
    "ExperimentRun",
    "RunRegistry",
    "Scenario",
    "create_app",
    "dump_scenario",
    "load_named_scenario",
    "load_scenario",
    "load_scenario_file",
    "load_scenario_library",
    "scenario_names",
    "serve_forever",
]


def serve_forever(host: str = "127.0.0.1", port: int = 8177,
                  jobs=None, use_cache: bool = True,
                  cache_dir=None) -> int:
    """Boot the stdlib HTTP server for ``repro serve``; blocks until ^C."""
    from repro.serve.http import run_server
    return run_server(host=host, port=port, jobs=jobs, use_cache=use_cache,
                      cache_dir=cache_dir)
