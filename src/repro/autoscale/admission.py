"""Per-host admission control: bounded FIFO queue + shed policy.

The queue sits *ahead of* the host capacity gate
(:meth:`repro.cluster.Host.assign`): a request that finds the host full
parks in FIFO order and is handed its slot by the releaser when capacity
frees up (no barging — the releaser calls ``assign`` on the waiter's
behalf before waking it, so a later arrival can never steal the slot).

Shed policy (both produce :class:`SheddedInvocation` results):

* ``queue-full`` — the queue already holds ``queue_capacity`` waiters on
  arrival; the request is rejected immediately.
* ``wait-budget`` — the request waited ``max_queue_wait_ms`` without
  being admitted; it withdraws from the queue and is rejected.

On a host crash (:meth:`repro.cluster.Host.mark_down`) every queued
waiter is flushed with :class:`~repro.errors.HostDownError`, which the
platform's chaos retry loop turns into a failover or a
``FailedInvocation`` — queued work is never silently lost and no queue
slot leaks.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, TYPE_CHECKING

from repro.errors import HostDownError, InvocationSheddedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.trace.spans import Span


@dataclass(frozen=True)
class SheddedInvocation:
    """A request the admission controller rejected (never executed).

    The serving-layer analogue of ``FailedInvocation``: first-class, with
    its own (short) span tree so shed decisions show up in traces.
    """

    function: str
    platform: str
    submitted_ms: float
    shed_ms: float
    host_id: int
    reason: str          # "queue-full" | "wait-budget"
    queue_depth: int     # depth observed at the shed decision
    trace_id: str
    span: Optional["Span"] = field(default=None, repr=False, compare=False)

    @property
    def waited_ms(self) -> float:
        """How long the request was held before being shed."""
        return self.shed_ms - self.submitted_ms


@dataclass
class _Waiter:
    event: object
    function: str
    enqueued_at_ms: float


class AdmissionQueue:
    """Bounded FIFO admission queue for one :class:`~repro.cluster.Host`."""

    def __init__(self, sim, host, cfg) -> None:
        self.sim = sim
        self.host = host
        self.cfg = cfg
        self._waiters: Deque[_Waiter] = deque()
        # -- SLO bookkeeping ------------------------------------------------
        self.admitted = 0          # requests that got a slot (fast or queued)
        self.queued = 0            # requests that had to wait
        self.sheds_full = 0        # rejected on arrival (queue-full)
        self.sheds_wait = 0        # rejected after waiting (wait-budget)
        self.flushed_down = 0      # waiters flushed by a host crash
        self.peak_depth = 0
        #: Queue wait of every admitted request.  An ``array('d')``: one
        #: append per invocation makes this an SLO ledger, and unboxed
        #: doubles keep a million-invocation replay's ledger at 8 MB
        #: instead of a list of boxed floats several times that size.
        self.wait_samples = array("d")

    @property
    def depth(self) -> int:
        """Current number of queued waiters."""
        return len(self._waiters)

    def waiting_functions(self) -> List[str]:
        """Function names currently queued, FIFO order (for the scaler)."""
        return [waiter.function for waiter in self._waiters]

    # -- invoke path --------------------------------------------------------
    def admit(self, function: str):
        """Process: wait for (and take) a capacity slot on the host.

        Returns the queue wait in ms.  On success the host slot is held by
        the caller, who must release it via ``cluster.finish(host)``.
        Raises :class:`InvocationSheddedError` when shed and
        :class:`HostDownError` when the host crashes while queued.
        """
        host = self.host
        if host.down:
            raise HostDownError(host.host_id, "admission")
        if not self._waiters and host.has_room:
            host.assign(function)
            self.admitted += 1
            self.wait_samples.append(0.0)
            return 0.0
            yield  # pragma: no cover - makes this function a generator
        if len(self._waiters) >= self.cfg.queue_capacity:
            self.sheds_full += 1
            raise InvocationSheddedError(
                host.host_id, "queue-full", len(self._waiters))
        waiter = _Waiter(event=self.sim.event(), function=function,
                         enqueued_at_ms=self.sim.now)
        self._waiters.append(waiter)
        self.queued += 1
        self.peak_depth = max(self.peak_depth, len(self._waiters))
        budget_ms = self.cfg.max_queue_wait_ms
        if budget_ms and budget_ms > 0:
            # Wait for the hand-off or the budget, whichever fires first;
            # a crash flush fails ``waiter.event`` and re-raises here.
            yield self.sim.any_of([waiter.event, self.sim.timeout(budget_ms)])
            if not waiter.event.triggered:
                # Budget expired while still queued: withdraw and shed.
                self._waiters.remove(waiter)
                self.sheds_wait += 1
                raise InvocationSheddedError(
                    host.host_id, "wait-budget", len(self._waiters))
        else:
            yield waiter.event
        wait_ms = self.sim.now - waiter.enqueued_at_ms
        self.admitted += 1
        self.wait_samples.append(wait_ms)
        return wait_ms

    # -- slot hand-off ------------------------------------------------------
    def on_release(self) -> None:
        """Called after a slot frees: hand it to the next FIFO waiter.

        The releaser assigns the slot *on the waiter's behalf* before
        triggering its event, so no other request can barge in between
        the release and the waiter resuming.
        """
        host = self.host
        while self._waiters and not host.down and host.has_room:
            waiter = self._waiters.popleft()
            host.assign(waiter.function)
            waiter.event.succeed(waiter.function)

    # -- chaos --------------------------------------------------------------
    def flush_down(self) -> int:
        """Host crashed: fail every queued waiter with ``HostDownError``.

        Returns the number of waiters flushed.  Each waiter's invoke
        process observes the failure and retries/fails over through the
        normal chaos path, so no queue slot is leaked.
        """
        flushed = 0
        while self._waiters:
            waiter = self._waiters.popleft()
            waiter.event.fail(HostDownError(self.host.host_id, "admission"))
            flushed += 1
        self.flushed_down += flushed
        return flushed
