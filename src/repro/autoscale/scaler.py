"""Warm-pool autoscaler: reactive and predictive pre-provisioning.

A per-platform control loop that tops up each host's warm pool ahead of
demand, so open-loop traffic hits warm (or pre-restored) workers instead
of paying cold starts inside the latency-critical path:

* ``reactive`` — scale on observed queue pressure: each tick, a host
  whose admission queue is at least ``reactive_queue_threshold`` deep
  gets ``reactive_step`` extra warm workers for its most-queued function.
  Simple, but it only reacts *after* requests have already queued.
* ``predictive`` — scale on predicted arrivals: the scaler feeds every
  arrival into a :class:`~repro.platforms.keepalive.HybridHistogramKeepAlive`
  histogram (the Shahrad et al. policy the keep-alive ablation already
  uses) and pre-provisions on a function's home host when the next
  arrival is predicted within ``predictive_horizon_ms``.

Both policies park workers with a finite TTL (``warm_expiry_ms``) so
scale-*down* is lazy expiry, and both are chaos-aware: down hosts are
skipped when targets are computed, and a provisioning that completes
after its host crashed discards the worker instead of parking it (no
leaked warm workers).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import PlatformError
from repro.platforms.keepalive import HybridHistogramKeepAlive

MODES = ("none", "reactive", "predictive")


class WarmPoolAutoscaler:
    """Per-platform warm-pool control loop (one of :data:`MODES`)."""

    def __init__(self, platform, mode: str = "reactive",
                 until_ms: float = None, cfg=None) -> None:
        if mode not in MODES:
            raise PlatformError(
                f"unknown autoscaler mode {mode!r}; pick one of {MODES}")
        self.platform = platform
        self.sim = platform.sim
        self.cfg = cfg if cfg is not None else platform.params.autoscale
        self.mode = mode
        self.until_ms = until_ms
        #: Arrival histograms (predictive policy's data source).
        self.history = HybridHistogramKeepAlive()
        #: (host_id, function) -> in-flight provisioning count.
        self._pending: Dict[Tuple[int, str], int] = {}
        #: (host_id, function) -> current policy target, refreshed every
        #: tick; consumption-driven top-ups read it between ticks.
        self.targets: Dict[Tuple[int, str], int] = {}
        #: Reactive state: (host_id, function) -> (level, hold ticks left).
        #: Levels ramp by ``reactive_step`` per pressured tick and linger
        #: for ``reactive_hold_ticks`` pressure-free ticks (scale-down
        #: hysteresis, as in HPA-style reactive autoscalers).
        self._reactive: Dict[Tuple[int, str], Tuple[int, int]] = {}
        self.provisioned = 0       # provisioning processes launched
        self.parked = 0            # workers that reached a warm pool
        self.discarded_down = 0    # provisioned for a host that crashed
        self.expired = 0           # TTL'd warm workers torn down
        self.ticks = 0
        platform.autoscaler = self
        if mode != "none":
            if until_ms is None:
                raise PlatformError(
                    "an active autoscaler needs until_ms: its control loop "
                    "must stop ticking for the simulation to quiesce")
            self._arm_tick()

    # -- arrival feed (called by the platform on every invoke) ---------------
    def observe_arrival(self, function: str, now_ms: float) -> None:
        """Feed one arrival into the prediction histograms."""
        self.history.observe_arrival(function, now_ms)

    def on_warm_taken(self, function: str, host) -> None:
        """A pooled worker was consumed on the invoke path.

        Platforms whose warm workers are single-use (Fireworks parks
        pre-restored clones, and a clone serves exactly one request)
        call this so the pool is topped back up to the policy's current
        target immediately — waiting for the next tick would cap the
        warm-hit rate at ``target / scale_interval``.
        """
        if self.mode == "none":
            return
        if self.until_ms is not None and self.sim.now >= self.until_ms:
            return   # the run is draining: stop replenishing
        target = self.targets.get((host.host_id, function), 0)
        if target > 0 and not host.down:
            self._ensure_warm(function, host, target, self.sim.now)

    # -- control loop --------------------------------------------------------
    # The loop rides the kernel's pooled fast-path timers rather than a
    # generator process: nothing ever waits on the control loop, so the
    # Event/Process machinery was pure per-tick overhead.
    def _arm_tick(self) -> None:
        if self.sim.now + self.cfg.scale_interval_ms <= self.until_ms:
            self.sim.schedule_timeout(
                self.cfg.scale_interval_ms, self._on_tick)

    def _on_tick(self, _value) -> None:
        self._tick()
        self._arm_tick()

    def _tick(self) -> None:
        self.ticks += 1
        now = self.sim.now
        # Targets are a per-tick policy decision: recompute from scratch
        # so a function that stopped qualifying stops being replenished.
        self.targets.clear()
        # Scale-down: reap TTL-expired warm workers on every host.
        for host in self.platform.cluster.hosts:
            host.pool.expire_all(now)
            for entry in host.pool.drain_expired():
                self.expired += 1
                self.platform.discard_warm(entry, host)
        if self.mode == "reactive":
            self._tick_reactive(now)
        elif self.mode == "predictive":
            self._tick_predictive(now)

    def _tick_reactive(self, now: float) -> None:
        """Queue-pressure policy: a pressured host gets warm workers for
        every function waiting in its admission queue, ramping by
        ``reactive_step`` per tick, and holds each target for
        ``reactive_hold_ticks`` pressure-free ticks before dropping it.
        The hysteresis is what makes it *reactive*: it scales where the
        queue was, late, and keeps paying for it after the burst passed —
        the memory/timeliness trade the predictive policy avoids."""
        cfg = self.cfg
        pressured = set()
        for host in self.platform.cluster.hosts:
            if host.down or host.admission is None:
                continue
            if host.admission.depth < cfg.reactive_queue_threshold:
                continue
            for function in set(host.admission.waiting_functions()):
                key = (host.host_id, function)
                pressured.add(key)
                level = self._reactive.get(key, (0, 0))[0]
                self._reactive[key] = (
                    min(level + cfg.reactive_step,
                        cfg.max_warm_per_function),
                    cfg.reactive_hold_ticks)
        for key in list(self._reactive):
            level, hold = self._reactive[key]
            if key not in pressured:
                hold -= 1
                if hold <= 0:
                    del self._reactive[key]
                    continue
                self._reactive[key] = (level, hold)
            host = self.platform.cluster.host(key[0])
            if host.down:
                del self._reactive[key]   # chaos-aware: down host, no target
                continue
            self._ensure_warm(key[1], host, level, now)

    def _tick_predictive(self, now: float) -> None:
        cfg = self.cfg
        for function in self.platform.installed_functions():
            last = self.history.last_arrival_ms(function)
            gap = self.history.gap_percentile_ms(
                function, cfg.predictive_gap_quantile)
            if last is None or gap is None:
                continue
            if gap <= cfg.predictive_horizon_ms:
                # Arrives at least once per horizon: keep enough warm
                # workers to absorb the expected arrivals.
                want = min(cfg.max_warm_per_function,
                           max(1, int(cfg.predictive_horizon_ms / gap)))
            else:
                predicted = last + gap
                if not now <= predicted <= now + cfg.predictive_horizon_ms:
                    continue
                want = 1
            host = self.platform.cluster.home_host(function)
            if host.down:
                continue   # chaos-aware: down hosts drop their targets
            self._ensure_warm(function, host, want, now)

    def _ensure_warm(self, function: str, host, target: int,
                     now: float) -> None:
        key = (host.host_id, function)
        self.targets[key] = min(target, self.cfg.max_warm_per_function)
        have = host.pool.size(function, now) + self._pending.get(key, 0)
        for _ in range(max(0, min(target, self.cfg.max_warm_per_function)
                           - have)):
            self._pending[key] = self._pending.get(key, 0) + 1
            self.provisioned += 1
            self.sim.process(
                self._provision(function, host, key),
                name=f"autoscale:{function}@host{host.host_id}")

    def _provision(self, function: str, host, key):
        """Off-critical-path provisioning of one warm worker."""
        try:
            spec = self.platform.spec(function)
            entry = yield from self.platform.provision_warm_on(spec, host)
        finally:
            self._pending[key] -= 1
        if entry is None:
            return
        if host.down:
            # The host crashed while we were booting: never park a warm
            # worker on a dead host (its pool was drained at crash time).
            self.discarded_down += 1
            self.platform.discard_warm(entry, host)
            return
        entry.expires_at_ms = self.sim.now + self.cfg.warm_expiry_ms
        host.pool.add(function, entry)
        self.parked += 1

    # -- bench helpers -------------------------------------------------------
    def pending_total(self) -> int:
        """In-flight provisioning count across all hosts/functions."""
        return sum(self._pending.values())
