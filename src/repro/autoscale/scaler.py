"""Warm-pool autoscaler: the engine behind pluggable target policies.

A per-platform control loop that tops up each host's warm pool ahead of
demand, so open-loop traffic hits warm (or pre-restored) workers instead
of paying cold starts inside the latency-critical path.  Since the
policy-engine refactor the scaler is split in two:

* the **engine** (this class): TTL expiry, provisioning processes, the
  pending/targets ledgers, consumption-driven top-ups via
  :meth:`on_warm_taken`, chaos-awareness (never park or provision on a
  down host);
* the **policy** (:class:`~repro.policy.autoscale.AutoscalePolicy`): the
  per-tick decision mapping an :class:`~repro.policy.autoscale.AutoscaleView`
  of the cluster to ``(function, host, want)`` warm targets.

The built-in modes live in :mod:`repro.policy.autoscale` and keep their
registered names: ``reactive`` scales on observed queue pressure (late,
with hysteresis), ``predictive`` pre-provisions on arrival-histogram
predictions, ``none`` never arms the loop.  ``policy=`` also accepts a
DSL document or a ready policy instance.

Both active modes park workers with a finite TTL (``warm_expiry_ms``) so
scale-*down* is lazy expiry.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import PlatformError
from repro.platforms.keepalive import HybridHistogramKeepAlive
from repro.policy.autoscale import AutoscaleView

#: The built-in mode names, in registry order (kept for callers that
#: enumerate modes; the registry is the source of truth).
MODES = ("none", "reactive", "predictive")


class WarmPoolAutoscaler:
    """Per-platform warm-pool engine driving one target policy."""

    def __init__(self, platform, mode: str = "reactive",
                 until_ms: float = None, cfg=None, policy=None) -> None:
        from repro.policy import resolve_autoscale
        if policy is None:
            policy = mode
        self.policy = resolve_autoscale(policy)
        self.platform = platform
        self.sim = platform.sim
        self.cfg = cfg if cfg is not None else platform.params.autoscale
        #: The resolved policy's registered name (kept as ``mode`` so
        #: result rows and reprs read the same as before the refactor).
        self.mode = self.policy.name
        self.policy_source = self.policy.source
        self.until_ms = until_ms
        #: Arrival histograms (the predictive policy's data source).
        self.history = HybridHistogramKeepAlive()
        #: (host_id, function) -> in-flight provisioning count.
        self._pending: Dict[Tuple[int, str], int] = {}
        #: (host_id, function) -> current policy target, refreshed every
        #: tick; consumption-driven top-ups read it between ticks.
        self.targets: Dict[Tuple[int, str], int] = {}
        self.provisioned = 0       # provisioning processes launched
        self.parked = 0            # workers that reached a warm pool
        self.discarded_down = 0    # provisioned for a host that crashed
        self.expired = 0           # TTL'd warm workers torn down
        self.ticks = 0
        platform.autoscaler = self
        if self.policy.active:
            if until_ms is None:
                raise PlatformError(
                    "an active autoscaler needs until_ms: its control loop "
                    "must stop ticking for the simulation to quiesce")
            self._arm_tick()

    # -- arrival feed (called by the platform on every invoke) ---------------
    def observe_arrival(self, function: str, now_ms: float) -> None:
        """Feed one arrival into the prediction histograms."""
        self.history.observe_arrival(function, now_ms)

    def on_warm_taken(self, function: str, host) -> None:
        """A pooled worker was consumed on the invoke path.

        Platforms whose warm workers are single-use (Fireworks parks
        pre-restored clones, and a clone serves exactly one request)
        call this so the pool is topped back up to the policy's current
        target immediately — waiting for the next tick would cap the
        warm-hit rate at ``target / scale_interval``.
        """
        if not self.policy.active:
            return
        if self.until_ms is not None and self.sim.now >= self.until_ms:
            return   # the run is draining: stop replenishing
        target = self.targets.get((host.host_id, function), 0)
        if target > 0 and not host.down:
            self._ensure_warm(function, host, target, self.sim.now)

    # -- control loop --------------------------------------------------------
    # The loop rides the kernel's pooled fast-path timers rather than a
    # generator process: nothing ever waits on the control loop, so the
    # Event/Process machinery was pure per-tick overhead.
    def _arm_tick(self) -> None:
        if self.sim.now + self.cfg.scale_interval_ms <= self.until_ms:
            self.sim.schedule_timeout(
                self.cfg.scale_interval_ms, self._on_tick)

    def _on_tick(self, _value) -> None:
        self._tick()
        self._arm_tick()

    def _view(self, now: float) -> AutoscaleView:
        """This tick's read-only cluster view for the policy."""
        cluster = self.platform.cluster
        return AutoscaleView(
            now=now, cfg=self.cfg, history=self.history,
            hosts=cluster.hosts, host=cluster.host,
            home_host=cluster.home_host,
            functions=self.platform.installed_functions())

    def _tick(self) -> None:
        self.ticks += 1
        now = self.sim.now
        # Targets are a per-tick policy decision: recompute from scratch
        # so a function that stopped qualifying stops being replenished.
        self.targets.clear()
        # Scale-down: reap TTL-expired warm workers on every host.
        for host in self.platform.cluster.hosts:
            host.pool.expire_all(now)
            for entry in host.pool.drain_expired():
                self.expired += 1
                self.platform.discard_warm(entry, host)
        for function, host, want in self.policy.decide(self._view(now)):
            self._ensure_warm(function, host, want, now)

    def _ensure_warm(self, function: str, host, target: int,
                     now: float) -> None:
        if host.down:
            # Chaos-aware backstop: a policy decision (or a stale target
            # read by on_warm_taken) must never provision onto a host the
            # chaos controller marked down — its pool was drained at
            # crash time and anything parked there would leak.
            return
        key = (host.host_id, function)
        self.targets[key] = min(target, self.cfg.max_warm_per_function)
        have = host.pool.size(function, now) + self._pending.get(key, 0)
        for _ in range(max(0, min(target, self.cfg.max_warm_per_function)
                           - have)):
            self._pending[key] = self._pending.get(key, 0) + 1
            self.provisioned += 1
            self.sim.process(
                self._provision(function, host, key),
                name=f"autoscale:{function}@host{host.host_id}")

    def _provision(self, function: str, host, key):
        """Off-critical-path provisioning of one warm worker."""
        try:
            spec = self.platform.spec(function)
            entry = yield from self.platform.provision_warm_on(spec, host)
        finally:
            self._pending[key] -= 1
        if entry is None:
            return
        if host.down:
            # The host crashed while we were booting: never park a warm
            # worker on a dead host (its pool was drained at crash time).
            self.discarded_down += 1
            self.platform.discard_warm(entry, host)
            return
        entry.expires_at_ms = self.sim.now + self.cfg.warm_expiry_ms
        host.pool.add(function, entry)
        self.parked += 1

    # -- bench helpers -------------------------------------------------------
    def pending_total(self) -> int:
        """In-flight provisioning count across all hosts/functions."""
        return sum(self._pending.values())
