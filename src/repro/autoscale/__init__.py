"""Heavy-traffic serving layer: admission control + warm-pool autoscaling.

The paper's latency figures measure one-shot invocations; sustained
open-loop traffic additionally needs a *serving layer*:

* :class:`AdmissionQueue` — a bounded FIFO ahead of each host's capacity
  gate.  Requests that cannot start immediately wait in the queue (the
  wait is a first-class ``admission`` span); requests that arrive to a
  full queue, or wait longer than their budget, are **shed** as
  :class:`SheddedInvocation` results (a 429, not a failure).
* :class:`WarmPoolAutoscaler` — a per-cluster control loop that
  pre-provisions warm workers per host, either reactively (on observed
  queue pressure) or predictively (from the same arrival-gap histograms
  the hybrid keep-alive policy maintains).

Everything is gated on ``CalibratedParameters.autoscale.enabled``; with
the default (disabled) config the invoke path is byte-identical to the
pre-serving-layer behaviour.
"""

from repro.autoscale.admission import AdmissionQueue, SheddedInvocation
from repro.autoscale.scaler import WarmPoolAutoscaler

__all__ = [
    "AdmissionQueue",
    "SheddedInvocation",
    "WarmPoolAutoscaler",
]
