"""The ServerlessBench real-world applications (§5.3, Fig 8), in Node.js.

Two applications, each a chain of serverless functions:

* **Alexa Skills** — a frontend parses the (text) voice command and invokes
  one of three skills: *fact* (answers common sense), *reminder*
  (reads/writes schedules in CouchDB), *smart home* (reports device on/off
  status).  Different skills send differently-shaped arguments into the
  JITted frontend code — the §6 de-optimization scenario.
* **Data analysis** — wage records are validated, format-converted and
  inserted into CouchDB; a database-update trigger runs the analysis chain
  (the dashed box of Fig 8(b)) which computes statistics and writes them
  back.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import (Compute, DbGet, DbPut, InvokeNext, Program,
                               Respond, program)
from repro.workloads.base import ChainSpec, FunctionSpec

REMINDER_DB = "alexa-reminders"
DEVICES_DB = "alexa-devices"
WAGES_DB = "wages"
WAGE_STATS_DB = "wage-stats"

ALEXA_SKILLS = ("fact", "reminder", "smarthome")


# ---------------------------------------------------------------------------
# Sources (abridged but real handler code for the annotator)
# ---------------------------------------------------------------------------
_ALEXA_FRONTEND_JS = '''\
function parseIntent(text) {
    if (text.indexOf('remind') >= 0) return 'reminder';
    if (text.indexOf('turn') >= 0 || text.indexOf('status') >= 0)
        return 'smarthome';
    return 'fact';
}

function main(params) {
    const intent = parseIntent(params.text || '');
    return { invoke: 'alexa-' + intent, slots: params };
}
'''

_ALEXA_FACT_JS = '''\
const FACTS = [
    'A year on Mercury is just 88 days long.',
    'Octopuses have three hearts.',
];

function main(params) {
    const i = (params.seed || 0) % FACTS.length;
    return { speech: FACTS[i] };
}
'''

_ALEXA_REMINDER_JS = '''\
function main(params) {
    const entry = { item: params.item, place: params.place,
                    url: params.url };
    // search or insert the schedule in CouchDB
    return { saved: entry };
}
'''

_ALEXA_SMARTHOME_JS = '''\
function main(params) {
    const devices = ['light', 'door', 'tv'];
    const status = {};
    for (const d of devices) status[d] = params[d] || 'off';
    return { status: status };
}
'''

_DA_INPUT_JS = '''\
function main(params) {
    if (!params.name || !params.id) throw new Error('invalid wage record');
    return { invoke: 'da-format', record: params };
}
'''

_DA_FORMAT_JS = '''\
function main(params) {
    const rec = params.record || params;
    const doc = { name: rec.name, id: rec.id, role: rec.role,
                  base: Number(rec.base || 0) };
    // insert into CouchDB; the analysis chain triggers on the update
    return { inserted: doc };
}
'''

_DA_ANALYZE_JS = '''\
function main(params) {
    // read wage docs, compute bonuses and taxes per role
    const bonusRate = { manager: 0.2, engineer: 0.15 };
    return { invoke: 'da-stats', rates: bonusRate };
}
'''

_DA_STATS_JS = '''\
function main(params) {
    // aggregate statistics and write them back to CouchDB
    return { done: true };
}
'''


def _app(name: str, functions, extra_load_ms: float = 140.0) -> AppCode:
    return AppCode(name=name, language="nodejs",
                   guest_functions=tuple(functions),
                   extra_load_ms=extra_load_ms)


# ---------------------------------------------------------------------------
# Alexa Skills
# ---------------------------------------------------------------------------
def _alexa_frontend_program(payload: Dict[str, Any]) -> Program:
    skill = payload.get("skill", "fact")
    # The intent parse sees a different argument shape per skill — the
    # JITted code de-optimizes on unseen shapes (§6).
    return program(
        Compute(5200.0, function="main", arg_shape=(skill,)),
        InvokeNext(f"alexa-{skill}", payload_kb=1.2),
        Respond(1.0),
    )


def _alexa_fact_program(_payload: Dict[str, Any]) -> Program:
    return program(Compute(2600.0), Respond(0.8))


def _alexa_reminder_program(payload: Dict[str, Any]) -> Program:
    # Search or enter a schedule: read then write the reminders database.
    # Documents carry item, place and related-URL fields (§5.3).
    doc_kb = float(payload.get("doc_kb", 1.4))
    return program(
        Compute(2100.0),
        DbGet(REMINDER_DB, doc_kb=doc_kb),
        Compute(900.0),
        DbPut(REMINDER_DB, doc_kb=doc_kb),
        Respond(0.8),
    )


def _alexa_smarthome_program(_payload: Dict[str, Any]) -> Program:
    return program(
        Compute(1700.0),
        DbGet(DEVICES_DB, doc_kb=0.9),
        Compute(600.0),
        Respond(0.8),
    )


def alexa_skills_chain() -> ChainSpec:
    """The Alexa Skills application (Fig 8(a))."""
    functions = (
        FunctionSpec(
            name="alexa-frontend", language="nodejs",
            app=_app("alexa-frontend",
                     [GuestFunction("main", 900.0, 3.0),
                      GuestFunction("parseIntent", 300.0, 3.0)]),
            make_program=_alexa_frontend_program,
            source=_ALEXA_FRONTEND_JS,
            description="Voice-command analysis and skill dispatch",
            benchmark_suite="serverlessbench"),
        FunctionSpec(
            name="alexa-fact", language="nodejs",
            app=_app("alexa-fact", [GuestFunction("main", 400.0, 3.0)]),
            make_program=_alexa_fact_program,
            source=_ALEXA_FACT_JS,
            description="Answers simple common sense",
            benchmark_suite="serverlessbench"),
        FunctionSpec(
            name="alexa-reminder", language="nodejs",
            app=_app("alexa-reminder", [GuestFunction("main", 600.0, 3.0)]),
            make_program=_alexa_reminder_program,
            source=_ALEXA_REMINDER_JS,
            description="Searches or enters a schedule in CouchDB",
            benchmark_suite="serverlessbench"),
        FunctionSpec(
            name="alexa-smarthome", language="nodejs",
            app=_app("alexa-smarthome", [GuestFunction("main", 500.0, 3.0)]),
            make_program=_alexa_smarthome_program,
            source=_ALEXA_SMARTHOME_JS,
            description="Reports on/off status of home devices",
            benchmark_suite="serverlessbench"),
    )
    return ChainSpec(
        name="alexa-skills", entry="alexa-frontend", functions=functions,
        description="Apps run through the Alexa AI device (ServerlessBench)")


# ---------------------------------------------------------------------------
# Data analysis
# ---------------------------------------------------------------------------
def _da_input_program(_payload: Dict[str, Any]) -> Program:
    return program(
        Compute(2000.0),
        InvokeNext("da-format", payload_kb=1.0),
        Respond(0.6),
    )


def _da_format_program(_payload: Dict[str, Any]) -> Program:
    # Validate + convert, then insert into CouchDB (name, ID, role, base
    # payment — §5.3); the write fires the analysis trigger.
    return program(
        Compute(2600.0),
        DbPut(WAGES_DB, doc_kb=1.1),
        Respond(0.6),
    )


def _da_analyze_program(_payload: Dict[str, Any]) -> Program:
    return program(
        DbGet(WAGES_DB, doc_kb=2.4),
        Compute(6400.0),
        InvokeNext("da-stats", payload_kb=1.6),
        Respond(0.6),
    )


def _da_stats_program(_payload: Dict[str, Any]) -> Program:
    return program(
        Compute(3000.0),
        DbPut(WAGE_STATS_DB, doc_kb=1.3),
        Respond(0.6),
    )


def data_analysis_chain() -> ChainSpec:
    """The data-analysis application (Fig 8(b)).

    ``da-input -> da-format -> CouchDB``; a db trigger on the wages
    database runs ``da-analyze -> da-stats`` (the dashed box).
    """
    functions = (
        FunctionSpec(
            name="da-input", language="nodejs",
            app=_app("da-input", [GuestFunction("main", 500.0, 3.0)]),
            make_program=_da_input_program,
            source=_DA_INPUT_JS,
            description="Receives and validates personal wage data",
            benchmark_suite="serverlessbench"),
        FunctionSpec(
            name="da-format", language="nodejs",
            app=_app("da-format", [GuestFunction("main", 600.0, 3.0)]),
            make_program=_da_format_program,
            source=_DA_FORMAT_JS,
            description="Converts the record format and inserts to CouchDB",
            benchmark_suite="serverlessbench"),
        FunctionSpec(
            name="da-analyze", language="nodejs",
            app=_app("da-analyze", [GuestFunction("main", 900.0, 3.0)]),
            make_program=_da_analyze_program,
            source=_DA_ANALYZE_JS,
            description="Calculates bonuses and taxes from roles",
            benchmark_suite="serverlessbench"),
        FunctionSpec(
            name="da-stats", language="nodejs",
            app=_app("da-stats", [GuestFunction("main", 700.0, 3.0)]),
            make_program=_da_stats_program,
            source=_DA_STATS_JS,
            description="Aggregates statistics and stores them",
            benchmark_suite="serverlessbench"),
    )
    return ChainSpec(
        name="data-analysis", entry="da-input", functions=functions,
        description="Store and analyze employee wage statistics "
                    "(ServerlessBench)")


def analysis_trigger() -> Dict[str, str]:
    """The db trigger wiring of Fig 8(b): wages update -> analysis chain."""
    return {WAGES_DB: "da-analyze"}


# ---------------------------------------------------------------------------
# DAG forms (repro.workloads.dag): the same applications as explicit graphs
# ---------------------------------------------------------------------------
def alexa_skills_dag() -> "DagSpec":
    """Fig 8(a) as a DAG: the frontend fans out to exactly one skill.

    The conditional edges mirror the frontend program's
    ``InvokeNext(f"alexa-{skill}")`` dispatch, so on chain-capable
    backends the guest hop and the DAG agree stage-for-stage.
    """
    from repro.workloads.dag import DagEdge, DagStage, make_dag
    chain = alexa_skills_chain()
    stages = [DagStage(name="frontend", function="alexa-frontend")]
    edges = []
    for skill in ALEXA_SKILLS:
        stages.append(DagStage(name=skill, function=f"alexa-{skill}"))
        edges.append(DagEdge(src="frontend", dst=skill, payload_kb=1.2,
                             when_key="skill", when_value=skill))
    return make_dag("alexa-skills", "frontend", stages, edges,
                    functions=chain.functions, guest_hops=True,
                    description=chain.description)


def data_analysis_dag() -> "DagSpec":
    """Fig 8(b) as a DAG: the insertion chain plus the change-feed edge.

    ``format -> analyze`` is a *trigger* edge: the wages write fires the
    analysis chain through the platform's CouchDB change feed, exactly
    the dashed box of the paper's figure.
    """
    from repro.workloads.dag import (EDGE_TRIGGER, DagEdge, DagStage,
                                     make_dag)
    chain = data_analysis_chain()
    stages = [DagStage(name="input", function="da-input"),
              DagStage(name="format", function="da-format"),
              DagStage(name="analyze", function="da-analyze"),
              DagStage(name="stats", function="da-stats")]
    edges = [DagEdge(src="input", dst="format", payload_kb=1.0),
             DagEdge(src="format", dst="analyze", kind=EDGE_TRIGGER,
                     database=WAGES_DB),
             DagEdge(src="analyze", dst="stats", payload_kb=1.6)]
    return make_dag("data-analysis", "input", stages, edges,
                    functions=chain.functions, guest_hops=True,
                    description=chain.description)
