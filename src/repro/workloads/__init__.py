"""Workloads: FaaSdom micro-benchmarks, ServerlessBench apps, traces."""

from repro.workloads.base import ChainSpec, FunctionSpec
from repro.workloads.faasdom import (BENCHMARK_NAMES,
                                     EXTRA_BENCHMARK_NAMES, LANGUAGES,
                                     all_faasdom_specs, faasdom_spec)
from repro.workloads.generator import (POPULAR_FRACTION, FunctionPopularity,
                                       TraceEvent, assign_popularity,
                                       modulated_poisson_trace,
                                       poisson_trace, trace_stats)
from repro.workloads.serverlessbench import (ALEXA_SKILLS, DEVICES_DB,
                                             REMINDER_DB, WAGE_STATS_DB,
                                             WAGES_DB, alexa_skills_chain,
                                             analysis_trigger,
                                             data_analysis_chain)

__all__ = [
    "ALEXA_SKILLS",
    "BENCHMARK_NAMES",
    "ChainSpec",
    "DEVICES_DB",
    "EXTRA_BENCHMARK_NAMES",
    "FunctionPopularity",
    "FunctionSpec",
    "LANGUAGES",
    "POPULAR_FRACTION",
    "REMINDER_DB",
    "TraceEvent",
    "WAGES_DB",
    "WAGE_STATS_DB",
    "alexa_skills_chain",
    "all_faasdom_specs",
    "analysis_trigger",
    "assign_popularity",
    "data_analysis_chain",
    "faasdom_spec",
    "modulated_poisson_trace",
    "poisson_trace",
    "trace_stats",
]
