"""Azure-like invocation trace generator (§1, §2.2).

Shahrad et al. [48] report that only 18.6% of functions are called more than
once a minute — the observation behind the paper's argument that warm pools
waste memory on the other 81.4%.  This generator produces a deterministic
synthetic trace with exactly that popularity split, used by the
warm-pool-vs-snapshot policy bench (an extension beyond the paper's own
figures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import PlatformError
from repro.sim.rng import RngStreams

POPULAR_FRACTION = 0.186   # functions invoked more than once per minute [48]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled invocation."""

    at_ms: float
    function: str


@dataclass(frozen=True)
class FunctionPopularity:
    """Arrival process of one function."""

    function: str
    mean_interarrival_ms: float
    popular: bool


def assign_popularity(functions: Sequence[str], rng: RngStreams,
                      popular_interarrival_ms: float = 12000.0,
                      rare_interarrival_ms: float = 1800000.0
                      ) -> List[FunctionPopularity]:
    """Split *functions* into popular (18.6%) and rare (81.4%) classes.

    Popular functions arrive every ~12 s (more than once a minute); rare
    functions every ~30 min — beyond any realistic keep-alive window, the
    regime where [48] finds warm pools ineffective.
    """
    if not functions:
        raise PlatformError("cannot assign popularity to zero functions")
    n_popular = max(1, int(round(len(functions) * POPULAR_FRACTION)))
    if len(functions) == 1:
        n_popular = 1
    stream = rng.stream("popularity")
    shuffled = list(functions)
    stream.shuffle(shuffled)
    result = []
    for index, function in enumerate(shuffled):
        popular = index < n_popular
        result.append(FunctionPopularity(
            function=function,
            mean_interarrival_ms=(popular_interarrival_ms if popular
                                  else rare_interarrival_ms),
            popular=popular))
    return result


def poisson_trace(popularities: Sequence[FunctionPopularity],
                  duration_ms: float, rng: RngStreams) -> List[TraceEvent]:
    """A merged Poisson arrival trace over *duration_ms*, sorted by time."""
    if duration_ms <= 0:
        raise PlatformError(f"duration must be positive, got {duration_ms}")
    events: List[TraceEvent] = []
    for pop in popularities:
        stream = rng.stream(f"arrivals:{pop.function}")
        t = 0.0
        while True:
            # Exponential inter-arrival via inverse transform.
            u = stream.random()
            t += -pop.mean_interarrival_ms * math.log(1.0 - u)
            if t >= duration_ms:
                break
            events.append(TraceEvent(at_ms=t, function=pop.function))
    events.sort(key=lambda e: (e.at_ms, e.function))
    return events


def modulated_poisson_trace(popularities: Sequence[FunctionPopularity],
                            duration_ms: float, rng: RngStreams,
                            period_ms: float = 60000.0,
                            depth: float = 0.6) -> List[TraceEvent]:
    """A *non-homogeneous* Poisson trace: the arrival rate swings
    sinusoidally around each function's mean (diurnal-pattern analogue,
    compressed to *period_ms*), via Lewis–Shedler thinning.

    ``rate(t) = base_rate * (1 + depth * sin(2π t / period))`` — candidate
    arrivals are drawn at the peak rate and accepted with probability
    ``rate(t)/peak``, so bursts at the crests stress admission queues
    while troughs let warm pools drain.  ``depth=0`` degenerates to
    :func:`poisson_trace`'s homogeneous process (different draws, same
    law).  Deterministic per seed: one RNG stream per function.
    """
    if duration_ms <= 0:
        raise PlatformError(f"duration must be positive, got {duration_ms}")
    if not 0.0 <= depth < 1.0:
        raise PlatformError(f"modulation depth must be in [0, 1), "
                            f"got {depth}")
    if period_ms <= 0:
        raise PlatformError(f"modulation period must be positive, "
                            f"got {period_ms}")
    events: List[TraceEvent] = []
    omega = 2.0 * math.pi / period_ms
    for pop in popularities:
        stream = rng.stream(f"arrivals:{pop.function}")
        peak_mean_ms = pop.mean_interarrival_ms / (1.0 + depth)
        t = 0.0
        while True:
            u = stream.random()
            t += -peak_mean_ms * math.log(1.0 - u)
            if t >= duration_ms:
                break
            accept = (1.0 + depth * math.sin(omega * t)) / (1.0 + depth)
            if stream.random() < accept:
                events.append(TraceEvent(at_ms=t, function=pop.function))
    events.sort(key=lambda e: (e.at_ms, e.function))
    return events


# ---------------------------------------------------------------------------
# Multi-tenant chain arrivals (the `figure chains` workload)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChainTraceEvent:
    """One scheduled DAG submission by one tenant."""

    at_ms: float
    tenant: str
    dag: str


def zipf_weights(n: int, exponent: float = 1.1) -> List[float]:
    """Normalized Zipf weights over ranks ``1..n`` (rank 1 hottest).

    Tenant popularity in production serverless traces is heavy-tailed
    [48]: a few tenants dominate invocations while the long tail stays
    nearly idle — which is exactly the regime where per-tenant warm
    pools waste memory and snapshot restores win.
    """
    if n < 1:
        raise PlatformError(f"need at least one rank, got {n}")
    if exponent <= 0:
        raise PlatformError(f"zipf exponent must be > 0, got {exponent}")
    raw = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
    total = sum(raw)
    return [weight / total for weight in raw]


def multi_tenant_chain_trace(tenants: Sequence[str], dags: Sequence[str],
                             duration_ms: float, rng: RngStreams,
                             mean_interarrival_ms: float = 20000.0,
                             zipf_exponent: float = 1.1,
                             period_ms: float = 120000.0,
                             depth: float = 0.5
                             ) -> List[ChainTraceEvent]:
    """Chain submissions for many tenants: Zipf popularity over tenants
    (declaration order = rank order) with a *per-tenant diurnal phase*.

    Each (tenant, dag) pair is an independent non-homogeneous Poisson
    process (Lewis–Shedler thinning, one RNG stream per pair, so the
    trace is a pure function of the seed and insensitive to tenant-set
    changes elsewhere).  The hottest tenant submits each DAG with mean
    interarrival *mean_interarrival_ms*; tenant at rank *r* runs
    ``r**exponent`` times slower.  Every tenant's sinusoidal load swing
    is phase-shifted by its rank (evenly over one period), so tenant
    peaks do *not* align — the cluster sees rolling, overlapping waves
    rather than one synchronized burst, which is what makes chain-aware
    placement and autoscaling earn their keep.
    """
    if duration_ms <= 0:
        raise PlatformError(f"duration must be positive, got {duration_ms}")
    if mean_interarrival_ms <= 0:
        raise PlatformError(f"mean interarrival must be positive, "
                            f"got {mean_interarrival_ms}")
    if not 0.0 <= depth < 1.0:
        raise PlatformError(f"modulation depth must be in [0, 1), "
                            f"got {depth}")
    if period_ms <= 0:
        raise PlatformError(f"modulation period must be positive, "
                            f"got {period_ms}")
    if not tenants:
        raise PlatformError("need at least one tenant")
    if not dags:
        raise PlatformError("need at least one dag")
    if len(set(tenants)) != len(tenants):
        raise PlatformError("tenant names must be unique")
    weights = zipf_weights(len(tenants), zipf_exponent)
    hottest = weights[0]
    omega = 2.0 * math.pi / period_ms
    events: List[ChainTraceEvent] = []
    for index, tenant in enumerate(tenants):
        tenant_mean_ms = mean_interarrival_ms * hottest / weights[index]
        phase = omega * period_ms * index / len(tenants)
        for dag in dags:
            stream = rng.stream(f"chain-arrivals:{tenant}:{dag}")
            peak_mean_ms = tenant_mean_ms / (1.0 + depth)
            t = 0.0
            while True:
                u = stream.random()
                t += -peak_mean_ms * math.log(1.0 - u)
                if t >= duration_ms:
                    break
                accept = ((1.0 + depth * math.sin(omega * t + phase))
                          / (1.0 + depth))
                if stream.random() < accept:
                    events.append(ChainTraceEvent(
                        at_ms=t, tenant=tenant, dag=dag))
    events.sort(key=lambda e: (e.at_ms, e.tenant, e.dag))
    return events


def chain_trace_stats(events: Sequence[ChainTraceEvent]) -> dict:
    """Per-tenant submission counts, for Zipf sanity checks."""
    per_tenant: dict = {}
    for event in events:
        per_tenant[event.tenant] = per_tenant.get(event.tenant, 0) + 1
    return {"per_tenant": per_tenant, "total_events": len(events)}


def trace_stats(events: Sequence[TraceEvent],
                duration_ms: float) -> dict:
    """Per-function rates, for sanity checks against the 18.6% claim."""
    counts: dict = {}
    for event in events:
        counts[event.function] = counts.get(event.function, 0) + 1
    minutes = duration_ms / 60000.0
    rates = {function: count / minutes for function, count in counts.items()}
    popular = sum(1 for rate in rates.values() if rate > 1.0)
    return {
        "per_minute_rates": rates,
        "popular_functions": popular,
        "total_events": len(events),
    }
