"""The FaaSdom micro-benchmarks (Table 2, §5.2), in Node.js and Python.

Four benchmarks, each with real handler source (what the annotator
transforms) and an op-level program (what the runtime executes):

* ``faas-fact``        — integer factorization (compute-intensive);
* ``faas-matrix-mult`` — large matrix multiplication (compute-intensive,
  highly vectorizable — hence the larger Numba speedup, up to 80x in
  Fig 7(b));
* ``faas-diskio``      — 10 KB file reads and writes, 100 times each
  (§5.2.1(2));
* ``faas-netlatency``  — respond immediately with a 79-byte body and
  ~500-byte header (§5.2.1(3)).

Compute unit counts are per-language: FaaSdom sizes inputs per runtime, and
the abstract "unit" is work the interpreter executes per bytecode dispatch.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import PlatformError
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import (Compute, DiskRead, DiskWrite, Program,
                               Respond, program)
from repro.workloads.base import FunctionSpec

LANGUAGES = ("nodejs", "python")

# ---------------------------------------------------------------------------
# Handler sources (annotator input)
# ---------------------------------------------------------------------------
_FACT_PY = '''\
def main(params):
    n = int(params.get("n", 1000003))
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return {"factors": factors}
'''

_FACT_JS = '''\
function main(params) {
    let n = params.n || 1000003;
    const factors = [];
    for (let d = 2; d * d <= n; d++) {
        while (n % d === 0) { factors.push(d); n = Math.floor(n / d); }
    }
    if (n > 1) factors.push(n);
    return { factors: factors };
}
'''

_MATMUL_PY = '''\
def matmul(a, b, n):
    c = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for k in range(n):
            aik = a[i][k]
            for j in range(n):
                c[i][j] += aik * b[k][j]
    return c

def main(params):
    n = int(params.get("n", 128))
    a = [[float(i + j) for j in range(n)] for i in range(n)]
    b = [[float(i - j) for j in range(n)] for i in range(n)]
    return {"trace": sum(matmul(a, b, n)[i][i] for i in range(n))}
'''

_MATMUL_JS = '''\
function matmul(a, b, n) {
    const c = [];
    for (let i = 0; i < n; i++) {
        c.push(new Float64Array(n));
        for (let k = 0; k < n; k++) {
            const aik = a[i][k];
            for (let j = 0; j < n; j++) c[i][j] += aik * b[k][j];
        }
    }
    return c;
}

function main(params) {
    const n = params.n || 128;
    const a = [], b = [];
    for (let i = 0; i < n; i++) {
        a.push(Float64Array.from({length: n}, (_, j) => i + j));
        b.push(Float64Array.from({length: n}, (_, j) => i - j));
    }
    const c = matmul(a, b, n);
    let trace = 0;
    for (let i = 0; i < n; i++) trace += c[i][i];
    return { trace: trace };
}
'''

_DISKIO_PY = '''\
def main(params):
    rounds = int(params.get("rounds", 100))
    payload = b"x" * 10240
    total = 0
    for i in range(rounds):
        with open("/tmp/faas-diskio.bin", "wb") as f:
            f.write(payload)
        with open("/tmp/faas-diskio.bin", "rb") as f:
            total += len(f.read())
    return {"bytes": total}
'''

_DISKIO_JS = '''\
const fs = require('fs');

function main(params) {
    const rounds = params.rounds || 100;
    const payload = Buffer.alloc(10240, 'x');
    let total = 0;
    for (let i = 0; i < rounds; i++) {
        fs.writeFileSync('/tmp/faas-diskio.bin', payload);
        total += fs.readFileSync('/tmp/faas-diskio.bin').length;
    }
    return { bytes: total };
}
'''

_NETLATENCY_PY = '''\
def main(params):
    return {"statusCode": 200, "body": "x" * 79}
'''

_NETLATENCY_JS = '''\
function main(params) {
    return { statusCode: 200, body: 'x'.repeat(79) };
}
'''

# -- extras: FaaSdom members the paper's figures do not use ------------------
_GZIP_PY = '''\
import zlib

def main(params):
    level = int(params.get("level", 6))
    payload = (params.get("text", "serverless") * 2048).encode("utf-8")
    compressed = zlib.compress(payload, level)
    return {"in": len(payload), "out": len(compressed)}
'''

_GZIP_JS = '''\
const zlib = require('zlib');

function main(params) {
    const payload = Buffer.from((params.text || 'serverless').repeat(2048));
    const compressed = zlib.gzipSync(payload, { level: params.level || 6 });
    return { in: payload.length, out: compressed.length };
}
'''

_IMAGE_RESIZE_PY = '''\
def main(params):
    w = int(params.get("w", 512))
    h = int(params.get("h", 512))
    # nearest-neighbour downscale of a synthetic image to w/2 x h/2
    image = [[(x * 31 + y * 17) % 256 for x in range(w)] for y in range(h)]
    small = [[image[y * 2][x * 2] for x in range(w // 2)]
             for y in range(h // 2)]
    return {"pixels": len(small) * len(small[0])}
'''

_IMAGE_RESIZE_JS = '''\
function main(params) {
    const w = params.w || 512, h = params.h || 512;
    const image = new Uint8Array(w * h);
    for (let i = 0; i < w * h; i++) image[i] = (i * 31) % 256;
    const small = new Uint8Array((w / 2) * (h / 2));
    for (let y = 0; y < h / 2; y++)
        for (let x = 0; x < w / 2; x++)
            small[y * (w / 2) + x] = image[(y * 2) * w + x * 2];
    return { pixels: small.length };
}
'''


# ---------------------------------------------------------------------------
# Workload shapes (compute units / JIT speedups per language)
# ---------------------------------------------------------------------------
# name -> language -> (compute_units, jit_speedup, code_units)
_SHAPES: Dict[str, Dict[str, Tuple[float, float, float]]] = {
    "faas-fact": {
        "nodejs": (27000.0, 3.0, 500.0),
        "python": (8000.0, 20.0, 500.0),     # Fig 7(a): 20x Numba speedup
    },
    "faas-matrix-mult": {
        "nodejs": (36000.0, 3.2, 700.0),
        "python": (10240.0, 80.0, 700.0),    # Fig 7(b): up to 80x (vector)
    },
    "faas-diskio": {
        "nodejs": (300.0, 3.0, 400.0),
        "python": (150.0, 6.0, 400.0),
    },
    "faas-netlatency": {
        "nodejs": (120.0, 3.0, 200.0),
        "python": (40.0, 6.0, 200.0),
    },
    # Extras — FaaSdom members the paper's figures do not include.
    "faas-gzip": {
        "nodejs": (14000.0, 2.2, 600.0),   # zlib is mostly native already
        "python": (5200.0, 8.0, 600.0),
    },
    "faas-image-resize": {
        "nodejs": (22000.0, 3.4, 650.0),
        "python": (7600.0, 45.0, 650.0),   # pixel loops vectorize well
    },
}

_SOURCES: Dict[str, Dict[str, str]] = {
    "faas-fact": {"nodejs": _FACT_JS, "python": _FACT_PY},
    "faas-matrix-mult": {"nodejs": _MATMUL_JS, "python": _MATMUL_PY},
    "faas-diskio": {"nodejs": _DISKIO_JS, "python": _DISKIO_PY},
    "faas-netlatency": {"nodejs": _NETLATENCY_JS, "python": _NETLATENCY_PY},
    "faas-gzip": {"nodejs": _GZIP_JS, "python": _GZIP_PY},
    "faas-image-resize": {"nodejs": _IMAGE_RESIZE_JS,
                          "python": _IMAGE_RESIZE_PY},
}

_DESCRIPTIONS = {
    "faas-fact": "Integer factorization",
    "faas-matrix-mult": "Multiplication of large matrices",
    "faas-diskio": "Disk I/O performance measurement",
    "faas-netlatency": "Network latency test that immediately responds",
    "faas-gzip": "Payload compression (extra, not in the paper's figures)",
    "faas-image-resize": "Synthetic image downscale (extra, not in the "
                         "paper's figures)",
}

#: The four benchmarks the paper's figures use (Table 2).
BENCHMARK_NAMES = ("faas-fact", "faas-matrix-mult", "faas-diskio",
                   "faas-netlatency")
#: FaaSdom members beyond the paper's figures — appendix material.
EXTRA_BENCHMARK_NAMES = ("faas-gzip", "faas-image-resize")


def _make_program(name: str, language: str) -> Program:
    units, _speedup, _code = _SHAPES[name][language]
    if name in ("faas-fact", "faas-matrix-mult"):
        return program(Compute(units), Respond(0.57))
    if name == "faas-diskio":
        # 10 KB file read and write operations, 100 times (§5.2.1(2)).
        return program(
            Compute(units * 0.5),
            DiskWrite(10.0, times=100),
            DiskRead(10.0, times=100),
            Compute(units * 0.5),
            Respond(0.57),
        )
    if name == "faas-netlatency":
        # 79-byte body + ~500-byte header, no other work (§5.2.1(3)).
        return program(Compute(units), Respond(0.57))
    if name == "faas-gzip":
        # Compress ~20 KiB, write the artifact, return sizes.
        return program(Compute(units), DiskWrite(8.0), Respond(0.6))
    if name == "faas-image-resize":
        return program(Compute(units), Respond(0.8))
    raise PlatformError(f"unknown FaaSdom benchmark {name!r}")


def faasdom_spec(name: str, language: str) -> FunctionSpec:
    """Build the :class:`FunctionSpec` for one FaaSdom benchmark."""
    if name not in _SHAPES:
        raise PlatformError(f"unknown FaaSdom benchmark {name!r}")
    if language not in LANGUAGES:
        raise PlatformError(f"unknown language {language!r}")
    units, speedup, code_units = _SHAPES[name][language]
    del units  # baked into the program below
    app = AppCode(
        name=f"{name}-{language}",
        language=language,
        guest_functions=(
            GuestFunction("main", code_units=code_units,
                          jit_speedup=speedup),),
        # §5.1: npm package installation dominates Node install time.
        extra_load_ms=120.0 if language == "nodejs" else 20.0,
    )
    fixed_program = _make_program(name, language)
    return FunctionSpec(
        name=f"{name}-{language}",
        language=language,
        app=app,
        make_program=lambda payload, _p=fixed_program: _p,
        source=_SOURCES[name][language],
        description=_DESCRIPTIONS[name],
        benchmark_suite="faasdom",
    )


def all_faasdom_specs(include_extras: bool = False
                      ) -> Tuple[FunctionSpec, ...]:
    """Every FaaSdom benchmark in both languages (Table 2's first block).

    ``include_extras`` adds the appendix workloads the paper's figures do
    not use (faas-gzip, faas-image-resize).
    """
    names = BENCHMARK_NAMES + (EXTRA_BENCHMARK_NAMES if include_extras
                               else ())
    return tuple(faasdom_spec(name, language)
                 for name in names for language in LANGUAGES)
