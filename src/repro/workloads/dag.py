"""DAG workloads: fan-out/fan-in/conditional function graphs.

A :class:`DagSpec` generalizes :class:`~repro.workloads.base.ChainSpec`:
stages (each bound to a :class:`~repro.workloads.base.FunctionSpec` by
name) are connected by edges of two kinds —

* ``invoke`` edges: the platform dispatches the destination stage once
  every taken incoming invoke edge's source stage completed (fan-in).  An
  edge may be *conditional* (``when``): it is taken only when the run
  payload carries the given key/value, which is how the Alexa frontend
  fans out to exactly one skill.
* ``trigger`` edges: the destination stage is fired by the CouchDB
  change feed when the source stage writes the named database — the
  dashed box of the paper's Fig 8(b).  Trigger-driven stages are invoked
  by the platform's trigger machinery, not by the chain executor.

Validation is structural and total: every problem raises a
:class:`~repro.errors.ValidationError` whose message is prefixed with a
JSON path into the document (``dag.edges[2].to: ...``), and cycle
detection runs over *all* edges (a trigger loop would re-fire forever).
The JSON document form (:func:`dag_from_document` /
:func:`dag_to_document`) round-trips and is what ``scenarios/dags/``
ships; function bindings are attached separately, since a document can
only carry names, not guest programs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.workloads.base import ChainSpec, FunctionSpec

EDGE_INVOKE = "invoke"
EDGE_TRIGGER = "trigger"
EDGE_KINDS = (EDGE_INVOKE, EDGE_TRIGGER)

_STAGE_KEYS = ("name", "function")
_EDGE_KEYS = ("from", "to", "kind", "database", "payload_kb", "when")
_WHEN_KEYS = ("key", "equals")
_DOC_KEYS = ("name", "entry", "description", "guest_hops", "stages",
             "edges")


def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


@dataclass(frozen=True)
class DagEdge:
    """One edge of a DAG: how (and whether) ``dst`` follows ``src``."""

    src: str
    dst: str
    kind: str = EDGE_INVOKE
    #: Trigger edges: the CouchDB database whose change feed fires ``dst``.
    database: str = ""
    #: Invoke edges: argument size shipped to ``dst`` (the guest SDK's
    #: ``InvokeNext(payload_kb=...)``).
    payload_kb: float = 1.0
    #: Conditional invoke edges: taken only when
    #: ``payload[when_key] == when_value``.  Empty key = unconditional.
    when_key: str = ""
    when_value: Any = None

    def taken(self, payload: Mapping[str, Any]) -> bool:
        """Whether this edge fires for *payload* (triggers always do)."""
        if not self.when_key:
            return True
        return payload.get(self.when_key) == self.when_value


@dataclass(frozen=True)
class DagStage:
    """One stage: a named slot bound to an installed function."""

    name: str
    function: str


@dataclass(frozen=True)
class DagSpec:
    """A validated function DAG (see module docstring)."""

    name: str
    entry: str
    stages: Tuple[DagStage, ...]
    edges: Tuple[DagEdge, ...] = ()
    functions: Tuple[FunctionSpec, ...] = ()
    #: True when the guest programs perform the invoke-edge hops
    #: themselves (``InvokeNext`` ops) — chain-capable backends then run
    #: the DAG exactly like the paper's §5.3 chains.
    guest_hops: bool = False
    description: str = ""

    # -- lookups ---------------------------------------------------------------
    def stage(self, name: str) -> DagStage:
        """The stage called *name*; ValidationError if absent."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ValidationError(
            f"dag {self.name!r} has no stage {name!r}")

    def function_spec(self, name: str) -> FunctionSpec:
        """The bound FunctionSpec called *name*; ValidationError if absent."""
        for spec in self.functions:
            if spec.name == name:
                return spec
        raise ValidationError(
            f"dag {self.name!r} has no function {name!r} bound")

    def stage_names(self) -> Tuple[str, ...]:
        """Every stage name, in declaration order."""
        return tuple(stage.name for stage in self.stages)

    def invoke_in_edges(self, stage: str) -> Tuple[DagEdge, ...]:
        """The invoke edges arriving at *stage* (its fan-in set)."""
        return tuple(edge for edge in self.edges
                     if edge.dst == stage and edge.kind == EDGE_INVOKE)

    def invoke_out_edges(self, stage: str) -> Tuple[DagEdge, ...]:
        """The invoke edges leaving *stage* (its fan-out set)."""
        return tuple(edge for edge in self.edges
                     if edge.src == stage and edge.kind == EDGE_INVOKE)

    def trigger_edges(self) -> Tuple[DagEdge, ...]:
        """Every change-feed edge of the DAG."""
        return tuple(edge for edge in self.edges
                     if edge.kind == EDGE_TRIGGER)

    def trigger_driven(self, stage: str) -> bool:
        """Whether *stage* is fired by the change feed, not the executor."""
        return any(edge.dst == stage for edge in self.trigger_edges())

    # -- graph queries ---------------------------------------------------------
    def invoke_order(self) -> Tuple[str, ...]:
        """A deterministic topological order over the invoke subgraph.

        Stages tie-break in declaration order, so the order (and therefore
        every executor dispatch sequence) is a pure function of the spec.
        """
        indegree = {stage.name: 0 for stage in self.stages}
        for edge in self.edges:
            if edge.kind == EDGE_INVOKE:
                indegree[edge.dst] += 1
        order: List[str] = []
        ready = [s.name for s in self.stages if indegree[s.name] == 0]
        position = {s.name: i for i, s in enumerate(self.stages)}
        while ready:
            ready.sort(key=position.__getitem__)
            current = ready.pop(0)
            order.append(current)
            for edge in self.invoke_out_edges(current):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        return tuple(order)

    def active_stages(self, payload: Mapping[str, Any],
                      root: Optional[str] = None) -> Tuple[str, ...]:
        """The executor-dispatched stages for *payload*, in topo order.

        A stage is active when it is the *root* (the entry by default),
        or at least one taken invoke edge reaches it from an active
        stage.  Trigger-driven stages are excluded — the change feed
        fires those — unless the root itself is one: a trigger segment
        starts *at* the triggered stage and covers its invoke
        descendants.
        """
        start = self.entry if root is None else root
        self.stage(start)  # must exist
        active = {start}
        for stage in self.invoke_order():
            if stage in active:
                continue
            if any(edge.src in active and edge.taken(payload)
                   for edge in self.invoke_in_edges(stage)):
                active.add(stage)
        return tuple(stage for stage in self.invoke_order()
                     if stage in active
                     and (stage == start or not self.trigger_driven(stage)))


def _check_cycles(spec: DagSpec, path: str) -> None:
    """Kahn over *all* edges: leftover stages are on (or behind) a cycle."""
    indegree = {stage.name: 0 for stage in spec.stages}
    for edge in spec.edges:
        indegree[edge.dst] += 1
    ready = [name for name, degree in indegree.items() if degree == 0]
    seen = 0
    while ready:
        current = ready.pop()
        seen += 1
        for edge in spec.edges:
            if edge.src == current:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
    if seen != len(spec.stages):
        cyclic = sorted(name for name, degree in indegree.items()
                        if degree > 0)
        _fail(f"{path}.edges",
              f"cycle through stages {', '.join(cyclic)}")


def validate_dag(spec: DagSpec, path: str = "dag") -> DagSpec:
    """Structural validation; returns *spec* or raises ValidationError."""
    if not spec.name or not isinstance(spec.name, str):
        _fail(f"{path}.name", "must be a non-empty string")
    seen: Dict[str, int] = {}
    for index, stage in enumerate(spec.stages):
        where = f"{path}.stages[{index}]"
        if not stage.name or not isinstance(stage.name, str):
            _fail(f"{where}.name", "must be a non-empty string")
        if not stage.function or not isinstance(stage.function, str):
            _fail(f"{where}.function", "must be a non-empty string")
        if stage.name in seen:
            _fail(f"{where}.name",
                  f"duplicate stage {stage.name!r} "
                  f"(also stages[{seen[stage.name]}])")
        seen[stage.name] = index
    if not spec.stages:
        _fail(f"{path}.stages", "a dag needs at least one stage")
    if spec.entry not in seen:
        _fail(f"{path}.entry",
              f"unknown stage {spec.entry!r} "
              f"(stages: {', '.join(seen)})")
    in_kinds: Dict[str, str] = {}
    for index, edge in enumerate(spec.edges):
        where = f"{path}.edges[{index}]"
        if edge.kind not in EDGE_KINDS:
            _fail(f"{where}.kind",
                  f"unknown edge kind {edge.kind!r} "
                  f"(expected one of {', '.join(EDGE_KINDS)})")
        if edge.src not in seen:
            _fail(f"{where}.from", f"unknown stage {edge.src!r}")
        if edge.dst not in seen:
            _fail(f"{where}.to", f"unknown stage {edge.dst!r}")
        if edge.src == edge.dst:
            _fail(f"{where}.to", f"self-edge on stage {edge.src!r}")
        if edge.dst == spec.entry:
            _fail(f"{where}.to",
                  f"entry stage {spec.entry!r} cannot have incoming edges")
        if edge.kind == EDGE_TRIGGER:
            if not edge.database:
                _fail(f"{where}.database",
                      "trigger edges must name a database")
            if edge.when_key:
                _fail(f"{where}.when",
                      "trigger edges cannot be conditional (the change "
                      "feed does not see the run payload)")
        else:
            if edge.database:
                _fail(f"{where}.database",
                      "only trigger edges carry a database")
            if not (edge.payload_kb > 0.0):
                _fail(f"{where}.payload_kb", "must be > 0")
        previous = in_kinds.get(edge.dst)
        if previous is not None and previous != edge.kind:
            _fail(f"{where}.kind",
                  f"stage {edge.dst!r} mixes invoke and trigger "
                  "in-edges; a stage is either executor-dispatched or "
                  "change-feed-driven")
        in_kinds[edge.dst] = edge.kind
    _check_cycles(spec, path)
    if spec.functions:
        bound = {fn.name for fn in spec.functions}
        for index, stage in enumerate(spec.stages):
            if stage.function not in bound:
                _fail(f"{path}.stages[{index}].function",
                      f"no bound function {stage.function!r} "
                      f"(bound: {', '.join(sorted(bound))})")
    if spec.guest_hops:
        functions = [stage.function for stage in spec.stages]
        if len(set(functions)) != len(functions):
            _fail(f"{path}.stages",
                  "guest_hops dags need a unique function per stage "
                  "(stage attribution reads the record's function name)")
    return spec


def make_dag(name: str, entry: str, stages: Sequence[DagStage],
             edges: Sequence[DagEdge] = (),
             functions: Sequence[FunctionSpec] = (),
             guest_hops: bool = False, description: str = "") -> DagSpec:
    """Build and validate a DagSpec in one step."""
    return validate_dag(DagSpec(
        name=name, entry=entry, stages=tuple(stages), edges=tuple(edges),
        functions=tuple(functions), guest_hops=guest_hops,
        description=description))


def chain_to_dag(chain: ChainSpec, guest_hops: bool = True) -> DagSpec:
    """A linear DAG over a chain's functions, in declaration order."""
    stages = tuple(DagStage(name=fn.name, function=fn.name)
                   for fn in chain.functions)
    edges = tuple(DagEdge(src=stages[i].name, dst=stages[i + 1].name)
                  for i in range(len(stages) - 1))
    return make_dag(chain.name, chain.entry, stages, edges,
                    functions=chain.functions, guest_hops=guest_hops,
                    description=chain.description)


# ---------------------------------------------------------------------------
# JSON document form
# ---------------------------------------------------------------------------
_IDENT_RE = re.compile(r"^[A-Za-z0-9_-]+$")


def _child(path: str, key: Any) -> str:
    """The JSON path of *key* under *path*: dotted for identifier-like
    keys, bracket-quoted otherwise (a key like ``"a b"`` must not smear
    into the surrounding path syntax)."""
    if isinstance(key, str) and _IDENT_RE.match(key):
        return f"{path}.{key}"
    return f"{path}[{key!r}]"


def _require_keys(value: Mapping[str, Any], allowed: Sequence[str],
                  path: str) -> None:
    for key in value:
        if key not in allowed:
            _fail(_child(path, key),
                  f"unknown key (expected one of {', '.join(allowed)})")


def _require_str(value: Mapping[str, Any], key: str, path: str,
                 default: Optional[str] = None) -> str:
    if key not in value:
        if default is not None:
            return default
        _fail(path, f"missing required key {key!r}")
    found = value[key]
    if not isinstance(found, str):
        _fail(f"{path}.{key}",
              f"must be a string, got {type(found).__name__}")
    return found


def dag_from_document(document: Any, functions: Sequence[FunctionSpec] = (),
                      path: str = "dag") -> DagSpec:
    """Parse + validate a DAG JSON document; bind *functions* if given."""
    if not isinstance(document, Mapping):
        _fail(path, f"must be an object, got {type(document).__name__}")
    _require_keys(document, _DOC_KEYS, path)
    name = _require_str(document, "name", path)
    entry = _require_str(document, "entry", path)
    description = _require_str(document, "description", path, default="")
    guest_hops = document.get("guest_hops", False)
    if not isinstance(guest_hops, bool):
        _fail(f"{path}.guest_hops",
              f"must be a boolean, got {type(guest_hops).__name__}")
    raw_stages = document.get("stages")
    if not isinstance(raw_stages, list) or not raw_stages:
        _fail(f"{path}.stages", "must be a non-empty array")
    stages: List[DagStage] = []
    for index, raw in enumerate(raw_stages):
        where = f"{path}.stages[{index}]"
        if not isinstance(raw, Mapping):
            _fail(where, f"must be an object, got {type(raw).__name__}")
        _require_keys(raw, _STAGE_KEYS, where)
        stages.append(DagStage(
            name=_require_str(raw, "name", where),
            function=_require_str(raw, "function", where)))
    raw_edges = document.get("edges", [])
    if not isinstance(raw_edges, list):
        _fail(f"{path}.edges", "must be an array")
    edges: List[DagEdge] = []
    for index, raw in enumerate(raw_edges):
        where = f"{path}.edges[{index}]"
        if not isinstance(raw, Mapping):
            _fail(where, f"must be an object, got {type(raw).__name__}")
        _require_keys(raw, _EDGE_KEYS, where)
        kind = _require_str(raw, "kind", where, default=EDGE_INVOKE)
        payload_kb = raw.get("payload_kb", 1.0)
        if not isinstance(payload_kb, (int, float)) \
                or isinstance(payload_kb, bool):
            _fail(f"{where}.payload_kb",
                  f"must be a number, got {type(payload_kb).__name__}")
        when_key, when_value = "", None
        if "when" in raw:
            when = raw["when"]
            if not isinstance(when, Mapping):
                _fail(f"{where}.when",
                      f"must be an object, got {type(when).__name__}")
            _require_keys(when, _WHEN_KEYS, f"{where}.when")
            when_key = _require_str(when, "key", f"{where}.when")
            if "equals" not in when:
                _fail(f"{where}.when", "missing required key 'equals'")
            when_value = when["equals"]
        edges.append(DagEdge(
            src=_require_str(raw, "from", where),
            dst=_require_str(raw, "to", where),
            kind=kind,
            database=_require_str(raw, "database", where, default=""),
            payload_kb=float(payload_kb),
            when_key=when_key, when_value=when_value))
    return validate_dag(DagSpec(
        name=name, entry=entry, stages=tuple(stages), edges=tuple(edges),
        functions=tuple(functions), guest_hops=guest_hops,
        description=description), path=path)


def dag_to_document(spec: DagSpec) -> Dict[str, Any]:
    """The JSON document form of *spec* (round-trips through
    :func:`dag_from_document`, modulo function bindings)."""
    stages = [{"name": stage.name, "function": stage.function}
              for stage in spec.stages]
    edges: List[Dict[str, Any]] = []
    for edge in spec.edges:
        raw: Dict[str, Any] = {"from": edge.src, "to": edge.dst,
                               "kind": edge.kind}
        if edge.kind == EDGE_TRIGGER:
            raw["database"] = edge.database
        else:
            raw["payload_kb"] = edge.payload_kb
        if edge.when_key:
            raw["when"] = {"key": edge.when_key, "equals": edge.when_value}
        edges.append(raw)
    document: Dict[str, Any] = {
        "name": spec.name, "entry": spec.entry, "stages": stages,
        "edges": edges}
    if spec.guest_hops:
        document["guest_hops"] = True
    if spec.description:
        document["description"] = spec.description
    return document


def bind_functions(spec: DagSpec,
                   functions: Sequence[FunctionSpec]) -> DagSpec:
    """*spec* with *functions* attached (re-validated)."""
    return validate_dag(replace(spec, functions=tuple(functions)))
