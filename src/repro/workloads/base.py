"""Workload definitions: what a serverless function *is* in this repo.

A :class:`FunctionSpec` carries everything every platform needs to install
and invoke a function:

* its **source code** (a real string — the Fireworks annotator transforms
  it; Figure 3);
* its **app** (the loadable unit, with per-guest-function JIT properties);
* its **program factory** (payload -> op stream the runtime executes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import PlatformError
from repro.runtime.interpreter import AppCode
from repro.runtime.ops import Program

ProgramFactory = Callable[[Dict[str, Any]], Program]


@dataclass(frozen=True)
class FunctionSpec:
    """One deployable serverless function."""

    name: str
    language: str               # "nodejs" | "python"
    app: AppCode
    make_program: ProgramFactory
    source: str = ""            # the user-provided handler source code
    description: str = ""
    benchmark_suite: str = ""   # "faasdom" | "serverlessbench" | ""

    def program(self, payload: Optional[Dict[str, Any]] = None) -> Program:
        """The op stream this function executes for *payload*."""
        return self.make_program(payload or {})

    def __post_init__(self) -> None:
        if self.language not in ("nodejs", "python", "dotnet"):
            raise PlatformError(f"unsupported language {self.language!r}")
        if self.app.language != self.language:
            raise PlatformError(
                f"app language {self.app.language!r} != spec language "
                f"{self.language!r}")


@dataclass(frozen=True)
class ChainSpec:
    """A real-world application: a named chain of functions (Fig 8)."""

    name: str
    entry: str                        # first function invoked by the user
    functions: Tuple[FunctionSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def function(self, name: str) -> FunctionSpec:
        """Look up a chain member by name; errors if absent."""
        for spec in self.functions:
            if spec.name == name:
                return spec
        raise PlatformError(f"chain {self.name!r} has no function {name!r}")
