"""Database substrate: the CouchDB-like document store with change feeds."""

from repro.db.couchdb import (Change, CouchDatabase, CouchServer, DbLatency,
                              Document)

__all__ = ["Change", "CouchDatabase", "CouchServer", "DbLatency", "Document"]
