"""CouchDB substrate: a revisioned document store with a change feed.

The ServerlessBench applications use CouchDB (§5.3): Alexa's reminder skill
reads/writes schedules, and the data-analysis app's *analysis chain is
triggered when the database is updated* (the dashed box of Fig 8(b)) — that
trigger is the change feed here.

Semantics modeled after CouchDB's MVCC: every write must carry the current
revision or it conflicts; reads return the latest revision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DatabaseError, DocumentConflictError


@dataclass(frozen=True)
class DbLatency:
    """Server-side cost of one database operation (ms)."""

    get_ms: float = 1.2
    put_ms: float = 2.4
    per_kb_ms: float = 0.02

    def get_cost(self, kb: float) -> float:
        """Server-side cost of reading a *kb*-sized document (ms)."""
        return self.get_ms + kb * self.per_kb_ms

    def put_cost(self, kb: float) -> float:
        """Server-side cost of writing a *kb*-sized document (ms)."""
        return self.put_ms + kb * self.per_kb_ms


@dataclass
class Document:
    """A stored document with CouchDB-style revision tracking."""

    doc_id: str
    rev: int
    body: Dict[str, Any]
    size_kb: float


@dataclass(frozen=True)
class Change:
    """One entry in the change feed."""

    seq: int
    doc_id: str
    rev: int
    deleted: bool = False


ChangeListener = Callable[["CouchDatabase", Change], None]


class CouchDatabase:
    """One database: documents + a monotonically increasing change feed."""

    def __init__(self, name: str, latency: Optional[DbLatency] = None) -> None:
        self.name = name
        self.latency = latency or DbLatency()
        self._docs: Dict[str, Document] = {}
        self._changes: List[Change] = []
        self._listeners: List[ChangeListener] = []

    # -- document API -----------------------------------------------------------
    def put(self, doc_id: str, body: Dict[str, Any], rev: Optional[int] = None,
            size_kb: float = 1.0) -> Document:
        """Insert or update a document.  Updates must carry the current rev."""
        existing = self._docs.get(doc_id)
        if existing is not None:
            if rev != existing.rev:
                raise DocumentConflictError(
                    f"{self.name}/{doc_id}: rev {rev} is stale "
                    f"(current {existing.rev})")
            document = Document(doc_id, existing.rev + 1, dict(body), size_kb)
        else:
            if rev not in (None, 0):
                raise DocumentConflictError(
                    f"{self.name}/{doc_id}: new document with rev {rev}")
            document = Document(doc_id, 1, dict(body), size_kb)
        self._docs[doc_id] = document
        self._emit(Change(len(self._changes) + 1, doc_id, document.rev))
        return document

    def get(self, doc_id: str) -> Document:
        """Fetch a document; DatabaseError if absent."""
        if doc_id not in self._docs:
            raise DatabaseError(f"{self.name}/{doc_id}: not found")
        return self._docs[doc_id]

    def delete(self, doc_id: str, rev: int) -> None:
        """Delete a document; the revision must be current."""
        document = self.get(doc_id)
        if document.rev != rev:
            raise DocumentConflictError(
                f"{self.name}/{doc_id}: rev {rev} is stale "
                f"(current {document.rev})")
        del self._docs[doc_id]
        self._emit(Change(len(self._changes) + 1, doc_id, rev + 1,
                          deleted=True))

    def contains(self, doc_id: str) -> bool:
        """Whether the document exists."""
        return doc_id in self._docs

    def all_docs(self) -> List[Document]:
        """Every document, ordered by id."""
        return sorted(self._docs.values(), key=lambda d: d.doc_id)

    def __len__(self) -> int:
        return len(self._docs)

    # -- change feed --------------------------------------------------------------
    def changes_since(self, seq: int) -> List[Change]:
        """All changes with sequence number > *seq*."""
        return [change for change in self._changes if change.seq > seq]

    @property
    def last_seq(self) -> int:
        return len(self._changes)

    def subscribe(self, listener: ChangeListener) -> None:
        """Register a continuous-changes listener (the platform trigger)."""
        self._listeners.append(listener)

    def _emit(self, change: Change) -> None:
        self._changes.append(change)
        for listener in list(self._listeners):
            listener(self, change)


class CouchServer:
    """A CouchDB instance hosting named databases."""

    def __init__(self, latency: Optional[DbLatency] = None) -> None:
        self.latency = latency or DbLatency()
        self._databases: Dict[str, CouchDatabase] = {}

    def database(self, name: str) -> CouchDatabase:
        """Get-or-create a database (CouchDB's PUT /dbname idiom)."""
        if name not in self._databases:
            self._databases[name] = CouchDatabase(name, self.latency)
        return self._databases[name]

    def has_database(self, name: str) -> bool:
        """Whether the named database exists."""
        return name in self._databases

    def database_names(self):
        """Names of all databases on this server."""
        return tuple(self._databases)
