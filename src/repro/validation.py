"""Validation of calibrated parameters.

Ablation users override constants in :class:`CalibratedParameters`; this
module checks that an override still describes a *possible* system (no
negative latencies, orderings the model relies on).  Violations come back
as a list of human-readable problems — empty means valid.

``validate_or_raise`` is the strict entry point used by ``python -m repro
validate``.
"""

from __future__ import annotations

from typing import List

from repro.config import CalibratedParameters
from repro.errors import ReproError


class InvalidParametersError(ReproError):
    """The parameter bundle fails validation; see ``problems``."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__(
            f"{len(problems)} parameter problem(s): " + "; ".join(problems))
        self.problems = problems


def validate(params: CalibratedParameters) -> List[str]:
    """All problems with *params* (empty list = valid)."""
    problems: List[str] = []

    # -- host ------------------------------------------------------------------
    host = params.host
    if host.cores < 1:
        problems.append(f"host.cores must be >= 1, got {host.cores}")
    if host.dram_mb <= 0:
        problems.append(f"host.dram_mb must be > 0, got {host.dram_mb}")
    if not 0.0 < host.swappiness_threshold <= 1.0:
        problems.append(
            "host.swappiness_threshold must be in (0, 1], got "
            f"{host.swappiness_threshold}")

    # -- sandbox latencies -------------------------------------------------------
    for mechanism, latency in params.sandbox_latency.items():
        for field_name in ("create_ms", "os_boot_ms", "init_ms", "pause_ms",
                           "resume_paused_ms", "teardown_ms",
                           "disk_io_base_ms", "disk_io_per_kb_ms",
                           "net_rtt_ms", "syscall_overhead_ms"):
            value = getattr(latency, field_name)
            if value < 0:
                problems.append(
                    f"sandbox_latency[{mechanism}].{field_name} is "
                    f"negative ({value})")

    # -- runtimes -------------------------------------------------------------------
    for language, runtime in params.runtimes.items():
        if runtime.interp_units_per_ms <= 0:
            problems.append(
                f"runtimes[{language}].interp_units_per_ms must be > 0")
        if runtime.launch_ms < 0 or runtime.app_load_base_ms < 0:
            problems.append(
                f"runtimes[{language}] has a negative launch/load time")
        if runtime.jit_compile_ms_per_kunit < 0:
            problems.append(
                f"runtimes[{language}].jit_compile_ms_per_kunit is "
                "negative")
        if runtime.hotness_threshold_units < 0:
            problems.append(
                f"runtimes[{language}].hotness_threshold_units is "
                "negative")

    # -- memory layouts ----------------------------------------------------------------
    for language, layout in params.memory_layouts.items():
        for field_name in ("kernel_mb", "runtime_mb", "app_mb",
                           "heap_after_load_mb", "jit_code_mb",
                           "exec_extra_anon_mb",
                           "steady_state_extra_anon_mb",
                           "vmm_overhead_mb"):
            if getattr(layout, field_name) < 0:
                problems.append(
                    f"memory_layouts[{language}].{field_name} is negative")
        for field_name in ("exec_dirty_heap_fraction",
                           "exec_dirty_jit_fraction",
                           "exec_dirty_text_fraction",
                           "steady_state_dirty_fraction",
                           "snapshot_working_set_mb_fraction"):
            value = getattr(layout, field_name)
            if not 0.0 <= value <= 1.0:
                problems.append(
                    f"memory_layouts[{language}].{field_name} must be in "
                    f"[0, 1], got {value}")
        if layout.guest_total_mb <= 0:
            problems.append(
                f"memory_layouts[{language}] has an empty guest image")
        if layout.guest_total_mb > params.microvm.mem_mb:
            problems.append(
                f"memory_layouts[{language}].guest_total_mb "
                f"({layout.guest_total_mb}) exceeds the microVM size "
                f"({params.microvm.mem_mb} MB)")

    # -- snapshot machinery ---------------------------------------------------------
    snapshot = params.snapshot
    for field_name in ("create_base_ms", "create_per_mb_ms",
                       "restore_base_ms", "restore_per_working_mb_ms",
                       "restore_per_working_mb_cold_ms",
                       "prefetch_per_mb_ms"):
        if getattr(snapshot, field_name) < 0:
            problems.append(f"snapshot.{field_name} is negative")
    if snapshot.store_capacity_images < 1:
        problems.append("snapshot.store_capacity_images must be >= 1")
    if snapshot.restore_per_working_mb_cold_ms < \
            snapshot.restore_per_working_mb_ms:
        problems.append(
            "cold-cache demand paging cannot be faster than warm "
            "(restore_per_working_mb_cold_ms < restore_per_working_mb_ms)")

    # -- model-level orderings the figures rely on --------------------------------
    if ("container" in params.sandbox_latency
            and "gvisor" in params.sandbox_latency):
        container = params.sandbox_latency["container"]
        gvisor = params.sandbox_latency["gvisor"]
        if (gvisor.disk_io_base_ms + gvisor.syscall_overhead_ms
                <= container.disk_io_base_ms):
            problems.append(
                "gVisor's per-I/O cost must exceed the container's "
                "(Sentry/Gofer interposition, §5.2.1)")

    return problems


def validate_or_raise(params: CalibratedParameters) -> None:
    """Raise :class:`InvalidParametersError` when *params* is invalid."""
    problems = validate(params)
    if problems:
        raise InvalidParametersError(problems)
