"""First-class hosts and the cluster the control plane schedules over.

Figure 1's controller relays each request "to one of the backend servers".
A :class:`Host` is one such server: its own physical memory, network
bridge, optional core pool, warm pool, and snapshot store.  A
:class:`Cluster` is the controller's set of hosts plus the placement
policy that picks one per invocation (:mod:`repro.platforms.scheduler`).

The paper's evaluation runs on one host, so ``Cluster(n_hosts=1)`` is the
default everywhere and reproduces every figure unchanged; multi-host
clusters make placement a real decision — warm sandboxes and snapshot
images live *on a specific host*, and the ``snapshot-locality`` policy
exists to keep requests where that state is hot (REAP-style snapshots are
only cheap when the image is already local).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.config import CalibratedParameters
from repro.errors import PlatformError
from repro.host.cpu import HostCpu
from repro.mem.host_memory import HostMemory
from repro.net.bridge import HostBridge
from repro.platforms.pooling import WarmPool
from repro.platforms.scheduler import POLICY_HASH, home_index
from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class Host:
    """One backend server: memory, network, cores, warm pool, snapshots.

    ``capacity`` bounds concurrent invocations on the host (``None`` means
    unbounded — the single-host default, where the core pool is the real
    limiter).  The ``node_id``/``active``/``has_room`` surface is the
    scheduler's node interface (shared with
    :class:`repro.platforms.scheduler.InvokerNode`).
    """

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_id: int = 0, capacity: Optional[int] = None,
                 cores: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise PlatformError(
                f"host{host_id} capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.params = params
        self.host_id = host_id
        self.memory = HostMemory(params.host)
        self.bridge = HostBridge()
        self.cpu: Optional[HostCpu] = (
            HostCpu(sim, cores=cores) if cores is not None else None)
        self.pool = WarmPool()
        self.store = SnapshotStore(
            BlockDevice(params.host.disk_gb * 1024.0,
                        name=f"host{host_id}-ssd"),
            capacity_images=params.snapshot.store_capacity_images)
        self.capacity = capacity
        self.active = 0
        self.assigned_total = 0
        self.per_function: Dict[str, int] = {}
        # Chaos state (repro.chaos): a down host is skipped by every
        # placement policy via has_room; degradation adds latency without
        # taking the host out of rotation.
        self.down = False
        self.down_since_ms: Optional[float] = None
        self.degraded_until_ms = float("-inf")
        self.degraded_penalty_ms = 0.0
        # Serving layer (repro.autoscale): the bounded admission queue
        # ahead of the capacity gate.  Created only when
        # params.autoscale.enabled — None keeps the legacy invoke path
        # byte-identical.
        self.admission = None
        if params.autoscale.enabled:
            from repro.autoscale.admission import AdmissionQueue
            self.admission = AdmissionQueue(sim, self, params.autoscale)

    # -- scheduler node interface ----------------------------------------------
    @property
    def node_id(self) -> int:
        return self.host_id

    @property
    def has_room(self) -> bool:
        if self.down:
            return False
        return self.capacity is None or self.active < self.capacity

    # -- chaos state (repro.chaos drives these) --------------------------------
    def mark_down(self, now_ms: float) -> None:
        """Crash the host: placement skips it until :meth:`mark_up`.

        Queued admission waiters are flushed with ``HostDownError`` so
        their invoke processes retry/fail over — no queue slot leaks.
        """
        self.down = True
        self.down_since_ms = now_ms
        if self.admission is not None:
            self.admission.flush_down()

    def mark_up(self) -> None:
        """Recover a crashed host (its pool/store were lost at crash)."""
        self.down = False
        self.down_since_ms = None

    def degrade(self, until_ms: float, penalty_ms: float) -> None:
        """Slow the host down: invocations placed here before *until_ms*
        pay an extra *penalty_ms* of dispatch latency."""
        self.degraded_until_ms = until_ms
        self.degraded_penalty_ms = penalty_ms

    def degradation_penalty_ms(self, now_ms: float) -> float:
        """The extra dispatch latency this host charges at *now_ms*."""
        if now_ms < self.degraded_until_ms:
            return self.degraded_penalty_ms
        return 0.0

    def assign(self, function: str) -> None:
        """Count one in-flight invocation onto this host; errors when full."""
        if not self.has_room:
            raise PlatformError(
                f"host{self.host_id} over capacity "
                f"({self.active}/{self.capacity})")
        self.active += 1
        self.assigned_total += 1
        self.per_function[function] = self.per_function.get(function, 0) + 1

    def release(self) -> None:
        """Return a slot after the invocation finished."""
        if self.active <= 0:
            raise PlatformError(f"host{self.host_id} released below zero")
        self.active -= 1

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (f"<Host {self.host_id} active={self.active}/{cap} "
                f"mem={self.memory.used_mb:.0f}MiB>")


class Cluster:
    """The controller's hosts plus the placement policy over them."""

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 n_hosts: int = 1, policy=POLICY_HASH,
                 capacity_per_host: Optional[int] = None,
                 cores_per_host: Optional[int] = None) -> None:
        if n_hosts < 1:
            raise PlatformError(f"need >= 1 host, got {n_hosts}")
        # *policy* may be a registered name, a DSL document, or a ready
        # PlacementPolicy; unknown names fail here, at config-parse time,
        # with the list of registered names (ValidationError).
        from repro.policy import resolve_placement
        self.placement = resolve_placement(policy)
        self.sim = sim
        self.params = params
        self.policy = self.placement.name
        self.policy_source = self.placement.source
        self.hosts: List[Host] = [
            Host(sim, params, host_id=index, capacity=capacity_per_host,
                 cores=cores_per_host)
            for index in range(n_hosts)]
        self._rr_next = 0
        self.placements = 0

    # -- lookup -----------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def host(self, host_id: int) -> Host:
        """The host with *host_id*; errors on unknown ids."""
        if not 0 <= host_id < len(self.hosts):
            raise PlatformError(f"no host {host_id} in a "
                                f"{len(self.hosts)}-host cluster")
        return self.hosts[host_id]

    def home_host(self, function: str) -> Host:
        """The function's home host (stable hash — install seeds it)."""
        return self.hosts[home_index(function, len(self.hosts))]

    # -- placement --------------------------------------------------------------
    def place(self, function: str,
              locality: Optional[Callable[[Host], bool]] = None) -> Host:
        """Choose (and assign to) a host for one invocation.

        *locality* marks hosts where the function's state is already
        resident (warm sandbox, snapshot image); only the
        ``snapshot-locality`` policy consults it.  The caller must pair
        every ``place`` with a :meth:`finish`.
        """
        host, self._rr_next = self.placement.select(
            self.hosts, function, self._rr_next, locality)
        host.assign(function)
        self.placements += 1
        return host

    def place_queued(self, function: str,
                     locality: Optional[Callable[[Host], bool]] = None
                     ) -> Host:
        """Choose a host for *queued* admission — without assigning.

        The serving-layer variant of :meth:`place`: when some host has
        room the normal policy picks it; when every live host is full the
        request is not bounced (``NoHostAvailableError``) but directed at
        the live host with the shortest admission queue, where it will
        wait or be shed.  The admission queue performs the ``assign``.
        """
        from repro.errors import NoHostAvailableError
        try:
            host, self._rr_next = self.placement.select(
                self.hosts, function, self._rr_next, locality)
        except NoHostAvailableError:
            live = [h for h in self.hosts if not h.down]
            if not live:
                raise
            host = min(live, key=lambda h: (
                h.admission.depth if h.admission is not None else 0,
                h.host_id))
        self.placements += 1
        return host

    def finish(self, host: Host) -> None:
        """Release the slot claimed by :meth:`place` (or by admission).

        With a serving layer attached, a freed slot is handed to the
        host's next queued waiter before anyone else can take it.
        """
        host.release()
        if host.admission is not None:
            host.admission.on_release()

    # -- stats ------------------------------------------------------------------
    def total_active(self) -> int:
        """Invocations currently in flight across all hosts."""
        return sum(host.active for host in self.hosts)

    def load_spread(self) -> int:
        """Max-min assigned_total across hosts (fairness measure)."""
        totals = [host.assigned_total for host in self.hosts]
        return max(totals) - min(totals)

    def __repr__(self) -> str:
        return (f"<Cluster {len(self.hosts)} hosts policy={self.policy} "
                f"active={self.total_active()}>")
