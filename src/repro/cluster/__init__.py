"""Cluster of hosts: the backend servers behind Figure 1's controller."""

from repro.cluster.host import Cluster, Host

__all__ = ["Cluster", "Host"]
