"""Signal catalogs: the typed inputs a policy document may read.

A policy document never touches a ``Host`` or a histogram directly — it
reads *signals*, named scalar views over the state each decision layer
already exposes (queue depth, arrival histograms, host liveness, snapshot
locality, warm-pool levels).  Each decision domain declares its catalog as
a :class:`SignalSet`; the DSL compiler (:mod:`repro.policy.dsl`) validates
every signal reference against it at load time, so an unknown or
out-of-scope signal is a :class:`~repro.errors.ValidationError` with a
path into the document, never a ``KeyError`` deep inside placement.

Scopes keep references honest about *when* a signal has a value:

* placement — ``aggregate`` signals describe the whole candidate set and
  may be read anywhere; ``node`` signals describe one candidate host and
  may only be read inside a ``choose`` leaf's ``score``/``where``;
* keepalive — ``function`` signals describe one function's arrival
  history;
* autoscale — ``candidate`` signals describe one ``(host, function)``
  pair; some exist only under one candidate enumeration mode
  (``queue-state`` vs ``home-hosts``), declared via ``modes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

SCOPE_AGGREGATE = "aggregate"
SCOPE_NODE = "node"
SCOPE_FUNCTION = "function"
SCOPE_CANDIDATE = "candidate"

#: Autoscale candidate enumeration modes (see :mod:`repro.policy.autoscale`).
CANDIDATES_QUEUE_STATE = "queue-state"
CANDIDATES_HOME_HOSTS = "home-hosts"
CANDIDATE_MODES = (CANDIDATES_QUEUE_STATE, CANDIDATES_HOME_HOSTS)


@dataclass(frozen=True)
class SignalSpec:
    """One named signal: its scope, reference arguments, and meaning."""

    name: str
    scope: str
    doc: str
    #: Accepted reference arguments (e.g. ``q`` for a percentile signal).
    args: Tuple[str, ...] = ()
    #: Arguments that must be present in every reference.
    required_args: Tuple[str, ...] = ()
    #: Autoscale only: candidate modes providing this signal (empty =
    #: available under every mode).
    modes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SignalSet:
    """The declared signal catalog of one decision domain."""

    domain: str
    specs: Mapping[str, SignalSpec] = field(default_factory=dict)

    def get(self, name: str) -> SignalSpec:
        """The spec for *name* (``KeyError`` if undeclared — callers
        translate into a :class:`~repro.errors.ValidationError`)."""
        return self.specs[name]

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def names(self) -> Tuple[str, ...]:
        """Every declared signal name, in declaration order."""
        return tuple(self.specs)


def _signal_set(domain: str, *specs: SignalSpec) -> SignalSet:
    mapping: Dict[str, SignalSpec] = {spec.name: spec for spec in specs}
    return SignalSet(domain=domain, specs=mapping)


#: Placement: choose one host for one invocation.
PLACEMENT_SIGNALS = _signal_set(
    "placement",
    SignalSpec("n_nodes", SCOPE_AGGREGATE,
               "how many hosts the cluster schedules over"),
    SignalSpec("any_room", SCOPE_AGGREGATE,
               "1 if at least one live host has a free slot, else 0"),
    SignalSpec("any_local_with_room", SCOPE_AGGREGATE,
               "1 if some host with room already holds the function's "
               "state (warm sandbox or snapshot image), else 0"),
    SignalSpec("node_id", SCOPE_NODE, "the candidate host's id"),
    SignalSpec("active", SCOPE_NODE,
               "invocations currently in flight on the candidate"),
    SignalSpec("has_room", SCOPE_NODE,
               "1 if the candidate is live and below capacity, else 0"),
    SignalSpec("capacity_left", SCOPE_NODE,
               "free slots on the candidate (inf when unbounded)"),
    SignalSpec("rr_offset", SCOPE_NODE,
               "the candidate's distance after the round-robin cursor; "
               "reading it advances the cursor past the chosen host"),
    SignalSpec("home_distance", SCOPE_NODE,
               "the candidate's linear-probe distance from the "
               "function's hash home"),
    SignalSpec("is_home", SCOPE_NODE,
               "1 if the candidate is the function's hash home, else 0"),
    SignalSpec("local_state", SCOPE_NODE,
               "1 if the function's state is already resident on the "
               "candidate, else 0"),
    SignalSpec("fn_affinity", SCOPE_NODE,
               "how many times the candidate has been assigned this "
               "function so far (chain stages score their predecessors' "
               "hosts high through this)"),
    SignalSpec("any_fn_affinity", SCOPE_AGGREGATE,
               "1 if some host with room has served this function "
               "before, else 0"),
)

#: Keep-alive: prescribe an idle window for one function's warm workers.
KEEPALIVE_SIGNALS = _signal_set(
    "keepalive",
    SignalSpec("observed_gaps", SCOPE_FUNCTION,
               "how many inter-arrival gaps have been observed"),
    SignalSpec("gap_percentile_ms", SCOPE_FUNCTION,
               "the q-th percentile of observed inter-arrival gaps "
               "(inf until any gap is observed)",
               args=("q",), required_args=("q",)),
)

#: Autoscale: a warm-worker target for one (host, function) candidate.
AUTOSCALE_SIGNALS = _signal_set(
    "autoscale",
    SignalSpec("queue_depth", SCOPE_CANDIDATE,
               "the candidate host's admission-queue depth"),
    SignalSpec("pressured", SCOPE_CANDIDATE,
               "1 if the function is waiting in the host's "
               "at-threshold admission queue this tick, else 0",
               modes=(CANDIDATES_QUEUE_STATE,)),
    SignalSpec("prev_level", SCOPE_CANDIDATE,
               "the candidate's warm target carried from earlier ticks",
               modes=(CANDIDATES_QUEUE_STATE,)),
    SignalSpec("hold_left", SCOPE_CANDIDATE,
               "scale-down hysteresis ticks left after this "
               "pressure-free tick",
               modes=(CANDIDATES_QUEUE_STATE,)),
    SignalSpec("reactive_step", SCOPE_CANDIDATE,
               "the configured per-tick ramp step"),
    SignalSpec("max_warm", SCOPE_CANDIDATE,
               "the configured per-function warm-worker cap"),
    SignalSpec("horizon_ms", SCOPE_CANDIDATE,
               "the configured prediction horizon"),
    SignalSpec("has_history", SCOPE_CANDIDATE,
               "1 once the function has an arrival and enough observed "
               "gaps for a prediction, else 0",
               modes=(CANDIDATES_HOME_HOSTS,)),
    SignalSpec("predicted_gap_ms", SCOPE_CANDIDATE,
               "the predicted inter-arrival gap (inf without history)",
               modes=(CANDIDATES_HOME_HOSTS,)),
    SignalSpec("expected_arrivals_in_horizon", SCOPE_CANDIDATE,
               "max(1, floor(horizon / predicted gap)) when the gap "
               "fits the horizon, else 0",
               modes=(CANDIDATES_HOME_HOSTS,)),
    SignalSpec("predicted_within_horizon", SCOPE_CANDIDATE,
               "1 if the next predicted arrival lands inside the "
               "horizon, else 0",
               modes=(CANDIDATES_HOME_HOSTS,)),
)

#: Every domain's catalog, keyed by domain name.
SIGNAL_SETS: Dict[str, SignalSet] = {
    "placement": PLACEMENT_SIGNALS,
    "keepalive": KEEPALIVE_SIGNALS,
    "autoscale": AUTOSCALE_SIGNALS,
}

DOMAINS = tuple(SIGNAL_SETS)
