"""repro.policy — the unified declarative policy engine.

One subsystem behind all three decision layers:

* **placement** — which host serves an invocation
  (:class:`~repro.policy.placement.PlacementPolicy` behind
  ``Cluster.place()``);
* **keepalive** — how long idle warm workers linger
  (:class:`~repro.platforms.keepalive.KeepAlivePolicy`, with
  :class:`~repro.policy.keepalive.DslKeepAlivePolicy` adapting
  documents);
* **autoscale** — per-tick warm-pool targets
  (:class:`~repro.policy.autoscale.AutoscalePolicy` behind
  ``WarmPoolAutoscaler``).

Policies come in two sources sharing one
:class:`~repro.policy.registry.PolicyRegistry` namespace: ``builtin``
Python classes (the default path — golden figures never change) and
``dsl`` decision-tree JSON documents compiled by
:func:`~repro.policy.dsl.compile_policy` over the typed signal catalogs
in :mod:`repro.policy.signals`.  ``scenarios/policies/`` ships each
built-in re-expressed as a document; the differential suite proves them
decision-identical, and ``repro search`` mutates documents to map the
latency/memory/shed Pareto frontier.
"""

from repro.policy.autoscale import (
    AutoscalePolicy,
    AutoscaleView,
    DslAutoscalePolicy,
    NoTargets,
    PredictiveTargets,
    ReactiveTargets,
)
from repro.policy.dsl import (
    MAX_DEPTH,
    CompiledPolicy,
    compile_policy,
)
from repro.policy.keepalive import DslKeepAlivePolicy
from repro.policy.placement import (
    SOURCE_BUILTIN,
    SOURCE_DSL,
    BuiltinPlacementPolicy,
    DslPlacementPolicy,
    PlacementPolicy,
)
from repro.policy.registry import (
    PolicyEntry,
    PolicyRegistry,
    default_registry,
    load_policy_dir,
    resolve_autoscale,
    resolve_keepalive,
    resolve_placement,
    shipped_policy_dir,
)
from repro.policy.signals import (
    AUTOSCALE_SIGNALS,
    KEEPALIVE_SIGNALS,
    PLACEMENT_SIGNALS,
    SIGNAL_SETS,
    SignalSet,
    SignalSpec,
)

__all__ = [
    "AUTOSCALE_SIGNALS",
    "AutoscalePolicy",
    "AutoscaleView",
    "BuiltinPlacementPolicy",
    "CompiledPolicy",
    "DslAutoscalePolicy",
    "DslKeepAlivePolicy",
    "DslPlacementPolicy",
    "KEEPALIVE_SIGNALS",
    "MAX_DEPTH",
    "NoTargets",
    "PLACEMENT_SIGNALS",
    "PlacementPolicy",
    "PolicyEntry",
    "PolicyRegistry",
    "PredictiveTargets",
    "ReactiveTargets",
    "SIGNAL_SETS",
    "SOURCE_BUILTIN",
    "SOURCE_DSL",
    "SignalSet",
    "SignalSpec",
    "compile_policy",
    "default_registry",
    "load_policy_dir",
    "resolve_autoscale",
    "resolve_keepalive",
    "resolve_placement",
    "shipped_policy_dir",
]
