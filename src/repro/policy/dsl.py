"""The policy decision-tree DSL and its load-time compiler.

A policy *document* is plain JSON: a name, a decision domain, and a
decision ``tree`` of typed conditions over the domain's declared
:class:`~repro.policy.signals.SignalSet`.  :func:`compile_policy` turns a
document into a :class:`CompiledPolicy` — and does **all** validation up
front: unknown keys, unknown/out-of-scope signals, malformed operators,
empty score lists, over-deep (or self-referential) trees every produce a
:class:`~repro.errors.ValidationError` carrying a JSON-path into the
document (``$.tree.then.score[1]: unknown signal 'foo' ...``), never a
deep stack trace at decision time.

Grammar (all of it)::

    document  := {"name": str, "domain": "placement"|"keepalive"|"autoscale",
                  "description"?: str,
                  "candidates"?: "queue-state"|"home-hosts",   # autoscale only
                  "tree": node}
    node      := {"if": cond, "then": node, "else": node}      # condition
               | {"value": expr}                               # scalar leaf
               | {"choose": "argmin"|"argmax",                 # choose leaf
                  "score": [term, ...], "where"?: [cond, ...]}
    cond      := {"signal": ref, "op": "<"|"<="|">"|">="|"=="|"!=",
                  "value": number | {"signal": ref}}
    ref       := str | {"name": str, <arg>: number, ...}
    expr      := number | {"signal": ref}
               | {"sum": [term, ...], "clamp"?: [lo, hi]}
    term      := number | {"signal": ref, "weight"?: number}
               | {"const": number, "weight"?: number}

Placement trees must end in ``choose`` leaves (they pick a host) and may
read node-scoped signals only inside a leaf's ``score``/``where``;
keep-alive and autoscale trees must end in ``value`` leaves (they yield a
number).  Which signal names exist — and, for autoscale, which candidate
enumeration supplies them — comes from :mod:`repro.policy.signals`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ValidationError
from repro.policy.signals import (
    CANDIDATE_MODES,
    DOMAINS,
    SCOPE_AGGREGATE,
    SCOPE_NODE,
    SIGNAL_SETS,
    SignalSet,
)

#: Hard ceiling on tree nesting; also terminates self-referential documents.
MAX_DEPTH = 32

#: Comparison operators a condition may use.
OPERATORS: Mapping[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

CHOOSE_ARGMIN = "argmin"
CHOOSE_ARGMAX = "argmax"

#: A resolver maps a compiled signal reference to its current value.
Resolver = Callable[["SignalRef"], float]


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


@dataclass(frozen=True)
class SignalRef:
    """A compiled reference to one declared signal (plus fixed args)."""

    name: str
    args: Tuple[Tuple[str, float], ...] = ()

    def arg(self, key: str) -> float:
        """The value of reference argument *key* (must exist post-compile)."""
        for name, value in self.args:
            if name == key:
                return value
        raise KeyError(key)


@dataclass(frozen=True)
class Term:
    """One weighted addend of a score or sum expression."""

    weight: float
    ref: Optional[SignalRef] = None
    const: float = 0.0

    def value(self, resolve: Resolver) -> float:
        """This term's contribution under *resolve*."""
        base = resolve(self.ref) if self.ref is not None else self.const
        return self.weight * base


@dataclass(frozen=True)
class SumExpr:
    """A weighted sum of terms, optionally clamped to ``[lo, hi]``."""

    terms: Tuple[Term, ...]
    clamp: Optional[Tuple[float, float]] = None

    def value(self, resolve: Resolver) -> float:
        """Evaluate the sum (then clamp) under *resolve*."""
        total = 0.0
        for term in self.terms:
            total += term.value(resolve)
        if self.clamp is not None:
            lo, hi = self.clamp
            total = min(hi, max(lo, total))
        return total


@dataclass(frozen=True)
class Condition:
    """A typed comparison ``signal <op> (number | signal)``."""

    lhs: SignalRef
    op: str
    rhs_const: Optional[float] = None
    rhs_ref: Optional[SignalRef] = None

    def holds(self, resolve: Resolver) -> bool:
        """Whether the comparison is true under *resolve*."""
        left = resolve(self.lhs)
        right = (resolve(self.rhs_ref) if self.rhs_ref is not None
                 else self.rhs_const)
        return OPERATORS[self.op](left, right)


@dataclass(frozen=True)
class ConditionNode:
    """An interior ``if``/``then``/``else`` node."""

    condition: Condition
    then: "Node"
    otherwise: "Node"


@dataclass(frozen=True)
class ValueLeaf:
    """A scalar leaf (keep-alive / autoscale trees)."""

    expr: SumExpr

    def value(self, resolve: Resolver) -> float:
        """The leaf's number under *resolve*."""
        return self.expr.value(resolve)


@dataclass(frozen=True)
class ChooseLeaf:
    """An argmin/argmax-over-candidates leaf (placement trees)."""

    mode: str
    score: Tuple[Term, ...]
    where: Tuple[Condition, ...] = ()

    def admits(self, resolve: Resolver) -> bool:
        """Whether a candidate passes every ``where`` filter."""
        return all(cond.holds(resolve) for cond in self.where)

    def score_of(self, resolve: Resolver) -> float:
        """A candidate's score under *resolve*."""
        total = 0.0
        for term in self.score:
            total += term.value(resolve)
        return total


Node = Union[ConditionNode, ValueLeaf, ChooseLeaf]


@dataclass(frozen=True)
class CompiledPolicy:
    """A validated policy document, ready for a domain adapter to run."""

    name: str
    domain: str
    tree: Node
    description: str = ""
    #: Autoscale only: the candidate enumeration mode.
    candidates: Optional[str] = None
    #: The source document, kept verbatim for artifacts and hashing.
    document: Mapping[str, object] = field(default_factory=dict)


class _Compiler:
    """Single-document compile pass carrying the domain's signal rules."""

    def __init__(self, domain: str, signals: SignalSet,
                 candidates: Optional[str]) -> None:
        self.domain = domain
        self.signals = signals
        self.candidates = candidates

    # -- signal references -------------------------------------------------

    def ref(self, raw: object, path: str, *, node_scope: bool) -> SignalRef:
        """Compile a signal reference, enforcing scope and arguments."""
        if isinstance(raw, str):
            name, extra = raw, {}
        elif isinstance(raw, Mapping):
            if "name" not in raw:
                _fail(path, "signal reference object needs a 'name' key")
            name = raw["name"]
            extra = {k: v for k, v in raw.items() if k != "name"}
        else:
            _fail(path, "signal reference must be a string or an object "
                        "with a 'name'")
        if not isinstance(name, str):
            _fail(path, "signal name must be a string")
        if name not in self.signals:
            _fail(path, f"unknown signal {name!r} for domain "
                        f"{self.domain!r} (available: "
                        f"{', '.join(self.signals.names())})")
        spec = self.signals.get(name)
        if spec.scope == SCOPE_NODE and not node_scope:
            _fail(path, f"signal {name!r} is node-scoped and may only be "
                        "read inside a 'choose' leaf's score/where")
        if spec.modes and self.candidates not in spec.modes:
            _fail(path, f"signal {name!r} needs candidates mode "
                        f"{' or '.join(repr(m) for m in spec.modes)}, "
                        f"document declares {self.candidates!r}")
        for key in extra:
            if key not in spec.args:
                _fail(path, f"signal {name!r} takes no argument {key!r}")
        for key in spec.required_args:
            if key not in extra:
                _fail(path, f"signal {name!r} requires argument {key!r}")
        args = []
        for key in sorted(extra):
            value = extra[key]
            if not _is_number(value):
                _fail(path, f"argument {key!r} of signal {name!r} must be "
                            "a number")
            if key == "q" and not 0.0 < float(value) <= 1.0:
                _fail(path, f"argument 'q' of signal {name!r} must be in "
                            "(0, 1]")
            args.append((key, float(value)))
        return SignalRef(name=name, args=tuple(args))

    # -- scalar expressions ------------------------------------------------

    def term(self, raw: object, path: str, *, node_scope: bool) -> Term:
        """Compile one score/sum term."""
        if _is_number(raw):
            return Term(weight=1.0, const=float(raw))
        if not isinstance(raw, Mapping):
            _fail(path, "term must be a number, a {'signal': ...} object, "
                        "or a {'const': ...} object")
        weight = raw.get("weight", 1.0)
        if not _is_number(weight):
            _fail(path, "'weight' must be a number")
        has_signal = "signal" in raw
        has_const = "const" in raw
        if has_signal == has_const:
            _fail(path, "term needs exactly one of 'signal' or 'const'")
        allowed = {"weight", "signal"} if has_signal else {"weight", "const"}
        for key in raw:
            if key not in allowed:
                _fail(path, f"unknown term key {key!r}")
        if has_signal:
            ref = self.ref(raw["signal"], f"{path}.signal",
                           node_scope=node_scope)
            return Term(weight=float(weight), ref=ref)
        if not _is_number(raw["const"]):
            _fail(path, "'const' must be a number")
        return Term(weight=float(weight), const=float(raw["const"]))

    def expr(self, raw: object, path: str) -> SumExpr:
        """Compile a scalar expression (number, signal, or clamped sum)."""
        if _is_number(raw):
            return SumExpr(terms=(Term(weight=1.0, const=float(raw)),))
        if not isinstance(raw, Mapping):
            _fail(path, "expression must be a number, a {'signal': ...} "
                        "object, or a {'sum': [...]} object")
        if "signal" in raw:
            for key in raw:
                if key != "signal":
                    _fail(path, f"unknown expression key {key!r}")
            ref = self.ref(raw["signal"], f"{path}.signal", node_scope=False)
            return SumExpr(terms=(Term(weight=1.0, ref=ref),))
        if "sum" not in raw:
            _fail(path, "expression object needs a 'signal' or 'sum' key")
        for key in raw:
            if key not in ("sum", "clamp"):
                _fail(path, f"unknown expression key {key!r}")
        raw_terms = raw["sum"]
        if not isinstance(raw_terms, Sequence) or isinstance(raw_terms, str):
            _fail(path, "'sum' must be a list of terms")
        if not raw_terms:
            _fail(path, "'sum' must not be empty")
        terms = tuple(self.term(item, f"{path}.sum[{i}]", node_scope=False)
                      for i, item in enumerate(raw_terms))
        clamp: Optional[Tuple[float, float]] = None
        if "clamp" in raw:
            raw_clamp = raw["clamp"]
            if (not isinstance(raw_clamp, Sequence)
                    or isinstance(raw_clamp, str) or len(raw_clamp) != 2
                    or not all(_is_number(v) for v in raw_clamp)):
                _fail(f"{path}.clamp", "'clamp' must be [lo, hi] numbers")
            lo, hi = float(raw_clamp[0]), float(raw_clamp[1])
            if lo > hi:
                _fail(f"{path}.clamp", f"clamp lo {lo} exceeds hi {hi}")
            clamp = (lo, hi)
        return SumExpr(terms=terms, clamp=clamp)

    # -- conditions --------------------------------------------------------

    def condition(self, raw: object, path: str, *,
                  node_scope: bool) -> Condition:
        """Compile a typed comparison."""
        if not isinstance(raw, Mapping):
            _fail(path, "condition must be an object with 'signal', 'op', "
                        "and 'value' keys")
        for key in ("signal", "op", "value"):
            if key not in raw:
                _fail(path, f"condition is missing the {key!r} key")
        for key in raw:
            if key not in ("signal", "op", "value"):
                _fail(path, f"unknown condition key {key!r}")
        lhs = self.ref(raw["signal"], f"{path}.signal", node_scope=node_scope)
        op = raw["op"]
        if op not in OPERATORS:
            _fail(f"{path}.op", f"unknown operator {op!r} (expected one "
                                f"of {', '.join(OPERATORS)})")
        value = raw["value"]
        if _is_number(value):
            return Condition(lhs=lhs, op=op, rhs_const=float(value))
        if isinstance(value, Mapping) and set(value) == {"signal"}:
            rhs = self.ref(value["signal"], f"{path}.value.signal",
                           node_scope=node_scope)
            return Condition(lhs=lhs, op=op, rhs_ref=rhs)
        _fail(f"{path}.value", "comparison value must be a number or a "
                               "{'signal': ...} object")

    # -- nodes -------------------------------------------------------------

    def node(self, raw: object, path: str, depth: int) -> Node:
        """Compile one tree node (dispatching on its single shape key)."""
        if depth > MAX_DEPTH:
            _fail(path, f"tree deeper than {MAX_DEPTH} levels (is the "
                        "document self-referential?)")
        if not isinstance(raw, Mapping):
            _fail(path, "node must be an object ('if'/'value'/'choose')")
        shapes = [key for key in ("if", "value", "choose") if key in raw]
        if len(shapes) != 1:
            _fail(path, "node must have exactly one of 'if', 'value', or "
                        "'choose'")
        shape = shapes[0]
        if shape == "if":
            for key in raw:
                if key not in ("if", "then", "else"):
                    _fail(path, f"unknown node key {key!r}")
            for key in ("then", "else"):
                if key not in raw:
                    _fail(path, f"'if' node is missing its {key!r} branch")
            condition = self.condition(raw["if"], f"{path}.if",
                                       node_scope=False)
            then = self.node(raw["then"], f"{path}.then", depth + 1)
            otherwise = self.node(raw["else"], f"{path}.else", depth + 1)
            return ConditionNode(condition=condition, then=then,
                                 otherwise=otherwise)
        if shape == "value":
            if self.domain == "placement":
                _fail(path, "placement trees choose among hosts; scalar "
                            "'value' leaves are not allowed")
            for key in raw:
                if key != "value":
                    _fail(path, f"unknown node key {key!r}")
            return ValueLeaf(expr=self.expr(raw["value"], f"{path}.value"))
        # shape == "choose"
        if self.domain != "placement":
            _fail(path, f"{self.domain} trees yield a number; 'choose' "
                        "leaves are placement-only")
        for key in raw:
            if key not in ("choose", "score", "where"):
                _fail(path, f"unknown node key {key!r}")
        mode = raw["choose"]
        if mode not in (CHOOSE_ARGMIN, CHOOSE_ARGMAX):
            _fail(f"{path}.choose", f"'choose' must be '{CHOOSE_ARGMIN}' "
                                    f"or '{CHOOSE_ARGMAX}', got {mode!r}")
        raw_score = raw.get("score")
        if (not isinstance(raw_score, Sequence) or isinstance(raw_score, str)
                or not raw_score):
            _fail(f"{path}.score", "'choose' needs a non-empty 'score' "
                                   "list of terms")
        score = tuple(self.term(item, f"{path}.score[{i}]", node_scope=True)
                      for i, item in enumerate(raw_score))
        where: Tuple[Condition, ...] = ()
        if "where" in raw:
            raw_where = raw["where"]
            if (not isinstance(raw_where, Sequence)
                    or isinstance(raw_where, str)):
                _fail(f"{path}.where", "'where' must be a list of "
                                       "conditions")
            where = tuple(
                self.condition(item, f"{path}.where[{i}]", node_scope=True)
                for i, item in enumerate(raw_where))
        return ChooseLeaf(mode=mode, score=score, where=where)


def compile_policy(document: object, path: str = "$") -> CompiledPolicy:
    """Validate *document* and compile it into a :class:`CompiledPolicy`.

    Raises :class:`~repro.errors.ValidationError` with a JSON-path into the
    document on the first problem found.
    """
    if not isinstance(document, Mapping):
        _fail(path, "policy document must be a JSON object")
    for key in document:
        if key not in ("name", "domain", "description", "candidates",
                       "tree"):
            _fail(path, f"unknown document key {key!r}")
    name = document.get("name")
    if not isinstance(name, str) or not name.strip():
        _fail(f"{path}.name", "document needs a non-empty string 'name'")
    domain = document.get("domain")
    if domain not in DOMAINS:
        _fail(f"{path}.domain", f"unknown domain {domain!r} (expected one "
                                f"of {', '.join(DOMAINS)})")
    description = document.get("description", "")
    if not isinstance(description, str):
        _fail(f"{path}.description", "'description' must be a string")
    candidates = document.get("candidates")
    if domain == "autoscale":
        if candidates not in CANDIDATE_MODES:
            _fail(f"{path}.candidates",
                  "autoscale documents must declare 'candidates' as "
                  f"{' or '.join(repr(m) for m in CANDIDATE_MODES)}, "
                  f"got {candidates!r}")
    elif candidates is not None:
        _fail(f"{path}.candidates",
              f"'candidates' only applies to autoscale documents, not "
              f"{domain!r}")
    if "tree" not in document:
        _fail(path, "document is missing its 'tree'")
    compiler = _Compiler(domain=domain, signals=SIGNAL_SETS[domain],
                         candidates=candidates)
    tree = compiler.node(document["tree"], f"{path}.tree", depth=1)
    return CompiledPolicy(name=name, domain=domain, tree=tree,
                          description=description, candidates=candidates,
                          document=document)
