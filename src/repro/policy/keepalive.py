"""The keep-alive seam: arrival-history signals → idle-window decision.

:class:`DslKeepAlivePolicy` adapts a compiled ``keepalive`` document to
the existing :class:`~repro.platforms.keepalive.KeepAlivePolicy`
interface.  It keeps the same per-function inter-arrival ledger the
built-in :class:`~repro.platforms.keepalive.HybridHistogramKeepAlive`
keeps (a gap is recorded only when an arrival lands strictly after the
previous one), and exposes it to the tree as the ``observed_gaps`` and
``gap_percentile_ms(q)`` signals.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.platforms.keepalive import KeepAlivePolicy
from repro.policy.dsl import (
    CompiledPolicy,
    ConditionNode,
    SignalRef,
    ValueLeaf,
)

SOURCE_BUILTIN = "builtin"
SOURCE_DSL = "dsl"


class DslKeepAlivePolicy(KeepAlivePolicy):
    """A compiled keep-alive document over per-function arrival history."""

    source = SOURCE_DSL

    def __init__(self, compiled: CompiledPolicy) -> None:
        if compiled.domain != "keepalive":
            raise ValueError(
                f"policy {compiled.name!r} is a {compiled.domain} "
                "document, not keepalive")
        self.compiled = compiled
        self.name = compiled.name
        self._last_arrival: Dict[str, float] = {}
        self._gaps: Dict[str, List[float]] = {}

    def observe_arrival(self, function: str, now_ms: float) -> None:
        """Record the gap since this function's previous arrival
        (identically to the built-in histogram policy)."""
        last = self._last_arrival.get(function)
        if last is not None and now_ms > last:
            self._gaps.setdefault(function, []).append(now_ms - last)
        self._last_arrival[function] = now_ms

    def _resolver(self, function: str):
        gaps = self._gaps.get(function, [])

        def resolve(ref: SignalRef) -> float:
            if ref.name == "observed_gaps":
                return float(len(gaps))
            # gap_percentile_ms — the only other keepalive signal.
            if not gaps:
                return math.inf
            ordered = sorted(gaps)
            index = min(len(ordered) - 1, int(ref.arg("q") * len(ordered)))
            return float(ordered[index])

        return resolve

    def window_ms(self, function: str) -> float:
        """Walk the tree to a scalar leaf under *function*'s signals."""
        resolve = self._resolver(function)
        node = self.compiled.tree
        while isinstance(node, ConditionNode):
            node = node.then if node.condition.holds(resolve) \
                else node.otherwise
        assert isinstance(node, ValueLeaf)
        return node.value(resolve)

    def __repr__(self) -> str:
        return f"DslKeepAlivePolicy({self.name!r})"
