"""The placement seam: Signals → chosen host.

:class:`PlacementPolicy` is the narrow interface ``Cluster.place()`` (and
anything else that schedules over a node set) calls: given the candidate
nodes, the function name, the shared round-robin cursor, and an optional
locality probe, return ``(node, new_cursor)``.
:class:`BuiltinPlacementPolicy` wraps the hard-coded
:func:`repro.platforms.scheduler.select_node` oracle;
:class:`DslPlacementPolicy` runs a compiled placement document over the
same signals.  The differential suite in
``tests/property/test_policy_equivalence.py`` proves the shipped
documents decision-identical to the oracle.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import NoHostAvailableError
from repro.platforms.scheduler import home_index, select_node
from repro.policy.dsl import (
    CHOOSE_ARGMIN,
    ChooseLeaf,
    CompiledPolicy,
    ConditionNode,
    SignalRef,
)

SOURCE_BUILTIN = "builtin"
SOURCE_DSL = "dsl"

#: ``locality(node) -> bool``: is the function's state resident there?
LocalityProbe = Optional[Callable[[object], bool]]


class PlacementPolicy:
    """Interface every placement policy — built-in or DSL — satisfies."""

    #: Registered policy name (shows up on the placement span).
    name: str = ""
    #: Where the decision logic comes from: ``builtin`` or ``dsl``.
    source: str = SOURCE_BUILTIN

    def select(self, nodes: Sequence[object], function: str,
               rr_cursor: int, locality: LocalityProbe = None
               ) -> Tuple[object, int]:
        """Pick a node for *function*; return ``(node, new_rr_cursor)``."""
        raise NotImplementedError


class BuiltinPlacementPolicy(PlacementPolicy):
    """A named hard-coded policy, delegating to :func:`select_node`."""

    source = SOURCE_BUILTIN

    def __init__(self, name: str) -> None:
        self.name = name

    def select(self, nodes: Sequence[object], function: str,
               rr_cursor: int, locality: LocalityProbe = None
               ) -> Tuple[object, int]:
        """Delegate to the scheduler oracle for this policy name."""
        return select_node(nodes, self.name, function, rr_cursor, locality)

    def __repr__(self) -> str:
        return f"BuiltinPlacementPolicy({self.name!r})"


class _NodeSignals:
    """Per-evaluation signal resolver over one candidate set."""

    def __init__(self, nodes: Sequence[object], function: str,
                 rr_cursor: int, locality: LocalityProbe) -> None:
        self.nodes = nodes
        self.n = len(nodes)
        self.function = function
        self.rr_cursor = rr_cursor
        self.locality = locality
        self.home = home_index(function, self.n)
        #: Set when ``rr_offset`` was read on the taken decision path —
        #: only then does the decision consume (advance) the cursor.
        self.rr_used = False
        self._local: dict = {}

    def is_local(self, node: object) -> bool:
        """Whether the function's state is resident on *node* (memoised
        so the probe runs at most once per node per decision)."""
        key = id(node)
        if key not in self._local:
            self._local[key] = bool(self.locality(node)) if self.locality \
                else False
        return self._local[key]

    def affinity(self, node: object) -> int:
        """How many times *node* has been assigned this function.

        Reads the host's cumulative per-function assignment counter;
        nodes without one (bare test doubles) count as never-assigned.
        """
        counts = getattr(node, "per_function", None)
        if not counts:
            return 0
        return int(counts.get(self.function, 0))

    def aggregate(self, ref: SignalRef) -> float:
        """Resolve an aggregate-scoped signal."""
        if ref.name == "n_nodes":
            return float(self.n)
        if ref.name == "any_room":
            return 1.0 if any(n.has_room for n in self.nodes) else 0.0
        if ref.name == "any_local_with_room":
            return 1.0 if any(n.has_room and self.is_local(n)
                              for n in self.nodes) else 0.0
        if ref.name == "any_fn_affinity":
            return 1.0 if any(n.has_room and self.affinity(n) > 0
                              for n in self.nodes) else 0.0
        raise NoHostAvailableError(  # pragma: no cover - compiler-guarded
            f"signal {ref.name!r} has no aggregate value")

    def for_node(self, node: object) -> Callable[[SignalRef], float]:
        """A resolver bound to one candidate *node* (falls back to the
        aggregate resolver for aggregate-scoped signals)."""

        def resolve(ref: SignalRef) -> float:
            name = ref.name
            if name == "node_id":
                return float(node.node_id)
            if name == "active":
                return float(node.active)
            if name == "has_room":
                return 1.0 if node.has_room else 0.0
            if name == "capacity_left":
                capacity = getattr(node, "capacity", None)
                if capacity is None:
                    return math.inf
                return float(capacity - node.active)
            if name == "rr_offset":
                self.rr_used = True
                return float((node.node_id - self.rr_cursor) % self.n)
            if name == "home_distance":
                return float((node.node_id - self.home) % self.n)
            if name == "is_home":
                return 1.0 if node.node_id == self.home else 0.0
            if name == "local_state":
                return 1.0 if self.is_local(node) else 0.0
            if name == "fn_affinity":
                return float(self.affinity(node))
            return self.aggregate(ref)

        return resolve


class DslPlacementPolicy(PlacementPolicy):
    """A compiled placement document evaluated over live node signals."""

    source = SOURCE_DSL

    def __init__(self, compiled: CompiledPolicy) -> None:
        if compiled.domain != "placement":
            raise ValueError(
                f"policy {compiled.name!r} is a {compiled.domain} "
                "document, not placement")
        self.compiled = compiled
        self.name = compiled.name

    def select(self, nodes: Sequence[object], function: str,
               rr_cursor: int, locality: LocalityProbe = None
               ) -> Tuple[object, int]:
        """Walk the tree to a ``choose`` leaf and rank the candidates."""
        if not nodes:
            raise NoHostAvailableError("no nodes to place on")
        signals = _NodeSignals(nodes, function, rr_cursor, locality)
        node = self.compiled.tree
        while isinstance(node, ConditionNode):
            branch = node.condition.holds(signals.aggregate)
            node = node.then if branch else node.otherwise
        assert isinstance(node, ChooseLeaf)
        scored = []
        for candidate in nodes:
            resolve = signals.for_node(candidate)
            if not node.admits(resolve):
                continue
            scored.append((node.score_of(resolve), candidate.node_id,
                           candidate))
        if not scored:
            raise NoHostAvailableError("all invokers at capacity")
        if node.mode == CHOOSE_ARGMIN:
            _, _, chosen = min(scored, key=lambda item: (item[0], item[1]))
        else:
            _, _, chosen = max(scored, key=lambda item: (item[0], -item[1]))
        if signals.rr_used:
            return chosen, (chosen.node_id + 1) % signals.n
        return chosen, rr_cursor

    def __repr__(self) -> str:
        return f"DslPlacementPolicy({self.name!r})"
