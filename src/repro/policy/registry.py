"""The uniform policy registry: one namespace per decision domain.

Built-in classes and compiled DSL documents register into the same
:class:`PolicyRegistry`; everything that used to keep its own
name→class lookup table (``bench/scheduling.py``, ``bench/cluster.py``,
``bench/load.py``, ``cli.py``) now resolves names here, so an unknown
policy name fails at config-parse time with a
:class:`~repro.errors.ValidationError` listing the registered names —
not deep inside placement.

:func:`default_registry` holds the built-ins only (the default path
every golden figure runs on); DSL documents are opt-in, registered
explicitly via :meth:`PolicyRegistry.register_document` or
:func:`load_policy_dir` over ``scenarios/policies/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ValidationError
from repro.platforms.keepalive import (
    FixedKeepAlive,
    HybridHistogramKeepAlive,
)
from repro.platforms.scheduler import POLICIES
from repro.policy.autoscale import (
    DslAutoscalePolicy,
    NoTargets,
    PredictiveTargets,
    ReactiveTargets,
)
from repro.policy.dsl import CompiledPolicy, compile_policy
from repro.policy.keepalive import DslKeepAlivePolicy
from repro.policy.placement import (
    SOURCE_BUILTIN,
    SOURCE_DSL,
    BuiltinPlacementPolicy,
    DslPlacementPolicy,
    PlacementPolicy,
)
from repro.policy.signals import DOMAINS

#: Domain adapter constructors for compiled documents.
_DSL_FACTORIES = {
    "placement": DslPlacementPolicy,
    "keepalive": DslKeepAlivePolicy,
    "autoscale": DslAutoscalePolicy,
}


@dataclass(frozen=True)
class PolicyEntry:
    """One registered policy: how to name it and how to build it."""

    domain: str
    name: str
    source: str
    factory: Callable[[], object]
    description: str = ""
    #: The compiled document for DSL entries (``None`` for built-ins).
    compiled: Optional[CompiledPolicy] = None

    def create(self) -> object:
        """A fresh policy instance (policies may carry per-run state)."""
        return self.factory()


class PolicyRegistry:
    """Name → policy lookup across the three decision domains."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, PolicyEntry]] = {
            domain: {} for domain in DOMAINS}

    def register(self, entry: PolicyEntry) -> PolicyEntry:
        """Register *entry*; duplicate (domain, name) pairs are refused."""
        if entry.domain not in self._entries:
            raise ValidationError(
                f"unknown policy domain {entry.domain!r} "
                f"(expected one of {', '.join(DOMAINS)})")
        domain = self._entries[entry.domain]
        if entry.name in domain:
            raise ValidationError(
                f"policy {entry.name!r} is already registered for "
                f"domain {entry.domain!r}")
        domain[entry.name] = entry
        return entry

    def register_builtin(self, domain: str, name: str,
                         factory: Callable[[], object],
                         description: str = "") -> PolicyEntry:
        """Register a hard-coded Python policy under *name*."""
        return self.register(PolicyEntry(
            domain=domain, name=name, source=SOURCE_BUILTIN,
            factory=factory, description=description))

    def register_document(self, document: object,
                          path: str = "$") -> PolicyEntry:
        """Compile a DSL *document* and register it under its own name."""
        compiled = compile_policy(document, path=path)
        factory = _DSL_FACTORIES[compiled.domain]
        return self.register(PolicyEntry(
            domain=compiled.domain, name=compiled.name, source=SOURCE_DSL,
            factory=lambda: factory(compiled),
            description=compiled.description, compiled=compiled))

    def names(self, domain: str) -> Tuple[str, ...]:
        """Registered names for *domain*, in registration order."""
        if domain not in self._entries:
            raise ValidationError(
                f"unknown policy domain {domain!r} "
                f"(expected one of {', '.join(DOMAINS)})")
        return tuple(self._entries[domain])

    def entry(self, domain: str, name: str) -> PolicyEntry:
        """The entry for (*domain*, *name*), or a
        :class:`~repro.errors.ValidationError` listing what exists."""
        names = self.names(domain)
        if name not in self._entries[domain]:
            raise ValidationError(
                f"unknown {domain} policy {name!r} "
                f"(registered: {', '.join(names)})")
        return self._entries[domain][name]

    def create(self, domain: str, name: str) -> object:
        """A fresh instance of the named policy."""
        return self.entry(domain, name).create()


def _builtin_registry() -> PolicyRegistry:
    registry = PolicyRegistry()
    for name in POLICIES:
        registry.register_builtin(
            "placement", name,
            (lambda n=name: BuiltinPlacementPolicy(n)),
            description=f"built-in {name} scheduler")
    registry.register_builtin(
        "keepalive", "fixed", FixedKeepAlive,
        description="one fleet-wide keep-alive window")
    registry.register_builtin(
        "keepalive", "hybrid-histogram", HybridHistogramKeepAlive,
        description="per-function inter-arrival percentile window")
    registry.register_builtin(
        "autoscale", "none", NoTargets,
        description="no warm-pool control loop")
    registry.register_builtin(
        "autoscale", "reactive", ReactiveTargets,
        description="queue-pressure ramp with scale-down hysteresis")
    registry.register_builtin(
        "autoscale", "predictive", PredictiveTargets,
        description="arrival-histogram pre-provisioning on home hosts")
    return registry


_DEFAULT: Optional[PolicyRegistry] = None


def default_registry() -> PolicyRegistry:
    """The process-wide registry of built-in policies (lazily built).

    Only built-ins live here — the default decision path every golden
    figure depends on.  Callers wanting DSL policies register documents
    on their own registry (or pass documents/instances directly to the
    seams).
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = _builtin_registry()
    return _DEFAULT


def load_policy_dir(directory: str,
                    registry: Optional[PolicyRegistry] = None
                    ) -> PolicyRegistry:
    """Register every ``*.json`` document under *directory* (sorted).

    Returns the registry (a fresh built-in registry when none given).
    Compile errors carry the offending filename in their path.
    """
    if registry is None:
        registry = _builtin_registry()
    try:
        entries = sorted(os.listdir(directory))
    except OSError as exc:
        raise ValidationError(
            f"cannot read policy directory {directory!r}: {exc}")
    for filename in entries:
        if not filename.endswith(".json"):
            continue
        full = os.path.join(directory, filename)
        try:
            with open(full, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ValidationError(f"{filename}: not readable JSON: {exc}")
        registry.register_document(document, path=filename)
    return registry


def resolve_placement(policy: object) -> PlacementPolicy:
    """Coerce a placement spec into a :class:`PlacementPolicy`.

    Accepts a registered name (``str``), a DSL document (``Mapping``),
    or a ready policy instance; anything else is a
    :class:`~repro.errors.ValidationError`.
    """
    if isinstance(policy, str):
        return default_registry().create("placement", policy)
    if isinstance(policy, Mapping):
        return DslPlacementPolicy(compile_policy(policy))
    if isinstance(policy, PlacementPolicy):
        return policy
    raise ValidationError(
        f"placement policy must be a registered name, a DSL document, "
        f"or a PlacementPolicy instance, got {type(policy).__name__}")


def resolve_autoscale(policy: object) -> object:
    """Coerce an autoscale spec into an ``AutoscalePolicy``.

    Accepts a registered mode name (``str``), a DSL document
    (``Mapping``), or a ready policy instance.
    """
    from repro.policy.autoscale import AutoscalePolicy
    if isinstance(policy, str):
        return default_registry().create("autoscale", policy)
    if isinstance(policy, Mapping):
        return DslAutoscalePolicy(compile_policy(policy))
    if isinstance(policy, AutoscalePolicy):
        return policy
    raise ValidationError(
        f"autoscale policy must be a registered mode, a DSL document, "
        f"or an AutoscalePolicy instance, got {type(policy).__name__}")


def resolve_keepalive(policy: object) -> object:
    """Coerce a keep-alive spec into a ``KeepAlivePolicy``.

    Accepts a registered name (``str``), a DSL document (``Mapping``),
    or a ready policy instance.
    """
    from repro.platforms.keepalive import KeepAlivePolicy
    if isinstance(policy, str):
        return default_registry().create("keepalive", policy)
    if isinstance(policy, Mapping):
        return DslKeepAlivePolicy(compile_policy(policy))
    if isinstance(policy, KeepAlivePolicy):
        return policy
    raise ValidationError(
        f"keep-alive policy must be a registered name, a DSL document, "
        f"or a KeepAlivePolicy instance, got {type(policy).__name__}")


def shipped_policy_dir() -> str:
    """The repo's ``scenarios/policies/`` directory (shipped documents)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(
        here, "..", "..", "..", "scenarios", "policies"))


def registered_summary(registry: Optional[PolicyRegistry] = None
                       ) -> List[str]:
    """Human-readable ``domain/name (source)`` lines for CLI output."""
    reg = registry if registry is not None else default_registry()
    lines = []
    for domain in DOMAINS:
        for name in reg.names(domain):
            entry = reg.entry(domain, name)
            lines.append(f"{domain}/{name} ({entry.source})")
    return lines
