"""The autoscale seam: cluster signals → warm-worker targets.

:class:`AutoscalePolicy` is the narrow interface the
:class:`~repro.autoscale.scaler.WarmPoolAutoscaler` tick calls: given an
:class:`AutoscaleView` of the cluster (hosts, admission queues, arrival
histograms, config), return the ordered list of ``(function, host,
want)`` warm targets for this tick.  The scaler stays the *engine*
(expiry, provisioning processes, pending ledgers, ``on_warm_taken``
top-ups); the policy is only the per-tick *decision*.

:class:`ReactiveTargets` and :class:`PredictiveTargets` are verbatim
extractions of the pre-refactor tick loops (same iteration order, same
state machine), so default figures stay byte-identical.
:class:`DslAutoscalePolicy` runs a compiled ``autoscale`` document under
one of two candidate enumerations (declared by the document):

* ``queue-state`` — the reactive shape: candidates are the
  ``(host, function)`` pairs with queue pressure now or a carried level,
  with the same pressure/hold hysteresis bookkeeping as the built-in;
* ``home-hosts`` — the predictive shape: candidates are each installed
  function on its hash-home host, with arrival-histogram signals.

Emitted targets are clamped to ``cfg.max_warm_per_function`` (the engine
clamps again when provisioning, so a document never over-provisions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.policy.dsl import (
    CompiledPolicy,
    ConditionNode,
    SignalRef,
    ValueLeaf,
)
from repro.policy.signals import (
    CANDIDATES_HOME_HOSTS,
    CANDIDATES_QUEUE_STATE,
)

SOURCE_BUILTIN = "builtin"
SOURCE_DSL = "dsl"

#: One per-tick warm target: (function, host, want).
Decision = Tuple[str, object, int]


@dataclass
class AutoscaleView:
    """Everything a target-setting decision may read, one tick's worth.

    Built fresh by the scaler each tick (and easy to fake in tests):
    decisions read admission queues, arrival history, and host liveness —
    never the warm pools or provisioning ledgers the engine owns.
    """

    now: float
    cfg: object
    #: Arrival histograms (a ``HybridHistogramKeepAlive``).
    history: object
    #: Every cluster host, in host-id order.
    hosts: Sequence[object]
    #: ``host(host_id) -> Host``.
    host: Callable[[int], object]
    #: ``home_host(function) -> Host`` (the hash-home host).
    home_host: Callable[[str], object]
    #: Installed function names, platform order.
    functions: Sequence[str]


class AutoscalePolicy:
    """Interface every autoscale policy — built-in or DSL — satisfies."""

    #: Registered policy name (the scaler's ``mode``).
    name: str = ""
    #: Where the decision logic comes from: ``builtin`` or ``dsl``.
    source: str = SOURCE_BUILTIN
    #: Inactive policies never tick (no control loop at all).
    active: bool = True

    def decide(self, view: AutoscaleView) -> List[Decision]:
        """The ordered warm targets for this tick."""
        raise NotImplementedError


class NoTargets(AutoscalePolicy):
    """The ``none`` mode: no control loop, no targets."""

    name = "none"
    active = False

    def decide(self, view: AutoscaleView) -> List[Decision]:
        """Never called (inactive), but well-defined: no targets."""
        del view
        return []


class ReactiveTargets(AutoscalePolicy):
    """Queue-pressure policy: a pressured host gets warm workers for
    every function waiting in its admission queue, ramping by
    ``reactive_step`` per tick, and holds each target for
    ``reactive_hold_ticks`` pressure-free ticks before dropping it.
    The hysteresis is what makes it *reactive*: it scales where the
    queue was, late, and keeps paying for it after the burst passed —
    the memory/timeliness trade the predictive policy avoids."""

    name = "reactive"

    def __init__(self) -> None:
        #: (host_id, function) -> (level, hold ticks left).
        self._reactive: Dict[Tuple[int, str], Tuple[int, int]] = {}

    def decide(self, view: AutoscaleView) -> List[Decision]:
        """The pre-refactor reactive tick, collecting targets."""
        cfg = view.cfg
        decisions: List[Decision] = []
        pressured = set()
        for host in view.hosts:
            if host.down or host.admission is None:
                continue
            if host.admission.depth < cfg.reactive_queue_threshold:
                continue
            for function in set(host.admission.waiting_functions()):
                key = (host.host_id, function)
                pressured.add(key)
                level = self._reactive.get(key, (0, 0))[0]
                self._reactive[key] = (
                    min(level + cfg.reactive_step,
                        cfg.max_warm_per_function),
                    cfg.reactive_hold_ticks)
        for key in list(self._reactive):
            level, hold = self._reactive[key]
            if key not in pressured:
                hold -= 1
                if hold <= 0:
                    del self._reactive[key]
                    continue
                self._reactive[key] = (level, hold)
            host = view.host(key[0])
            if host.down:
                del self._reactive[key]   # chaos-aware: down host, no target
                continue
            decisions.append((key[1], host, level))
        return decisions


class PredictiveTargets(AutoscalePolicy):
    """Arrival-prediction policy: pre-provision on a function's home
    host when its histogram predicts arrivals within the horizon."""

    name = "predictive"

    def decide(self, view: AutoscaleView) -> List[Decision]:
        """The pre-refactor predictive tick, collecting targets."""
        cfg = view.cfg
        decisions: List[Decision] = []
        for function in view.functions:
            last = view.history.last_arrival_ms(function)
            gap = view.history.gap_percentile_ms(
                function, cfg.predictive_gap_quantile)
            if last is None or gap is None:
                continue
            if gap <= cfg.predictive_horizon_ms:
                # Arrives at least once per horizon: keep enough warm
                # workers to absorb the expected arrivals.
                want = min(cfg.max_warm_per_function,
                           max(1, int(cfg.predictive_horizon_ms / gap)))
            else:
                predicted = last + gap
                if not view.now <= predicted <= \
                        view.now + cfg.predictive_horizon_ms:
                    continue
                want = 1
            host = view.home_host(function)
            if host.down:
                continue   # chaos-aware: down hosts drop their targets
            decisions.append((function, host, want))
        return decisions


class DslAutoscalePolicy(AutoscalePolicy):
    """A compiled autoscale document run over one candidate enumeration."""

    source = SOURCE_DSL

    def __init__(self, compiled: CompiledPolicy) -> None:
        if compiled.domain != "autoscale":
            raise ValueError(
                f"policy {compiled.name!r} is a {compiled.domain} "
                "document, not autoscale")
        self.compiled = compiled
        self.name = compiled.name
        #: queue-state bookkeeping: (host_id, function) -> (level, hold).
        self._state: Dict[Tuple[int, str], Tuple[int, int]] = {}

    def _want(self, view: AutoscaleView,
              resolve: Callable[[SignalRef], float]) -> int:
        """Walk the tree to a scalar leaf; clamp to the warm cap."""
        node = self.compiled.tree
        while isinstance(node, ConditionNode):
            node = node.then if node.condition.holds(resolve) \
                else node.otherwise
        assert isinstance(node, ValueLeaf)
        want = int(node.value(resolve))
        return min(want, view.cfg.max_warm_per_function)

    def decide(self, view: AutoscaleView) -> List[Decision]:
        """Dispatch on the document's candidate enumeration mode."""
        if self.compiled.candidates == CANDIDATES_QUEUE_STATE:
            return self._decide_queue_state(view)
        return self._decide_home_hosts(view)

    def _decide_queue_state(self, view: AutoscaleView) -> List[Decision]:
        """Reactive-shaped enumeration: pressured pairs plus carried
        levels, with the built-in's pressure/hold bookkeeping."""
        cfg = view.cfg
        decisions: List[Decision] = []
        pressured = set()
        for host in view.hosts:
            if host.down or host.admission is None:
                continue
            if host.admission.depth < cfg.reactive_queue_threshold:
                continue
            for function in set(host.admission.waiting_functions()):
                key = (host.host_id, function)
                pressured.add(key)
                if key not in self._state:
                    self._state[key] = (0, 0)
        for key in list(self._state):
            level, hold = self._state[key]
            is_pressured = key in pressured
            if not is_pressured:
                hold -= 1
                if hold <= 0:
                    del self._state[key]
                    continue
            host = view.host(key[0])
            if host.down:
                del self._state[key]
                continue
            depth = host.admission.depth if host.admission is not None \
                else 0

            def resolve(ref: SignalRef, _p=is_pressured, _l=level,
                        _h=hold, _d=depth) -> float:
                name = ref.name
                if name == "pressured":
                    return 1.0 if _p else 0.0
                if name == "prev_level":
                    return float(_l)
                if name == "hold_left":
                    return float(_h)
                if name == "queue_depth":
                    return float(_d)
                if name == "reactive_step":
                    return float(cfg.reactive_step)
                # max_warm — the only other queue-state signal.
                return float(cfg.max_warm_per_function)

            want = self._want(view, resolve)
            if want <= 0:
                del self._state[key]
                continue
            self._state[key] = (
                want, cfg.reactive_hold_ticks if is_pressured else hold)
            decisions.append((key[1], host, want))
        return decisions

    def _decide_home_hosts(self, view: AutoscaleView) -> List[Decision]:
        """Predictive-shaped enumeration: each installed function on its
        hash-home host, with arrival-histogram signals."""
        cfg = view.cfg
        decisions: List[Decision] = []
        for function in view.functions:
            host = view.home_host(function)
            if host.down:
                continue
            last = view.history.last_arrival_ms(function)
            gap = view.history.gap_percentile_ms(
                function, cfg.predictive_gap_quantile)
            has_history = last is not None and gap is not None
            gap_ms = float(gap) if has_history else math.inf
            if gap_ms <= cfg.predictive_horizon_ms and gap_ms > 0:
                expected = max(1, int(cfg.predictive_horizon_ms / gap_ms))
            else:
                expected = 0
            within = (has_history
                      and view.now <= last + gap_ms
                      <= view.now + cfg.predictive_horizon_ms)
            depth = host.admission.depth if host.admission is not None \
                else 0

            def resolve(ref: SignalRef, _hh=has_history, _g=gap_ms,
                        _e=expected, _w=within, _d=depth) -> float:
                name = ref.name
                if name == "has_history":
                    return 1.0 if _hh else 0.0
                if name == "predicted_gap_ms":
                    return _g
                if name == "expected_arrivals_in_horizon":
                    return float(_e)
                if name == "predicted_within_horizon":
                    return 1.0 if _w else 0.0
                if name == "horizon_ms":
                    return float(cfg.predictive_horizon_ms)
                if name == "queue_depth":
                    return float(_d)
                if name == "reactive_step":
                    return float(cfg.reactive_step)
                # max_warm — the only other home-hosts signal.
                return float(cfg.max_warm_per_function)

            want = self._want(view, resolve)
            if want >= 1:
                decisions.append((function, host, want))
        return decisions

    def __repr__(self) -> str:
        return (f"DslAutoscalePolicy({self.name!r}, "
                f"candidates={self.compiled.candidates!r})")
