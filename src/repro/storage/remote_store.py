"""Tiered snapshot storage with a remote backend (§6).

§6: *"thousands of serverless functions ... disk space overhead could be
high.  Previous works using a snapshot-based approach leverage remote
storage."*  This module implements that option: a small local LRU cache in
front of an unbounded remote object store.  A restore that misses locally
first fetches the image over the network (rtt + size/bandwidth), then
proceeds as a local restore.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import SnapshotNotFoundError, StorageError
from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore, StorableImage


class RemoteObjectStore:
    """The unbounded remote tier (S3-like), with a transfer-cost model."""

    def __init__(self, rtt_ms: float = 8.0,
                 bandwidth_mb_per_ms: float = 1.2) -> None:
        if bandwidth_mb_per_ms <= 0:
            raise StorageError("remote bandwidth must be positive")
        self.rtt_ms = rtt_ms
        self.bandwidth_mb_per_ms = bandwidth_mb_per_ms
        self._objects: Dict[str, StorableImage] = {}
        self.uploads = 0
        self.downloads = 0

    def upload(self, key: str, image: StorableImage) -> float:
        """Store *image* remotely; returns the upload time in ms."""
        self._objects[key] = image
        self.uploads += 1
        return self.rtt_ms + image.size_mb / self.bandwidth_mb_per_ms

    def download(self, key: str) -> Tuple[StorableImage, float]:
        """Fetch *key*; returns (image, download time in ms)."""
        if key not in self._objects:
            raise SnapshotNotFoundError(f"remote store has no {key!r}")
        image = self._objects[key]
        self.downloads += 1
        return image, self.rtt_ms + image.size_mb / self.bandwidth_mb_per_ms

    def contains(self, key: str) -> bool:
        """Whether *key* is stored here."""
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)


class TieredSnapshotStore:
    """Local LRU cache backed by a remote object store.

    ``put`` writes through to both tiers; ``get`` returns
    ``(image, extra_ms)`` where ``extra_ms`` is 0 on a local hit and the
    download + local write time on a miss.
    """

    def __init__(self, local_device: BlockDevice,
                 remote: RemoteObjectStore,
                 local_capacity_images: int = 8) -> None:
        self.local = SnapshotStore(local_device,
                                   capacity_images=local_capacity_images)
        self.remote = remote
        self.local_hits = 0
        self.remote_fetches = 0

    def put(self, key: str, image: StorableImage) -> float:
        """Write-through install; returns the total write time in ms."""
        local_ms = self.local.put(key, image)
        remote_ms = self.remote.upload(key, image)
        return local_ms + remote_ms

    def get(self, key: str) -> Tuple[StorableImage, float]:
        """Fetch *key*, pulling from the remote tier on a local miss."""
        if self.local.contains(key):
            self.local_hits += 1
            return self.local.get(key), 0.0
        image, download_ms = self.remote.download(key)
        write_ms = self.local.put(key, image)
        self.remote_fetches += 1
        return image, download_ms + write_ms

    def contains(self, key: str) -> bool:
        """Whether *key* is stored here."""
        return self.local.contains(key) or self.remote.contains(key)

    def evict_local(self, key: str) -> None:
        """Drop the local copy (capacity pressure); remote copy remains."""
        self.local.remove(key)
