"""Host block device: capacity tracking and sequential transfer costs.

Used by the snapshot store (§6 discusses snapshot disk-space overhead) and by
the REAP-style prefetcher, which reads snapshot images sequentially.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import StorageError


class BlockDevice:
    """A host SSD with named files and a simple transfer-rate model."""

    def __init__(self, capacity_mb: float, read_mb_per_ms: float = 2.0,
                 write_mb_per_ms: float = 1.0, name: str = "ssd") -> None:
        if capacity_mb <= 0:
            raise StorageError(f"capacity must be positive, got {capacity_mb}")
        self.name = name
        self.capacity_mb = capacity_mb
        self.read_mb_per_ms = read_mb_per_ms
        self.write_mb_per_ms = write_mb_per_ms
        self._files: Dict[str, float] = {}

    # -- capacity -------------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return sum(self._files.values())

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def has_file(self, path: str) -> bool:
        """Whether *path* exists on this device."""
        return path in self._files

    def file_size_mb(self, path: str) -> float:
        """Size of *path*; StorageError if absent."""
        if path not in self._files:
            raise StorageError(f"no such file: {path!r}")
        return self._files[path]

    def list_files(self) -> Dict[str, float]:
        """path -> size MiB for every file."""
        return dict(self._files)

    # -- operations -----------------------------------------------------------
    def write_file(self, path: str, size_mb: float) -> float:
        """Create/overwrite *path*; returns the simulated write time in ms."""
        if size_mb < 0:
            raise StorageError(f"negative file size {size_mb}")
        existing = self._files.get(path, 0.0)
        if self.used_mb - existing + size_mb > self.capacity_mb:
            raise StorageError(
                f"disk full: {size_mb:.0f} MiB into {self.free_mb:.0f} free")
        self._files[path] = size_mb
        return size_mb / self.write_mb_per_ms

    def read_cost_ms(self, size_mb: float) -> float:
        """Time to sequentially read *size_mb* from this device."""
        if size_mb < 0:
            raise StorageError(f"negative read size {size_mb}")
        return size_mb / self.read_mb_per_ms

    def delete_file(self, path: str) -> None:
        """Remove *path*; StorageError if absent."""
        if path not in self._files:
            raise StorageError(f"delete of missing file {path!r}")
        del self._files[path]
