"""Storage substrate: block device, I/O path models, snapshot store."""

from repro.storage.disk import BlockDevice
from repro.storage.filesystem import IoPathModel
from repro.storage.snapshot_store import SnapshotStore, StorableImage

__all__ = ["BlockDevice", "IoPathModel", "SnapshotStore", "StorableImage"]
