"""Per-sandbox I/O path models.

Fig 6(c) of the paper hinges on how each sandbox mechanism reaches the disk:

* **OverlayFS container** (OpenWhisk): almost direct host-filesystem access —
  the fastest path.
* **virtio-blk microVM** (Firecracker/Fireworks): guest filesystem + virtio
  ring — moderate cost.
* **9p/Gofer** (gVisor): every I/O traverses Sentry's seccomp trap and a
  Gofer 9p round trip — the slowest path by far.

The cost tables live in :class:`~repro.config.SandboxLatency`; this module
turns them into per-operation latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SandboxLatency
from repro.errors import StorageError


@dataclass(frozen=True)
class IoPathModel:
    """Computes disk/net operation latencies for one sandbox mechanism."""

    latency: SandboxLatency

    def disk_read_ms(self, kb: float) -> float:
        """Latency of one read of *kb* KiB through this sandbox's I/O path."""
        return self._disk_op_ms(kb)

    def disk_write_ms(self, kb: float) -> float:
        """Latency of one write of *kb* KiB (same path; writeback absorbed)."""
        return self._disk_op_ms(kb)

    def net_send_ms(self, kb: float) -> float:
        """Latency of sending a message of *kb* KiB (request or response)."""
        if kb < 0:
            raise StorageError(f"negative message size {kb}")
        per_kb = self.latency.disk_io_per_kb_ms * 0.5  # wire is faster than disk
        return (self.latency.net_rtt_ms / 2.0
                + self.latency.syscall_overhead_ms
                + kb * per_kb)

    def net_recv_ms(self, kb: float) -> float:
        """Latency of receiving a message of *kb* KiB."""
        return self.net_send_ms(kb)

    def _disk_op_ms(self, kb: float) -> float:
        if kb < 0:
            raise StorageError(f"negative I/O size {kb}")
        return (self.latency.disk_io_base_ms
                + self.latency.syscall_overhead_ms
                + kb * self.latency.disk_io_per_kb_ms)
