"""gVisor sandbox: a hardened container with Sentry/Gofer interposition.

gVisor runs the container against a user-space kernel: Sentry intercepts
system calls via a seccomp filter and forwards file I/O to Gofer over 9p
(§2.3, §5.2.1).  The interception cost appears as ``syscall_overhead_ms`` on
every I/O — the reason gVisor has the slowest I/O path in Fig 6(c).
"""

from __future__ import annotations

from repro.sandbox.base import ISOLATION_MEDIUM_CONTAINER, Sandbox


class GVisorSandbox(Sandbox):
    """A gVisor (runsc) container: medium isolation, strong syscall filter."""

    mechanism = "gvisor"
    isolation = ISOLATION_MEDIUM_CONTAINER

    #: Of 350 Linux system calls, plain containers expose 306 [10]; gVisor's
    #: Sentry implements a restricted subset itself.
    HOST_SYSCALLS_EXPOSED = 68

    def _map_boot_memory(self) -> None:
        # Sentry (the user-space kernel) is per-sandbox resident memory;
        # model it as a small kernel region (it is not the host kernel).
        sentry_mb = max(8, self.layout.kernel_mb // 4)
        self.space.map_private("kernel", sentry_mb, "sentry")
