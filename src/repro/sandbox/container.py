"""Docker-style container sandbox (OpenWhisk's mechanism).

Containers share the host kernel (no guest kernel region, lower isolation)
and reach the disk through OverlayFS — nearly host-filesystem speed, which is
why the paper finds container disk I/O *faster* than microVMs (§5.2.1(2)).
"""

from __future__ import annotations

from repro.sandbox.base import ISOLATION_MEDIUM_CONTAINER, Sandbox


class Container(Sandbox):
    """A Linux container: medium isolation (shares the host kernel)."""

    mechanism = "container"
    isolation = ISOLATION_MEDIUM_CONTAINER

    # Containers have no guest kernel to map; the base `_map_boot_memory`
    # no-op is exactly right.
