"""Sandbox base: lifecycle state machine, isolation levels, memory wiring.

A sandbox is the unit of isolation a serverless platform runs a function in
(Table 1 of the paper): a microVM (high isolation), a container (medium), a
gVisor container (medium, hardened), or a bare V8 isolate (low).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import CalibratedParameters, SandboxLatency
from repro.errors import SandboxError
from repro.mem.address_space import AddressSpace
from repro.mem.host_memory import HostMemory
from repro.storage.filesystem import IoPathModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation

# Isolation levels as compared in Table 1.
ISOLATION_HIGH_VM = "high (VM)"
ISOLATION_MEDIUM_CONTAINER = "medium (container)"
ISOLATION_LOW_RUNTIME = "low (runtime)"

STATE_CREATED = "created"
STATE_RUNNING = "running"
STATE_PAUSED = "paused"
STATE_STOPPED = "stopped"


class Sandbox:
    """Common lifecycle for all sandbox mechanisms."""

    mechanism = "abstract"
    isolation = ISOLATION_MEDIUM_CONTAINER

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: HostMemory, language: str,
                 name: str = "") -> None:
        self.sim = sim
        self.params = params
        self.latency: SandboxLatency = params.latency(self.mechanism)
        self.layout = params.memory_layout(language)
        self.language = language
        self.name = name or f"{self.mechanism}-{id(self):x}"
        self.io = IoPathModel(self.latency)
        self.space = AddressSpace(host_memory, name=self.name)
        self.state = STATE_CREATED
        self.boot_completed_at: Optional[float] = None

    # -- lifecycle (simulation generators) -------------------------------------
    def boot(self):
        """Cold-boot the sandbox shell: create + (guest OS) + platform init.

        Subclasses map their boot-time memory regions in `_map_boot_memory`.
        """
        if self.state != STATE_CREATED:
            raise SandboxError(f"boot() in state {self.state!r}")
        yield self.sim.timeout(self.latency.create_ms)
        self._map_shell_memory()
        if self.latency.os_boot_ms:
            yield self.sim.timeout(self.latency.os_boot_ms)
        self._map_boot_memory()
        if self.latency.init_ms:
            yield self.sim.timeout(self.latency.init_ms)
        self.state = STATE_RUNNING
        self.boot_completed_at = self.sim.now

    def pause(self):
        """Pause the sandbox, keeping it resident (warm pool)."""
        if self.state != STATE_RUNNING:
            raise SandboxError(f"pause() in state {self.state!r}")
        yield self.sim.timeout(self.latency.pause_ms)
        self.state = STATE_PAUSED

    def resume(self):
        """Resume a paused sandbox (a warm start)."""
        if self.state != STATE_PAUSED:
            raise SandboxError(f"resume() in state {self.state!r}")
        yield self.sim.timeout(self.latency.resume_paused_ms)
        self.state = STATE_RUNNING

    def stop(self):
        """Tear the sandbox down, releasing all memory."""
        if self.state == STATE_STOPPED:
            raise SandboxError(f"{self.name} already stopped")
        yield self.sim.timeout(self.latency.teardown_ms)
        self.space.unmap_all()
        self.state = STATE_STOPPED

    # -- memory wiring ----------------------------------------------------------
    def _map_shell_memory(self) -> None:
        """Host-side overhead of the VMM/shim process."""
        self.space.map_private("vmm", self.layout.vmm_overhead_mb, "vmm")

    def _map_boot_memory(self) -> None:
        """Guest memory mapped by OS boot; containers share the host kernel."""

    def map_runtime_memory(self) -> None:
        """Called when the language runtime process starts."""
        self.space.map_private("runtime", self.layout.runtime_mb, "runtime")

    def map_app_memory(self) -> None:
        """Called when the function code is loaded into the runtime."""
        self.space.map_private("app", self.layout.app_mb, "app")
        self.space.map_private("heap", self.layout.heap_after_load_mb, "heap")

    def map_jit_memory(self) -> None:
        """Called when JIT compilation first emits machine code."""
        if not self.space.has_region("jit_code"):
            self.space.map_private("jit_code", self.layout.jit_code_mb,
                                   "jit_code")

    # -- execution memory effects -------------------------------------------------
    def account_first_execution(self) -> None:
        """Dirty the pages one invocation touches (CoW-breaks if shared)."""
        layout = self.layout
        for region, fraction in (
                ("heap", layout.exec_dirty_heap_fraction),
                ("jit_code", layout.exec_dirty_jit_fraction),
                ("kernel", layout.exec_dirty_text_fraction),
                ("runtime", layout.exec_dirty_text_fraction),
                ("app", layout.exec_dirty_text_fraction)):
            if self.space.has_region(region):
                self.space.dirty_fraction(region, fraction)
        if self.space.has_region("heap"):
            self.space.grow_mb("heap", layout.exec_extra_anon_mb)

    def account_steady_state(self) -> None:
        """Dirty pages under sustained load (Fig 10's long-running VMs)."""
        layout = self.layout
        for region in ("kernel", "runtime", "app", "heap", "jit_code"):
            if self.space.has_region(region):
                self.space.dirty_fraction(
                    region, layout.steady_state_dirty_fraction)
        if self.space.has_region("heap"):
            self.space.grow_mb("heap", layout.steady_state_extra_anon_mb)

    # -- reporting ------------------------------------------------------------------
    def pss_mb(self) -> float:
        """Proportional set size of this sandbox (MiB)."""
        return self.space.pss_mb()

    def rss_mb(self) -> float:
        """Resident set size of this sandbox (MiB)."""
        return self.space.rss_mb()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.state}>"
