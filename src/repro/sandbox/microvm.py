"""Firecracker-style microVM sandbox.

The microVM has its own guest kernel (mapped at boot), a guest network
identity (IP/MAC) that snapshot clones inherit verbatim (§3.5), and a
MicroVM Metadata Service (MMDS) key/value store reachable from the guest
(§3.2/§3.6 — how clones learn their instance identity).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SandboxError
from repro.net.address import IpAddress, MacAddress
from repro.sandbox.base import ISOLATION_HIGH_VM, Sandbox


class Mmds:
    """The microVM Metadata Service: host-writable, guest-readable."""

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}

    def put(self, key: str, value: str) -> None:
        """Host side: write a metadata key."""
        self._data[key] = value

    def get(self, key: str) -> str:
        """Guest side: read a metadata key; errors if absent."""
        if key not in self._data:
            raise SandboxError(f"MMDS has no key {key!r}")
        return self._data[key]

    def snapshot_excluded(self) -> None:
        """MMDS content is host-side state: never part of a VM snapshot."""
        self._data.clear()


class MicroVM(Sandbox):
    """A Firecracker microVM: the highest isolation level in Table 1."""

    mechanism = "microvm"
    isolation = ISOLATION_HIGH_VM

    def __init__(self, sim, params, host_memory, language,
                 name: str = "", mmds: Optional[Mmds] = None) -> None:
        super().__init__(sim, params, host_memory, language, name=name)
        self.guest_ip: Optional[IpAddress] = None
        self.guest_mac: Optional[MacAddress] = None
        # A clone may be handed a pre-populated MMDS (identity written
        # before restore, §3.4); a booted VM starts with an empty one.
        self.mmds = mmds if mmds is not None else Mmds()
        self.restored_from_snapshot = False

    def assign_guest_addresses(self, ip: IpAddress, mac: MacAddress) -> None:
        """Set the guest's network identity (done once, pre-boot)."""
        if self.guest_ip is not None:
            raise SandboxError(f"{self.name} already has a guest IP")
        self.guest_ip = ip
        self.guest_mac = mac

    def _map_boot_memory(self) -> None:
        # A VM boots its own kernel; containers (subclasses elsewhere) don't.
        self.space.map_private("kernel", self.layout.kernel_mb, "kernel")

    def __repr__(self) -> str:
        origin = "snapshot" if self.restored_from_snapshot else "boot"
        return f"<MicroVM {self.name} {self.state} from-{origin}>"
