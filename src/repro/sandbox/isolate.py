"""V8 isolate "sandbox" (Cloudflare-Workers style) — Table 1 only.

Hundreds of isolates share one V8 process: near-zero start-up and memory
cost, but the weakest isolation (a V8 bug compromises every tenant in the
process).  Included to regenerate Table 1's design comparison.
"""

from __future__ import annotations

from repro.sandbox.base import ISOLATION_LOW_RUNTIME, Sandbox


class V8Isolate(Sandbox):
    """A V8:Isolate context inside a shared runtime process."""

    mechanism = "isolate"
    isolation = ISOLATION_LOW_RUNTIME

    def map_runtime_memory(self) -> None:
        """Per-isolate context state; the V8 process is shared."""
        # The runtime process is shared across isolates; per-isolate runtime
        # cost is a sliver of context state.
        self.space.map_private("runtime", 2, "isolate-context")

    def _map_shell_memory(self) -> None:
        self.space.map_private("vmm", 1, "isolate-overhead")
