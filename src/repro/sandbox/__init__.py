"""Sandbox mechanisms: microVM, container, gVisor, V8 isolate, workers."""

from repro.sandbox.base import (ISOLATION_HIGH_VM,
                                ISOLATION_LOW_RUNTIME,
                                ISOLATION_MEDIUM_CONTAINER, STATE_CREATED,
                                STATE_PAUSED, STATE_RUNNING, STATE_STOPPED,
                                Sandbox)
from repro.sandbox.container import Container
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.isolate import V8Isolate
from repro.sandbox.microvm import MicroVM, Mmds
from repro.sandbox.worker import Worker

__all__ = [
    "Container",
    "GVisorSandbox",
    "ISOLATION_HIGH_VM",
    "ISOLATION_LOW_RUNTIME",
    "ISOLATION_MEDIUM_CONTAINER",
    "MicroVM",
    "Mmds",
    "STATE_CREATED",
    "STATE_PAUSED",
    "STATE_RUNNING",
    "STATE_STOPPED",
    "Sandbox",
    "V8Isolate",
    "Worker",
]
