"""Worker: a sandbox + language runtime + loaded app, ready to invoke.

Every platform ultimately drives one of these.  A worker is either built the
slow way (cold boot: sandbox boot, runtime launch, app load) or the fast way
(snapshot restore — see :mod:`repro.snapshot.restorer`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SandboxError
from repro.runtime.interpreter import (AppCode, ExecBreakdown,
                                       ExternalHandlers, LanguageRuntime)
from repro.runtime.ops import Program
from repro.sandbox.base import STATE_RUNNING, Sandbox

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class Worker:
    """One invocable function instance."""

    def __init__(self, sim: "Simulation", sandbox: Sandbox,
                 runtime: LanguageRuntime,
                 app: Optional[AppCode] = None) -> None:
        self.sim = sim
        self.sandbox = sandbox
        self.runtime = runtime
        self.app = app
        self.invocations = 0
        self.endpoint = None  # HostBridge endpoint, when network-connected
        self._exec_memory_accounted = False
        self._steady_state_accounted = False

    # -- construction paths ------------------------------------------------------
    def cold_start(self, app: AppCode):
        """Boot everything from scratch (a simulation generator)."""
        tracer = self.sim.tracer
        with tracer.span("cold-start", sandbox=self.sandbox.name):
            with tracer.span("sandbox-boot",
                             mechanism=self.sandbox.mechanism):
                yield from self.sandbox.boot()
            with tracer.span("runtime-launch",
                             language=self.runtime.language):
                yield from self.runtime.launch()
                self.sandbox.map_runtime_memory()
            with tracer.span("app-load", app=app.name):
                yield from self.runtime.load_app(app)
                self.sandbox.map_app_memory()
        self.app = app

    def load_app_only(self, app: AppCode):
        """Load the app into an already-launched runtime.

        Used after restoring an OS-stage snapshot: the runtime agent is up,
        only the function code still needs loading (Fig 11's "+VM-level OS
        snapshot" variant).
        """
        with self.sim.tracer.span("app-load", app=app.name):
            yield from self.runtime.load_app(app)
            self.sandbox.map_app_memory()
        self.app = app

    def force_jit(self):
        """Annotation-driven JIT of the loaded app (Fireworks install)."""
        jit_span = self.sim.tracer.span("force-jit")
        with jit_span:
            compile_ms = yield from self.runtime.force_jit_all()
            self.sandbox.map_jit_memory()
            jit_span.attrs["compile_ms"] = compile_ms
            jit_span.attrs["optimized"] = len(
                self.runtime.jit.optimized_functions())
        return compile_ms

    # -- invocation -----------------------------------------------------------------
    def invoke(self, prog: Program,
               handlers: Optional[ExternalHandlers] = None):
        """Run one invocation; returns the in-guest :class:`ExecBreakdown`."""
        if self.sandbox.state != STATE_RUNNING:
            raise SandboxError(
                f"invoke on {self.sandbox.name} in state "
                f"{self.sandbox.state!r}")
        breakdown = yield from self.runtime.run_program(
            prog, self.sandbox.io, handlers)
        if (self.runtime.jit.optimized_functions()
                and not self.sandbox.space.has_region("jit_code")):
            # First tier-up in this worker: the JIT emitted machine code.
            self.sandbox.map_jit_memory()
        if not self._exec_memory_accounted:
            self.sandbox.account_first_execution()
            self._exec_memory_accounted = True
        self.invocations += 1
        return breakdown

    def enter_steady_state(self) -> None:
        """Apply sustained-load memory churn (Fig 10 methodology)."""
        if not self._steady_state_accounted:
            self.sandbox.account_steady_state()
            self._steady_state_accounted = True

    # -- lifecycle passthrough ---------------------------------------------------
    def pause(self):
        """Pause the sandbox (warm pool)."""
        yield from self.sandbox.pause()

    def resume(self):
        """Resume a paused sandbox (warm start)."""
        with self.sim.tracer.span("resume", sandbox=self.sandbox.name):
            yield from self.sandbox.resume()

    def stop(self):
        """Tear the sandbox down, releasing memory."""
        yield from self.sandbox.stop()

    def pss_mb(self) -> float:
        """Proportional set size of the sandbox (MiB)."""
        return self.sandbox.pss_mb()

    def __repr__(self) -> str:
        app = self.app.name if self.app else "-"
        return f"<Worker {self.sandbox.name} app={app} n={self.invocations}>"
