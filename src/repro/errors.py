"""Exception hierarchy for the Fireworks reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A discrete-event simulation invariant was violated."""


class ValidationError(ReproError):
    """A caller passed an argument outside the accepted domain (unknown
    policy name, non-positive size, ...) — a usage error, not a runtime
    failure of the modeled system."""


class StateError(ReproError):
    """An operation was invoked in a state where it is meaningless (e.g.
    recording a working set before any invocation ran)."""


class MemoryError_(ReproError):
    """Guest/host memory model misuse (bad address, double free, ...)."""


class OutOfMemoryError(MemoryError_):
    """Host physical memory exhausted (beyond the swap threshold)."""


class StorageError(ReproError):
    """Block device / filesystem / snapshot store failure."""


class SnapshotNotFoundError(StorageError):
    """The requested snapshot image is not in the snapshot store."""


class NetworkError(ReproError):
    """Network namespace / NAT / tap device misconfiguration."""


class AddressConflictError(NetworkError):
    """Two endpoints in the same namespace claimed the same address."""


class RuntimeModelError(ReproError):
    """Language-runtime model misuse (unknown op, bad JIT state, ...)."""


class DeoptimizationError(RuntimeModelError):
    """JITted code was asked to deoptimize in an invalid state."""


class SandboxError(ReproError):
    """Sandbox lifecycle violation (e.g. resuming a sandbox never paused)."""


class PlatformError(ReproError):
    """Serverless control-plane failure (unknown function, bad request)."""


class FunctionNotFoundError(PlatformError):
    """Invocation of a function that was never installed/registered."""


class ChaosError(ReproError):
    """An injected infrastructure failure (chaos engine, repro.chaos)."""


class RetryableChaosError(ChaosError):
    """A chaos failure the invoke path may retry (the fault can heal or a
    different host can serve the request)."""


class HostDownError(RetryableChaosError):
    """The chosen host crashed before the invocation could complete on it."""

    def __init__(self, host_id: int, stage: str) -> None:
        super().__init__(f"host{host_id} is down (observed at {stage})")
        self.host_id = host_id
        self.stage = stage


class BusPartitionedError(RetryableChaosError):
    """The controller cannot reach the message bus (network partition)."""


class NoHostAvailableError(PlatformError, RetryableChaosError):
    """Placement found no live host with room.

    A :class:`PlatformError` subclass so pre-chaos callers that expect
    "all invokers at capacity" to be a platform error keep working, and a
    :class:`RetryableChaosError` because a crashed host may recover.
    """


class InvocationSheddedError(PlatformError):
    """The admission controller rejected the request (HTTP-429 analogue).

    Raised when the per-host admission queue is full on arrival
    (``reason == "queue-full"``) or the request exceeded its wait budget
    while queued (``reason == "wait-budget"``).  Deliberately *not*
    retryable: shedding is a deliberate overload-protection decision, and
    retrying against the same overloaded cluster would defeat it.  Carries
    the ``SheddedInvocation`` result object as ``shedded`` once the
    platform has accounted it.
    """

    def __init__(self, host_id: int, reason: str, queue_depth: int) -> None:
        super().__init__(
            f"host{host_id} shed the request ({reason}, "
            f"queue depth {queue_depth})")
        self.host_id = host_id
        self.reason = reason
        self.queue_depth = queue_depth
        self.shedded = None


class ExecutionLostError(ChaosError):
    """The host died after the function executed but before the response
    was accounted.  Deliberately *not* retryable: re-running would execute
    the function twice (at-most-once billing)."""

    def __init__(self, host_id: int) -> None:
        super().__init__(
            f"host{host_id} crashed after execution; result lost")
        self.host_id = host_id


class InvocationFailedError(ChaosError):
    """An invocation exhausted its retry budget (or hit an unretryable
    fault) under an attached chaos controller.  Carries the
    ``FailedInvocation`` result object as ``failed``."""

    def __init__(self, failed) -> None:
        super().__init__(
            f"invocation of {failed.function!r} failed after "
            f"{failed.attempts} attempt(s): {failed.reason}")
        self.failed = failed


class AnnotationError(ReproError):
    """The code annotator could not transform the user's source."""


class BusError(ReproError):
    """Message bus misuse (unknown topic, empty consume, ...)."""


class DatabaseError(ReproError):
    """CouchDB-substrate failure (missing document, bad revision, ...)."""


class DocumentConflictError(DatabaseError):
    """A document update supplied a stale revision."""


class TraceError(ReproError):
    """Span lifecycle misuse (closing a span that is not the innermost)."""


class TraceInvariantError(TraceError):
    """A span tree violates a tracing invariant (nesting, coverage,
    span-vs-record agreement)."""
