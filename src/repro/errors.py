"""Exception hierarchy for the Fireworks reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A discrete-event simulation invariant was violated."""


class MemoryError_(ReproError):
    """Guest/host memory model misuse (bad address, double free, ...)."""


class OutOfMemoryError(MemoryError_):
    """Host physical memory exhausted (beyond the swap threshold)."""


class StorageError(ReproError):
    """Block device / filesystem / snapshot store failure."""


class SnapshotNotFoundError(StorageError):
    """The requested snapshot image is not in the snapshot store."""


class NetworkError(ReproError):
    """Network namespace / NAT / tap device misconfiguration."""


class AddressConflictError(NetworkError):
    """Two endpoints in the same namespace claimed the same address."""


class RuntimeModelError(ReproError):
    """Language-runtime model misuse (unknown op, bad JIT state, ...)."""


class DeoptimizationError(RuntimeModelError):
    """JITted code was asked to deoptimize in an invalid state."""


class SandboxError(ReproError):
    """Sandbox lifecycle violation (e.g. resuming a sandbox never paused)."""


class PlatformError(ReproError):
    """Serverless control-plane failure (unknown function, bad request)."""


class FunctionNotFoundError(PlatformError):
    """Invocation of a function that was never installed/registered."""


class AnnotationError(ReproError):
    """The code annotator could not transform the user's source."""


class BusError(ReproError):
    """Message bus misuse (unknown topic, empty consume, ...)."""


class DatabaseError(ReproError):
    """CouchDB-substrate failure (missing document, bad revision, ...)."""


class DocumentConflictError(DatabaseError):
    """A document update supplied a stale revision."""


class TraceError(ReproError):
    """Span lifecycle misuse (closing a span that is not the innermost)."""


class TraceInvariantError(TraceError):
    """A span tree violates a tracing invariant (nesting, coverage,
    span-vs-record agreement)."""
