"""Calibrated parameters for the Fireworks reproduction.

Every latency and memory constant used by the simulated substrate lives here,
as a named dataclass field with a comment tying it to the paper observation it
serves.  The defaults are calibrated so the *shape* of every figure in §5 of
the paper holds: who wins, by roughly what factor, and where crossovers fall.
Absolute values are in milliseconds (time) and mebibytes (memory).

Calibration targets (paper §5) and the arithmetic behind the defaults:

* Fig 6(a): Fireworks cold start up to 133x faster than Firecracker (Node).
  Firecracker cold = create 300 + guest boot 1400 + node launch 250 +
  app load 250 = 2200 ms; Fireworks = snapshot restore ~14 + netns 1.6 +
  MMDS 0.3 + Kafka param fetch 2.8 ~= 19 ms -> ~115x.
* Fig 6(a): execution 38% faster cold — V8 tiers up after ~8000 units, so
  faas-fact (27000 units) runs ~30% of its work interpreted plus the
  TurboFan compile, while Fireworks runs fully optimized.
* Fig 7(a)/(b): Python execution 20x/80x faster — stock CPython never JITs;
  the per-workload Numba speedup is 20 (fact) / 80 (matmul, vectorizable).
* Fig 10: 565 vs 337 microVMs before swapping on a 128 GB host at
  swappiness 60 (threshold 76.8 GB).  Firecracker VM under sustained load:
  170 guest + 8 VMM + 55 anon growth ~= 233 MiB -> 337 VMs.  Fireworks VM:
  8 VMM + 45% of the guest CoW-broken (~77) + 55 anon ~= 139 MiB -> ~565.
* Fig 11: +OS snapshot helps compute ~2-3x and netlatency ~6-8x; +post-JIT
  dominates for Python (CPython never JITs on its own).
* Fig 12: OS snapshot shares kernel+runtime; Node post-JIT also shares
  app/heap/JIT code (V8 allocates lazily); Python post-JIT gains ~nothing
  because Numba's MCJIT-duplicated code pages get relocated (dirtied).
* §5.1: post-JIT snapshot creation 0.36-0.47 s — 120 ms base + 1.6 ms/MiB
  over a ~170 MiB image ~= 0.39 s.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Dict

PAGE_KB = 4
"""Guest/host page size in KiB, as on the paper's x86-64 testbed."""


# ---------------------------------------------------------------------------
# Host
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HostConfig:
    """The evaluation server (paper §5.1): Xeon 8180, 128 GB RAM, 2 TB SSD."""

    cores: int = 64
    dram_mb: int = 131072              # 128 GB
    disk_gb: int = 2048                # 2 TB SSD
    swappiness_threshold: float = 0.60  # paper: vm.swappiness=60; swapping
    #                                     observed once ~60% of DRAM is used
    page_kb: int = PAGE_KB


# ---------------------------------------------------------------------------
# MicroVM / sandbox shapes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MicroVMConfig:
    """Per-sandbox shape (paper §5.1): 1 vCPU, 512 MB memory, 2 GB disk."""

    vcpus: int = 1
    mem_mb: int = 512
    disk_mb: int = 2048


@dataclass(frozen=True)
class SandboxLatency:
    """Lifecycle and I/O path costs for one sandbox mechanism (ms)."""

    create_ms: float          # allocate the sandbox shell (VMM/containerd)
    os_boot_ms: float         # guest kernel boot (0 for containers)
    init_ms: float            # platform-side init (auth, cgroups, ...)
    pause_ms: float           # pause a running sandbox (warm pool)
    resume_paused_ms: float   # resume a paused sandbox (warm start)
    teardown_ms: float
    disk_io_base_ms: float    # per-I/O fixed cost through this sandbox's path
    disk_io_per_kb_ms: float  # per-KiB transfer cost
    net_rtt_ms: float         # in-host request/response network cost
    syscall_overhead_ms: float = 0.0  # per-I/O interception (gVisor Sentry/Gofer)


# Calibration notes per mechanism:
#  * microVM (Firecracker): slowest cold boot (paper Fig 6: "Firecracker shows
#    the slowest cold start-up"), virtio-blk I/O slower than host-fs
#    containers but much faster than gVisor.
#  * container (OpenWhisk/Docker): fast create, heavy platform init on cold
#    start (paper: authentication and message-queue initialization), fastest
#    disk I/O (OverlayFS straight to the host filesystem).
#  * gvisor: container create plus Sentry/Gofer costs; slowest I/O path
#    (paper Fig 6(c): gVisor shows the slowest I/O performance).
MICROVM_LATENCY = SandboxLatency(
    create_ms=300.0,
    os_boot_ms=1400.0,
    init_ms=0.0,
    pause_ms=8.0,
    resume_paused_ms=68.0,
    teardown_ms=30.0,
    disk_io_base_ms=0.45,
    disk_io_per_kb_ms=0.010,
    net_rtt_ms=1.2,
)

CONTAINER_LATENCY = SandboxLatency(
    create_ms=380.0,
    os_boot_ms=0.0,
    init_ms=520.0,      # OpenWhisk cold: authentication + queue init (§5.2.1)
    pause_ms=4.0,
    resume_paused_ms=12.0,
    teardown_ms=20.0,
    disk_io_base_ms=0.18,
    disk_io_per_kb_ms=0.004,
    net_rtt_ms=0.8,
)

GVISOR_LATENCY = SandboxLatency(
    create_ms=600.0,
    os_boot_ms=0.0,
    init_ms=700.0,
    pause_ms=6.0,
    resume_paused_ms=55.0,
    teardown_ms=25.0,
    disk_io_base_ms=0.45,
    disk_io_per_kb_ms=0.012,
    net_rtt_ms=1.6,
    syscall_overhead_ms=4.2,   # Sentry seccomp trap + Gofer 9p round trip
)

ISOLATE_LATENCY = SandboxLatency(
    # Cloudflare-Workers-style V8 isolate: no sandbox boot at all.  Used only
    # for the Table 1 design-comparison bench.
    create_ms=5.0,
    os_boot_ms=0.0,
    init_ms=1.0,
    pause_ms=0.1,
    resume_paused_ms=0.5,
    teardown_ms=0.5,
    disk_io_base_ms=0.18,
    disk_io_per_kb_ms=0.004,
    net_rtt_ms=0.5,
)


# ---------------------------------------------------------------------------
# Language runtimes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeConfig:
    """Latency/JIT model for one language runtime."""

    name: str
    launch_ms: float            # start the runtime process inside the sandbox
    app_load_base_ms: float     # import/require the function + dependencies
    interp_units_per_ms: float  # interpreter throughput, abstract units/ms
    jit_compile_ms_per_kunit: float  # JIT compile cost per 1000 units of code
    hotness_threshold_units: float   # units executed before tier-up fires
    deopt_penalty_ms: float     # cost of one de-optimization (re-enter interp)
    has_runtime_jit: bool       # does the runtime tier up by itself (V8: yes,
    #                             stock CPython: no — paper §5.5.1)
    annotation_jit: bool        # can Fireworks force JIT via annotation
    #                             (Numba @jit / V8 prepare hooks)


NODEJS_RUNTIME = RuntimeConfig(
    name="nodejs",
    launch_ms=250.0,            # node binary + V8 init (Node v12.18.3)
    app_load_base_ms=250.0,     # require() of handler + npm deps (§5.1: npm
    #                             packages dominate Node install time)
    interp_units_per_ms=18.0,   # Ignition bytecode interpreter
    jit_compile_ms_per_kunit=9.0,   # TurboFan optimizing compile
    hotness_threshold_units=8000.0,  # I/O-light functions tier up mid-run;
    #                                  I/O-heavy ones never reach it (§5.5.1)
    deopt_penalty_ms=1.2,
    has_runtime_jit=True,
    annotation_jit=True,
)

DOTNET_RUNTIME = RuntimeConfig(
    # C#/.NET with Ahead-Of-Time compilation (§3.1 compares post-JIT to
    # AOT; §7: AWS supports JIT only for pre-provisioned C#).  AOT code is
    # machine code from the start: no interpreter tier, no runtime JIT —
    # but the CLR launch and assembly load are heavier than node/python.
    name="dotnet",
    launch_ms=320.0,            # CLR + trimmed runtime start
    app_load_base_ms=110.0,     # AOT-compiled assembly load
    interp_units_per_ms=54.0,   # machine code throughput (= V8's top tier)
    jit_compile_ms_per_kunit=0.0,    # compilation happened at build time
    hotness_threshold_units=0.0,     # everything is already compiled
    deopt_penalty_ms=0.0,
    has_runtime_jit=False,
    annotation_jit=False,       # nothing to annotate: AOT shares no code
)

PYTHON_RUNTIME = RuntimeConfig(
    name="python",
    launch_ms=120.0,            # CPython 3.8.5 startup
    app_load_base_ms=80.0,      # import of handler + site-packages
    interp_units_per_ms=3.2,    # CPython bytecode loop (no JIT, ever)
    jit_compile_ms_per_kunit=45.0,  # Numba/LLVM MCJIT compile (install time)
    hotness_threshold_units=float("inf"),  # stock CPython never tiers up
    deopt_penalty_ms=2.0,
    has_runtime_jit=False,
    annotation_jit=True,        # Numba @jit(cache=True)
)


# ---------------------------------------------------------------------------
# Guest memory layout (MiB per region), per language
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GuestMemoryLayout:
    """Resident region sizes after each boot stage, in MiB.

    The paper reports an average serverless sandbox of ~170 MB (§5.1 fn 1);
    the post-boot totals below land there.  ``jit_code_mb`` captures the
    paper's Fig 12 asymmetry: V8 allocates JIT state lazily and compactly
    (the "lighter V8" work [55]), while Numba duplicates JITted functions per
    module (an LLVM MCJIT restriction [35]), inflating the Python JIT region.
    """

    kernel_mb: int              # guest kernel + OS services
    runtime_mb: int             # language runtime binary + shared libs
    app_mb: int                 # function code + dependency packages
    heap_after_load_mb: int     # runtime heap right after app load
    jit_code_mb: int            # JITted machine code + compiler metadata
    # Fractions of each region that one invocation dirties (CoW-breaks).
    exec_dirty_heap_fraction: float
    exec_dirty_jit_fraction: float
    exec_dirty_text_fraction: float  # kernel/runtime/app writable-data churn
    exec_extra_anon_mb: int     # fresh anonymous allocations per invocation
    # Sustained load (Fig 10): GC churn keeps touching pages; these are the
    # steady-state dirty fraction of the whole guest image and the
    # steady-state anonymous growth beyond it.
    steady_state_dirty_fraction: float
    steady_state_extra_anon_mb: int
    vmm_overhead_mb: int        # host-side VMM/shim per-sandbox overhead
    snapshot_working_set_mb_fraction: float  # pages demand-faulted before
    #                                          first useful work on restore

    @property
    def guest_total_mb(self) -> int:
        """Resident guest size after load+JIT (the snapshot image size)."""
        return (self.kernel_mb + self.runtime_mb + self.app_mb
                + self.heap_after_load_mb + self.jit_code_mb)

    @property
    def os_stage_mb(self) -> int:
        """Resident size after guest OS boot + runtime agent launch."""
        return self.kernel_mb + self.runtime_mb


NODEJS_MEMORY = GuestMemoryLayout(
    kernel_mb=60,
    runtime_mb=55,
    app_mb=25,
    heap_after_load_mb=20,
    jit_code_mb=10,             # V8-lite style lazy JIT state (paper [55])
    exec_dirty_heap_fraction=0.40,
    exec_dirty_jit_fraction=0.10,
    exec_dirty_text_fraction=0.04,
    exec_extra_anon_mb=6,
    steady_state_dirty_fraction=0.33,
    steady_state_extra_anon_mb=55,
    vmm_overhead_mb=8,          # Firecracker VMM is a few MiB per microVM
    snapshot_working_set_mb_fraction=0.15,
)

DOTNET_MEMORY = GuestMemoryLayout(
    kernel_mb=60,
    runtime_mb=70,              # CLR + trimmed base class libraries
    app_mb=18,                  # AOT binary: machine code is larger than IL
    heap_after_load_mb=22,
    jit_code_mb=0,              # no JIT at run time — code is in `app`
    exec_dirty_heap_fraction=0.45,
    exec_dirty_jit_fraction=0.0,
    exec_dirty_text_fraction=0.04,
    exec_extra_anon_mb=6,
    steady_state_dirty_fraction=0.33,
    steady_state_extra_anon_mb=55,
    vmm_overhead_mb=8,
    snapshot_working_set_mb_fraction=0.20,
)

PYTHON_MEMORY = GuestMemoryLayout(
    kernel_mb=60,
    runtime_mb=35,
    app_mb=10,
    heap_after_load_mb=25,
    jit_code_mb=42,             # Numba duplicates JITted code per module [35]
    exec_dirty_heap_fraction=0.60,
    exec_dirty_jit_fraction=0.60,  # MCJIT relocations touch the code pages
    exec_dirty_text_fraction=0.05,
    exec_extra_anon_mb=6,
    steady_state_dirty_fraction=0.33,
    steady_state_extra_anon_mb=55,
    vmm_overhead_mb=8,
    snapshot_working_set_mb_fraction=0.45,
)


# ---------------------------------------------------------------------------
# Snapshot machinery
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SnapshotConfig:
    """Costs of creating/restoring VM-level snapshots (Firecracker API)."""

    create_base_ms: float = 120.0      # serialize device state, open file
    create_per_mb_ms: float = 1.6      # write guest memory to the image file
    #                                    (~170 MiB image -> ~0.39 s, §5.1)
    restore_base_ms: float = 6.0       # mmap image, restore device state
    restore_per_working_mb_ms: float = 0.30  # demand-page the working set
    #                                    (warm page cache)
    restore_per_working_mb_cold_ms: float = 2.2  # cold cache: random 4 KiB
    #                                    reads from disk (REAP's bottleneck)
    prefetch_per_mb_ms: float = 0.09   # REAP-style sequential prefetch rate
    store_capacity_images: int = 1024  # snapshot store LRU capacity (§6)
    # Lazy restore (POLICY_LAZY, repro.snapshot.chunks).  Only the lazy
    # policy reads these, so defaults leave every other figure untouched.
    chunk_mb: float = 2.0              # lazy-loading chunk granularity
    demand_fault_chunk_ms: float = 0.12  # per-chunk fault trap + request


# ---------------------------------------------------------------------------
# Fireworks control-plane costs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FireworksConfig:
    """Per-invocation control-plane costs specific to Fireworks (§3.4-3.6)."""

    netns_setup_ms: float = 1.6     # create netns + tap + NAT rules (§3.5)
    mmds_write_ms: float = 0.3      # push microVM ID metadata (§3.5)
    param_publish_ms: float = 0.4   # produce arguments to the Kafka topic
    param_fetch_ms: float = 2.8     # kafkacat consume inside the guest (§3.6)
    annotate_ms_per_function: float = 35.0  # source transform at install time


# ---------------------------------------------------------------------------
# Cluster of hosts (Figure 1's backend servers)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Cross-host control-plane costs for multi-host placement.

    The controller relays each request "to one of the backend servers"
    (Figure 1); when the chosen host does not hold the function's snapshot
    image, the image is copied from a host that does before the restore —
    the cost the ``snapshot-locality`` placement policy exists to avoid.

    The ``retry_*`` knobs bound the control plane's failover loop
    (:mod:`repro.chaos`): a retryable infrastructure failure (host crash,
    bus partition) is retried up to ``retry_max_attempts`` times with
    exponential backoff ``min(cap, base * factor**(attempt-1))``, jittered
    by up to ``retry_jitter_frac`` from a dedicated seeded RNG stream so
    the delays are deterministic per root seed.
    """

    snapshot_transfer_base_ms: float = 4.0   # connection setup + image metadata
    snapshot_transfer_per_mb_ms: float = 0.8  # ~10 GbE effective goodput
    #                                           (~170 MiB image -> ~140 ms)
    stream_transfers: bool = False           # stream the recorded working set
    #                                          first, residual chunks in the
    #                                          background (off by default so
    #                                          existing figures stay
    #                                          byte-identical)
    retry_max_attempts: int = 3              # total tries per invocation
    retry_base_ms: float = 2.0               # first backoff delay
    retry_backoff_factor: float = 2.0        # exponential growth per retry
    retry_cap_ms: float = 250.0              # backoff ceiling
    retry_jitter_frac: float = 0.1           # +/- fraction of the delay


# ---------------------------------------------------------------------------
# Platform control planes (baselines)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ControlPlaneConfig:
    """Shared frontend/controller costs for all platforms (Figure 1)."""

    gateway_route_ms: float = 1.0       # API gateway relays the request
    controller_dispatch_ms: float = 1.5  # controller -> message bus -> invoker
    bus_publish_ms: float = 0.4
    warm_keepalive_ms: float = 600000.0  # keep idle sandboxes 10 min (AWS-like)
    openwhisk_warm_route_ms: float = 55.0  # OpenWhisk warm path: controller
    #                                        -> Kafka -> invoker -> container
    #                                        bookkeeping (activation records)


# ---------------------------------------------------------------------------
# Serving layer: admission control + warm-pool autoscaling
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscaleConfig:
    """Heavy-traffic serving layer (:mod:`repro.autoscale`).

    ``enabled=False`` (the default) keeps the invoke path byte-identical to
    the pre-serving-layer behaviour: no admission spans, no queue events,
    no extra RNG draws.  When enabled, each :class:`~repro.cluster.Host`
    gets a bounded FIFO admission queue ahead of its capacity gate, and a
    :class:`~repro.autoscale.WarmPoolAutoscaler` may pre-provision warm
    workers per host.

    The shed policy rejects a request as a first-class
    ``SheddedInvocation`` when the queue is full on arrival
    (``queue-full``) or when it has waited longer than
    ``max_queue_wait_ms`` (``wait-budget``) — a 429, not a failure.
    """

    enabled: bool = False
    queue_capacity: int = 16           # per-host admission queue depth
    max_queue_wait_ms: float = 2000.0  # wait budget before shedding (0 = none)
    scale_interval_ms: float = 2000.0  # autoscaler control-loop period
    reactive_queue_threshold: int = 1  # queue depth that triggers scale-up
    reactive_step: int = 1             # target increment per pressured tick
    #                                    (reactive policy ramp rate)
    reactive_hold_ticks: int = 6       # scale-down hysteresis: pressure-free
    #                                    ticks before a reactive target drops
    #                                    (HPA-style stabilization window —
    #                                    12 s here vs HPA's 5 min default)
    predictive_horizon_ms: float = 4000.0  # pre-provision when the next
    #                                        arrival is predicted this soon
    predictive_gap_quantile: float = 0.5   # gap percentile used as the
    #                                        next-arrival estimate
    max_warm_per_function: int = 2     # per-host cap on pooled warm workers
    warm_expiry_ms: float = 30000.0    # TTL of autoscaler-provisioned workers


# ---------------------------------------------------------------------------
# Bundle
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CalibratedParameters:
    """Everything the simulated substrate needs, in one immutable bundle."""

    host: HostConfig = field(default_factory=HostConfig)
    microvm: MicroVMConfig = field(default_factory=MicroVMConfig)
    sandbox_latency: Dict[str, SandboxLatency] = field(default_factory=lambda: {
        "microvm": MICROVM_LATENCY,
        "container": CONTAINER_LATENCY,
        "gvisor": GVISOR_LATENCY,
        "isolate": ISOLATE_LATENCY,
    })
    runtimes: Dict[str, RuntimeConfig] = field(default_factory=lambda: {
        "nodejs": NODEJS_RUNTIME,
        "python": PYTHON_RUNTIME,
        "dotnet": DOTNET_RUNTIME,
    })
    memory_layouts: Dict[str, GuestMemoryLayout] = field(default_factory=lambda: {
        "nodejs": NODEJS_MEMORY,
        "python": PYTHON_MEMORY,
        "dotnet": DOTNET_MEMORY,
    })
    snapshot: SnapshotConfig = field(default_factory=SnapshotConfig)
    fireworks: FireworksConfig = field(default_factory=FireworksConfig)
    control_plane: ControlPlaneConfig = field(default_factory=ControlPlaneConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    latency_jitter_rel_stddev: float = 0.0  # deterministic by default;
    #                                         benches may turn jitter on

    def runtime(self, language: str) -> RuntimeConfig:
        """Runtime config for *language*; raises KeyError for unknown ones."""
        return self.runtimes[language]

    def memory_layout(self, language: str) -> GuestMemoryLayout:
        """Guest memory layout for *language*."""
        return self.memory_layouts[language]

    def latency(self, mechanism: str) -> SandboxLatency:
        """Sandbox latency table for *mechanism*."""
        return self.sandbox_latency[mechanism]

    def with_overrides(self, **kwargs: object) -> "CalibratedParameters":
        """A copy with top-level fields replaced (for ablation benches)."""
        return replace(self, **kwargs)


def default_parameters() -> CalibratedParameters:
    """The calibrated defaults used by all experiments."""
    return CalibratedParameters()


# ---------------------------------------------------------------------------
# Canonical hashing (content-addressed result caching)
# ---------------------------------------------------------------------------
def canonical_jsonable(obj: object) -> object:
    """A JSON-ready form of *obj* with a canonical field/key order.

    Dataclasses become ``{"__dataclass__": <class name>, <field>: ...}`` in
    declaration order; dict keys are emitted sorted.  Two parameter bundles
    canonicalize identically iff every calibrated constant matches, so the
    result is a stable cache-key ingredient across processes and sessions
    (``PYTHONHASHSEED`` does not leak in).
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, object] = {"__dataclass__": type(obj).__name__}
        for f in fields(obj):
            out[f.name] = canonical_jsonable(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(key): canonical_jsonable(obj[key])
                for key in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [canonical_jsonable(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-trip form; json.dumps uses it too,
        # but going through it here keeps inf/nan printable.
        return repr(obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def params_fingerprint(params: CalibratedParameters) -> str:
    """A short content hash of every calibrated constant in *params*.

    Experiment results are memoizable exactly when the calibration they ran
    under is identical; this fingerprint is the cache-key component that
    enforces it.
    """
    canonical = json.dumps(canonical_jsonable(params), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
