"""The tracer: issues and collects span trees on one simulation.

One :class:`Tracer` is attached to every :class:`~repro.sim.kernel.Simulation`
as ``sim.tracer``.  Span context propagates per *process*: each generator
process on the kernel carries its own span stack, so interleaved invocations
(bursts, chains, background retirement) cannot corrupt each other's trees.
Code running outside any process (direct generator stepping in unit tests)
shares one default stack.

Spans opened in a freshly spawned process start a new root — background work
(clone retirement, DB-trigger invocations) deliberately does *not* inherit
the span of the process that spawned it, because the parent span typically
closes before the background work runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.span import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class Tracer:
    """Issues spans timed on one simulation's clock; keeps every root."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.roots: List[Span] = []
        self._default_stack: List[Span] = []
        self._auto_ids = 0

    # -- context -------------------------------------------------------------
    def _stack(self) -> List[Span]:
        process = self.sim._active_process
        if process is None:
            return self._default_stack
        stack = process.trace_stack
        if stack is None:
            stack = process.trace_stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span of the current process, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span issuing ----------------------------------------------------------
    def span(self, name: str, phase: Optional[str] = None,
             kind: Optional[str] = None, trace_id: str = "",
             **attrs: Any) -> Span:
        """A new span to be opened with ``with``.

        The parent (the innermost open span of the current process) and the
        start time are captured on ``__enter__``, not here.  ``trace_id``
        only applies when the span turns out to be a root; children always
        inherit the root's id.
        """
        return Span(self, name, phase=phase, kind=kind, trace_id=trace_id,
                    attrs=attrs)

    def add_span(self, name: str, start_ms: float, end_ms: float,
                 phase: Optional[str] = None, kind: Optional[str] = None,
                 trace_id: str = "", parent: Optional[Span] = None,
                 **attrs: Any) -> Span:
        """Record a retrospective, already-closed span.

        Used for sub-phases inside an already-elapsed window (e.g. the JIT
        compile share of a compute op) where splitting the simulated timeout
        itself would perturb event ordering.  The span is attached under the
        currently open span (or as a root).  An explicit *parent* attaches
        the span under that (possibly already closed) span instead — the
        chain executor uses this to hang per-stage spans under a chain root
        built after the stages ran.  *trace_id* applies only when the span
        lands as a root.
        """
        if end_ms < start_ms:
            raise TraceError(
                f"span {name!r} ends before it starts "
                f"({end_ms} < {start_ms})")
        span = Span(self, name, phase=phase, kind=kind, trace_id=trace_id,
                    attrs=attrs)
        span.start_ms = start_ms
        span.end_ms = end_ms
        if parent is not None:
            span.parent = parent
            span.trace_id = parent.trace_id
            parent.children.append(span)
        else:
            self._attach(span)
        return span

    # -- lifecycle (called by Span.__enter__/__exit__) --------------------------
    def _start(self, span: Span) -> None:
        # Resolve the stack once for both attach and push: span open/close
        # runs for every stage of every invocation.
        stack = self._stack()
        self._attach(span, stack)
        span.start_ms = self.sim._now
        stack.append(span)

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise TraceError(
                f"closing {span!r} which is not the innermost open span")
        stack.pop()
        span.end_ms = self.sim._now

    def _attach(self, span: Span, stack: Optional[List[Span]] = None) -> None:
        if stack is None:
            stack = self._stack()
        parent = stack[-1] if stack else None
        span.parent = parent
        if parent is not None:
            span.trace_id = parent.trace_id
            parent.children.append(span)
        else:
            if not span.trace_id:
                self._auto_ids += 1
                span.trace_id = f"trace-{self._auto_ids}"
            self.roots.append(span)

    # -- queries -------------------------------------------------------------
    def traces(self) -> Tuple[Span, ...]:
        """Every root span recorded so far, in creation order."""
        return tuple(self.roots)

    def trace(self, trace_id: str) -> Span:
        """The root span with *trace_id*; KeyError if absent."""
        for root in self.roots:
            if root.trace_id == trace_id:
                return root
        raise KeyError(f"no trace {trace_id!r}")

    def clear(self) -> None:
        """Drop all recorded roots (open spans stay on their stacks)."""
        self.roots.clear()
