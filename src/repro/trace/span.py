"""Spans: one timed stage of one invocation, on the DES clock.

A :class:`Span` covers a half-open interval of simulated time and carries a
name, free-form attributes (fc_id, start mode, JIT tier, ...), and two small
classification fields the breakdown derivation keys on:

* ``phase`` — which Fig 6/7 bar this span's time belongs to (``"other"``,
  ``"queue"``, ``"exec"``); untagged spans inherit their position (time
  inside the ``acquire`` stage is start-up by default).
* ``kind``  — structural role (``"invoke"``, ``"acquire"``, ``"retry"``,
  ...); nested ``invoke`` spans mark chain hops whose time is accounted on
  the child record, not the parent's exec bar.

Spans form a tree per trace; they are context managers (opening/closing is
delegated to the :class:`~repro.trace.tracer.Tracer` that issued them).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One node of a trace tree: a named, timed, attributed interval."""

    __slots__ = ("name", "trace_id", "parent", "children", "start_ms",
                 "end_ms", "phase", "kind", "attrs", "_tracer")

    def __init__(self, tracer, name: str, phase: Optional[str] = None,
                 kind: Optional[str] = None, trace_id: str = "",
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self._tracer = tracer
        self.name = name
        self.phase = phase
        self.kind = kind
        self.trace_id = trace_id
        self.parent: Optional["Span"] = None
        self.children: List["Span"] = []
        self.start_ms: Optional[float] = None
        self.end_ms: Optional[float] = None
        # The span takes ownership of *attrs* (no defensive copy): every
        # caller builds it fresh from ``**attrs``, and spans are opened on
        # every invocation stage, so the copy was measurable.
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    # -- timing --------------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        """Wall duration on the DES clock; 0.0 while unstarted/open."""
        if self.start_ms is None or self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def closed(self) -> bool:
        """Whether the span has both a start and an end timestamp."""
        return self.start_ms is not None and self.end_ms is not None

    # -- tree access ----------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with *name*, pre-order; None if absent."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant (or self) with *name*, pre-order."""
        return [span for span in self.walk() if span.name == name]

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.attrs.setdefault("error", type(exc).__name__)
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:
        window = (f"{self.start_ms:.3f}..{self.end_ms:.3f}"
                  if self.closed else "open")
        return f"<Span {self.name} [{window}] trace={self.trace_id}>"
