"""Deterministic per-invocation tracing on the DES clock.

``sim.tracer`` (a :class:`Tracer`) issues :class:`Span` context managers
that every stage of the invocation path opens — gateway, frontend, worker
acquisition (netns / MMDS / restore / parameter fetch / JIT), execution,
release.  The platform derives each invocation record's latency breakdown
*from* its span tree (:func:`phase_breakdown`), so the Fig 6/7 bars and the
trace can never disagree; :func:`verify_invocation` asserts exactly that.

Exporters: Chrome ``trace_event`` JSON (:func:`to_chrome_trace`,
:func:`write_trace_json`) and a plain-text tree (:func:`render_tree`) —
see ``python -m repro trace --help``.
"""

from repro.trace.export import (chrome_trace_events, render_tree,
                                to_chrome_trace, write_trace_json)
from repro.trace.span import Span
from repro.trace.tracer import Tracer
from repro.trace.verify import (EPS_COVERAGE, EPS_TREE, PhaseBreakdown,
                                check_well_formed, phase_breakdown,
                                verify_invocation, verify_records)

__all__ = [
    "EPS_COVERAGE",
    "EPS_TREE",
    "PhaseBreakdown",
    "Span",
    "Tracer",
    "check_well_formed",
    "chrome_trace_events",
    "phase_breakdown",
    "render_tree",
    "to_chrome_trace",
    "verify_invocation",
    "verify_records",
    "write_trace_json",
]
