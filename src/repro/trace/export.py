"""Span exporters: Chrome ``trace_event`` JSON and a plain-text tree.

The Chrome format (one complete ``"ph": "X"`` event per span, microsecond
timestamps) loads in ``chrome://tracing`` and Perfetto; each trace root gets
its own ``tid`` so its subtree renders as one flamegraph track.  The text
tree is the same information for terminals.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from repro.trace.span import Span


def _one_or_many(spans: Union[Span, Iterable[Span]]) -> List[Span]:
    if isinstance(spans, Span):
        return [spans]
    return list(spans)


def chrome_trace_events(spans: Union[Span, Iterable[Span]]
                        ) -> List[Dict[str, Any]]:
    """Flatten span trees into Chrome ``trace_event`` complete events."""
    events: List[Dict[str, Any]] = []
    for tid, root in enumerate(_one_or_many(spans), start=1):
        for span in root.walk():
            start = span.start_ms if span.start_ms is not None else 0.0
            end = span.end_ms if span.end_ms is not None else start
            args = dict(span.attrs)
            args["trace_id"] = span.trace_id
            if span.phase:
                args["phase"] = span.phase
            events.append({
                "name": span.name,
                "cat": span.kind or span.phase or "span",
                "ph": "X",
                "ts": start * 1000.0,       # trace_event wants microseconds
                "dur": (end - start) * 1000.0,
                "pid": 1,
                "tid": tid,
                "args": args,
            })
    return events


def to_chrome_trace(spans: Union[Span, Iterable[Span]]) -> Dict[str, Any]:
    """The full ``trace_event`` JSON object for *spans*."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.trace",
                      "clock": "simulated-ms"},
    }


def write_trace_json(spans: Union[Span, Iterable[Span]], path) -> int:
    """Write the Chrome trace JSON for *spans* to *path*; returns the
    number of events written."""
    payload = to_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return len(payload["traceEvents"])


def _attr_cells(span: Span) -> str:
    cells = []
    if span.phase:
        cells.append(f"phase={span.phase}")
    cells.extend(f"{key}={value}" for key, value in span.attrs.items())
    return ("  [" + " ".join(cells) + "]") if cells else ""


def render_tree(span: Span, indent: str = "  ") -> str:
    """A flamegraph-style text rendering of one span tree."""
    lines = [f"trace {span.trace_id}"]

    def _render(node: Span, depth: int) -> None:
        start = node.start_ms if node.start_ms is not None else 0.0
        end = node.end_ms if node.end_ms is not None else start
        lines.append(
            f"{indent * depth}{node.name:<18} "
            f"{start:12.3f} ..{end:12.3f}  "
            f"({node.duration_ms:10.3f} ms){_attr_cells(node)}")
        for child in node.children:
            _render(child, depth + 1)

    _render(span, 0)
    return "\n".join(lines)
