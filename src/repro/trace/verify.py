"""Trace invariants: span trees and invocation records must agree.

The platform derives each record's Fig 6/7 breakdown *from* its span tree
(:func:`phase_breakdown`), so the derived and recorded numbers are equal by
construction; :func:`verify_invocation` asserts that, plus structural
well-formedness, for any record:

* the root ``invoke`` span's duration equals the record's end-to-end
  latency **exactly** (both are the same ``completed - submitted`` wall
  delta on the DES clock);
* recomputing the breakdown from the span tree reproduces the record's
  ``startup_ms`` / ``exec_ms`` / ``other_ms`` / ``queue_wait_ms`` exactly;
* children nest inside their parents and siblings are monotone and
  non-overlapping (to a 1e-9 float epsilon);
* the top-level stage spans cover the root span (1e-6 tolerance — stage
  boundaries are zero-gap, only float summation noise remains).

This module is duck-typed over records (any object with the
``InvocationRecord`` fields) so it can sit below ``repro.platforms`` in the
import graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceInvariantError
from repro.trace.span import Span

#: Sibling/nesting slack: pure float noise, no simulated stage is this short.
EPS_TREE = 1e-9
#: Coverage slack: summing stage durations is not associative with the
#: end-to-end wall delta.
EPS_COVERAGE = 1e-6


@dataclass(frozen=True)
class PhaseBreakdown:
    """One invocation's latency split, derived purely from its span tree."""

    startup_ms: float
    exec_ms: float
    other_ms: float
    queue_ms: float
    chain_ms: float

    @property
    def total_ms(self) -> float:
        """Start-up + exec + other (the height of one Fig 6/7 bar)."""
        return self.startup_ms + self.exec_ms + self.other_ms


def _acquire_other_ms(span: Span) -> float:
    """Time inside an acquire subtree explicitly tagged ``phase="other"``.

    A tagged span contributes its whole duration (no double count of its
    children); nested ``invoke`` spans are a different record's business and
    are not descended into.
    """
    total = 0.0
    for child in span.children:
        if child.kind == "invoke":
            continue
        if child.phase == "other":
            total += child.duration_ms
        else:
            total += _acquire_other_ms(child)
    return total


def _nested_invoke_ms(span: Span) -> float:
    """Duration of top-most nested ``invoke`` spans (synchronous chain hops)."""
    total = 0.0
    for child in span.children:
        if child.kind == "invoke":
            total += child.duration_ms
        else:
            total += _nested_invoke_ms(child)
    return total


def phase_breakdown(invoke_span: Span) -> PhaseBreakdown:
    """Derive the start-up / exec / other split from one ``invoke`` span.

    * ``frontend``, ``placement``, ``queue`` and ``admission`` stages are
      control-plane ("other") time (placement is an instantaneous decision
      today, so it contributes zero; ``queue`` and ``admission`` also
      count as queue time);
    * the ``acquire`` stage is start-up, minus any descendant explicitly
      tagged ``phase="other"`` (e.g. Fireworks' parameter publish);
    * the ``exec`` stage is in-guest execution, minus nested ``invoke``
      spans (a chain hop's time belongs to the child record);
    * the ``release`` stage is control-plane time (zero on every modeled
      platform — reclamation is off the critical path);
    * chaos-era stages — ``retry`` (backoff between attempts),
      ``failover`` (zero-width re-dispatch marker) and ``degraded``
      (injected host slowness) — are control-plane ("other") time: the
      platform, not the sandbox, made the request wait.
    """
    startup = exec_ms = other = queue = chain = 0.0
    for child in invoke_span.children:
        if child.name == "frontend":
            other += child.duration_ms
        elif child.name == "placement":
            other += child.duration_ms
        elif child.name == "queue":
            queue += child.duration_ms
            other += child.duration_ms
        elif child.name == "admission":
            # Serving layer: time spent in the host's bounded admission
            # queue waiting for a capacity slot (repro.autoscale) — queue
            # time the platform charged, like the core-pool "queue" stage.
            queue += child.duration_ms
            other += child.duration_ms
        elif child.name == "acquire":
            extra = _acquire_other_ms(child)
            startup += child.duration_ms - extra
            other += extra
        elif child.name == "exec":
            hops = _nested_invoke_ms(child)
            chain += hops
            exec_ms += child.duration_ms - hops
        elif child.name == "release":
            other += child.duration_ms
        elif child.name in ("retry", "failover", "degraded"):
            other += child.duration_ms
    return PhaseBreakdown(startup_ms=startup, exec_ms=exec_ms,
                          other_ms=other, queue_ms=queue, chain_ms=chain)


def check_well_formed(span: Span) -> None:
    """Assert *span*'s subtree is closed, nested, and sibling-monotone."""
    if not span.closed:
        raise TraceInvariantError(f"{span!r} is not closed")
    if span.end_ms < span.start_ms:  # pragma: no cover - Tracer forbids it
        raise TraceInvariantError(f"{span!r} ends before it starts")
    previous_end = None
    for child in span.children:
        if not child.closed:
            raise TraceInvariantError(f"{child!r} (under {span.name}) "
                                      "is not closed")
        if child.start_ms < span.start_ms - EPS_TREE or \
                child.end_ms > span.end_ms + EPS_TREE:
            raise TraceInvariantError(
                f"{child!r} escapes its parent {span!r}")
        if previous_end is not None and \
                child.start_ms < previous_end - EPS_TREE:
            raise TraceInvariantError(
                f"{child!r} overlaps its preceding sibling "
                f"(ends {previous_end}) under {span.name!r}")
        previous_end = child.end_ms
        check_well_formed(child)


def verify_invocation(record) -> PhaseBreakdown:
    """Assert *record* and its span tree tell the same story; recurses into
    chain children.  Returns the span-derived breakdown."""
    span = getattr(record, "span", None)
    if span is None:
        raise TraceInvariantError(
            f"record for {record.function!r} has no span attached")
    check_well_formed(span)
    if span.trace_id != record.trace_id:
        raise TraceInvariantError(
            f"{record.function!r}: span trace id {span.trace_id!r} != "
            f"record trace id {record.trace_id!r}")

    end_to_end = record.end_to_end_ms
    if span.duration_ms != end_to_end:
        raise TraceInvariantError(
            f"{record.function!r}: root span duration {span.duration_ms!r} "
            f"!= recorded end-to-end {end_to_end!r}")

    breakdown = phase_breakdown(span)
    recorded = (record.startup_ms, record.exec_ms, record.other_ms,
                record.queue_wait_ms)
    derived = (breakdown.startup_ms, breakdown.exec_ms, breakdown.other_ms,
               breakdown.queue_ms)
    if derived != recorded:
        raise TraceInvariantError(
            f"{record.function!r}: span-derived breakdown {derived!r} != "
            f"recorded {recorded!r}")

    covered = sum(child.duration_ms for child in span.children)
    if abs(covered - span.duration_ms) > EPS_COVERAGE:
        raise TraceInvariantError(
            f"{record.function!r}: stage spans cover {covered}ms of a "
            f"{span.duration_ms}ms invocation")

    for child in record.children:
        verify_invocation(child)
    return breakdown


def verify_records(records) -> int:
    """Verify every record in *records*; returns how many were checked."""
    count = 0
    for record in records:
        verify_invocation(record)
        count += 1
    return count
