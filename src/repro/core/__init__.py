"""Fireworks core: the paper's contribution (§3)."""

from repro.core.annotator import (AnnotatedSource, annotate, annotate_nodejs,
                                  annotate_python)
from repro.core.fireworks import FireworksPlatform
from repro.core.installer import Installer, InstallReport
from repro.core.microvm_manager import MicroVMManager
from repro.core.parameter_passer import ParameterPasser, topic_for

__all__ = [
    "AnnotatedSource",
    "FireworksPlatform",
    "InstallReport",
    "Installer",
    "MicroVMManager",
    "ParameterPasser",
    "annotate",
    "annotate_nodejs",
    "annotate_python",
    "topic_for",
]
