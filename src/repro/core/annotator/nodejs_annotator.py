"""Automatic source annotation for Node.js functions (§3.2).

V8 has no decorator syntax, so the Node.js annotator works differently from
the Python one: it scans the source for top-level function declarations
(``function name(...)``, ``const name = (...) => ...``, and
``exports.name = function ...``), then emits a preamble/epilogue that

* calls V8's optimization hooks (``%PrepareFunctionForOptimization`` /
  ``%OptimizeFunctionOnNextCall`` — the "comparable annotation
  opportunities" of §3.2) for each user function, and
* adds the same ``__fireworks_*`` install/resume scaffolding as Figure 3,
  with the parameter fetch going through the per-fcID Kafka topic.

The scanner is a small tokenizer, not a full JS parser: it strips strings
and comments first so declarations inside them are not picked up.
"""

from __future__ import annotations

import re
from typing import List

from repro.core.annotator.common import (GATEWAY_IP, KAFKA_PORT,
                                         AnnotatedSource)
from repro.errors import AnnotationError

_FUNCTION_DECL = re.compile(
    r"^\s*(?:async\s+)?function\s+([A-Za-z_$][\w$]*)\s*\(", re.MULTILINE)
_ARROW_DECL = re.compile(
    r"^\s*(?:const|let|var)\s+([A-Za-z_$][\w$]*)\s*=\s*(?:async\s*)?"
    r"(?:\([^)]*\)|[A-Za-z_$][\w$]*)\s*=>", re.MULTILINE)
_EXPORTS_DECL = re.compile(
    r"^\s*(?:module\.)?exports\.([A-Za-z_$][\w$]*)\s*=\s*"
    r"(?:async\s+)?function", re.MULTILINE)

_STRING_OR_COMMENT = re.compile(
    r"//[^\n]*"            # line comment
    r"|/\*.*?\*/"          # block comment
    r"|'(?:\\.|[^'\\])*'"  # single-quoted string
    r'|"(?:\\.|[^"\\])*"'  # double-quoted string
    r"|`(?:\\.|[^`\\])*`",  # template literal (no nesting)
    re.DOTALL)


def _strip_strings_and_comments(source: str) -> str:
    def blank(match: re.Match) -> str:
        # Preserve newlines so ^-anchored patterns keep working.
        return "".join(ch if ch == "\n" else " " for ch in match.group(0))
    return _STRING_OR_COMMENT.sub(blank, source)


def _balanced_braces(source: str) -> bool:
    depth = 0
    for char in _strip_strings_and_comments(source):
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


def find_function_names(source: str) -> List[str]:
    """Top-level-ish function names declared in *source*, in order."""
    stripped = _strip_strings_and_comments(source)
    names: List[str] = []
    for pattern in (_FUNCTION_DECL, _ARROW_DECL, _EXPORTS_DECL):
        for match in pattern.finditer(stripped):
            name = match.group(1)
            if name not in names:
                names.append(name)
    return names


def _scaffolding_source(function_names: List[str], entry_point: str,
                        service_name: str) -> str:
    prepare = "\n".join(
        f"    %PrepareFunctionForOptimization({name});\n"
        f"    {name}(defaultParams);\n"
        f"    %OptimizeFunctionOnNextCall({name});\n"
        f"    {name}(defaultParams);" for name in function_names)
    return f"""

// ---- Fireworks scaffolding (added by the code annotator) ----
const __fireworks_http = require('http');
const {{ execSync: __fireworks_execSync }} = require('child_process');

function __fireworks_jit() {{
    const defaultParams = {{}};
{prepare}
}}

function __fireworks_mmdsGet(key) {{
    return __fireworks_execSync(
        'curl -s http://169.254.169.254/' + key).toString();
}}

function __fireworks_snapshot() {{
    __fireworks_http.get(
        'http://{GATEWAY_IP}/?snapshot=y&name={service_name}' +
        '&srcfcID=' + __fireworks_mmdsGet('srcfcID'));
}}

function __fireworks_main() {{
    __fireworks_jit();
    __fireworks_snapshot();
    // ---- snapshot point: below runs on each invocation ----
    const fcID = __fireworks_mmdsGet('fcID');
    const userParams = __fireworks_execSync(
        'kafkacat -C -b {GATEWAY_IP}:{KAFKA_PORT} -t topic' + fcID +
        ' -o -1 -c 1').toString();
    {entry_point}(userParams);
}}

__fireworks_main();
"""


def annotate_nodejs(source: str, entry_point: str = "main",
                    service_name: str = "function") -> AnnotatedSource:
    """Annotate a Node.js serverless function for Fireworks.

    Raises :class:`AnnotationError` on unbalanced braces, no functions, or
    a missing entry point.
    """
    if not _balanced_braces(source):
        raise AnnotationError("Node.js source has unbalanced braces")
    function_names = find_function_names(source)
    if not function_names:
        raise AnnotationError("source defines no functions")
    if any(name.startswith("__fireworks") for name in function_names):
        raise AnnotationError(
            "user functions collide with the __fireworks namespace")
    if entry_point not in function_names:
        raise AnnotationError(
            f"entry point {entry_point!r} not found; source defines "
            f"{function_names!r}")
    annotated = ("// Run with --allow-natives-syntax (V8 optimization hooks)\n"
                 + source
                 + _scaffolding_source(function_names, entry_point,
                                       service_name))
    return AnnotatedSource(
        language="nodejs",
        original=source,
        annotated=annotated,
        functions=tuple(function_names),
        entry_point=entry_point,
    )
