"""Automatic source annotation for Python functions (§3.2, Figure 3).

This is a *real* source-to-source transformer: it parses the user's handler
with :mod:`ast`, adds ``@jit(cache=True)`` (Numba) to every top-level
function, and appends the Fireworks scaffolding —

* ``__fireworks_jit()``     — calls every user function once with default
  parameters so Numba compiles them (Lines 7-8 of Figure 3);
* ``__fireworks_snapshot()`` — the HTTP request to the host's Firecracker
  API asking for a VM snapshot (Lines 11-14);
* ``__fireworks_main()``    — the new program entry: JIT, snapshot, then on
  resume fetch parameters from the Kafka topic for this microVM's fcID and
  call the original entry (Lines 17-29).

The emitted source is valid Python (tests compile it), so a real deployment
could execute it verbatim inside the guest.
"""

from __future__ import annotations

import ast
from typing import List

from repro.core.annotator.common import (GATEWAY_IP, KAFKA_PORT,
                                         AnnotatedSource)
from repro.errors import AnnotationError

_JIT_DECORATOR = "jit"


def _has_jit_decorator(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and \
                isinstance(decorator.func, ast.Name) and \
                decorator.func.id == _JIT_DECORATOR:
            return True
        if isinstance(decorator, ast.Name) and \
                decorator.id == _JIT_DECORATOR:
            return True
    return False


def _jit_decorator_node() -> ast.Call:
    return ast.Call(
        func=ast.Name(id=_JIT_DECORATOR, ctx=ast.Load()),
        args=[],
        keywords=[ast.keyword(arg="cache",
                              value=ast.Constant(value=True))])


def _scaffolding_source(function_names: List[str], entry_point: str,
                        service_name: str) -> str:
    jit_calls = "\n".join(
        f"    {name}(default_params)" for name in function_names)
    return f'''

def __fireworks_jit():
    """Trigger Numba JIT compilation of all user functions (Figure 3)."""
    default_params = {{}}
{jit_calls}


def __fireworks_snapshot():
    """Ask the host to create a VM snapshot via the Firecracker API."""
    ploads = {{'snapshot': 'y', 'name': {service_name!r},
              'srcfcID': __fireworks_mmds_get('srcfcID')}}
    requests.get('http://{GATEWAY_IP}', params=ploads)


def __fireworks_mmds_get(key):
    """Read microVM metadata (MMDS) — how clones learn their identity."""
    return requests.get('http://169.254.169.254/' + key).text


def __fireworks_main():
    """Where execution starts at install time and resumes on invocation."""
    __fireworks_jit()
    __fireworks_snapshot()
    # ---- snapshot point: everything below runs on each invocation ----
    fc_id = __fireworks_mmds_get('fcID')
    user_params = subprocess.check_output(
        'kafkacat -C -b {GATEWAY_IP}:{KAFKA_PORT} -t topic' + str(fc_id) +
        ' -o -1 -c 1', shell=True).decode('utf-8')
    {entry_point}(user_params)


if __name__ == '__main__':
    __fireworks_main()
'''


def annotate_python(source: str, entry_point: str = "main",
                    service_name: str = "function") -> AnnotatedSource:
    """Annotate a Python serverless function for Fireworks.

    Raises :class:`AnnotationError` when the source does not parse or the
    entry point function is missing.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise AnnotationError(f"Python source does not parse: {exc}") from exc

    function_names: List[str] = []
    async_names: List[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("__fireworks"):
                raise AnnotationError(
                    f"user function {node.name!r} collides with the "
                    "Fireworks namespace")
            if isinstance(node, ast.AsyncFunctionDef):
                # Numba cannot compile coroutines; Fireworks leaves async
                # handlers interpreted (and says so), but the entry point
                # must be JITtable or the whole design is moot.
                async_names.append(node.name)
                continue
            function_names.append(node.name)
            if not _has_jit_decorator(node):
                node.decorator_list.insert(0, _jit_decorator_node())
        # Methods inside classes and nested defs are compiled with their
        # owner by Numba; only module-level functions get annotated here.

    if entry_point in async_names:
        raise AnnotationError(
            f"entry point {entry_point!r} is async: Numba cannot compile "
            "coroutines, so a post-JIT snapshot would snapshot nothing — "
            "make the handler synchronous")
    if not function_names:
        raise AnnotationError("source defines no top-level functions")
    if entry_point not in function_names:
        raise AnnotationError(
            f"entry point {entry_point!r} not found; source defines "
            f"{function_names!r}")

    imports = ast.parse(
        "from numba import jit\nimport requests\nimport subprocess\n")
    tree.body = imports.body + tree.body
    ast.fix_missing_locations(tree)

    annotated = (ast.unparse(tree)
                 + _scaffolding_source(function_names, entry_point,
                                       service_name))
    # The transform must emit valid Python.
    try:
        ast.parse(annotated)
    except SyntaxError as exc:  # pragma: no cover - would be a bug here
        raise AnnotationError(
            f"annotator produced invalid Python: {exc}") from exc

    return AnnotatedSource(
        language="python",
        original=source,
        annotated=annotated,
        functions=tuple(function_names),
        entry_point=entry_point,
    )
