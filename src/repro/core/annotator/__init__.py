"""The code annotator: source-to-source Fireworks instrumentation (§3.2)."""

from repro.core.annotator.common import AnnotatedSource
from repro.core.annotator.nodejs_annotator import (annotate_nodejs,
                                                   find_function_names)
from repro.core.annotator.python_annotator import annotate_python
from repro.errors import AnnotationError


def annotate(source: str, language: str, entry_point: str = "main",
             service_name: str = "function") -> AnnotatedSource:
    """Annotate *source* for the given language."""
    if language == "python":
        return annotate_python(source, entry_point, service_name)
    if language == "nodejs":
        return annotate_nodejs(source, entry_point, service_name)
    raise AnnotationError(f"no annotator for language {language!r}")


__all__ = ["AnnotatedSource", "annotate", "annotate_nodejs",
           "annotate_python", "find_function_names"]
