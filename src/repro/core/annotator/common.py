"""Shared types for the code annotator (§3.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import AnnotationError


@dataclass(frozen=True)
class AnnotatedSource:
    """The result of annotating a user's serverless function source."""

    language: str
    original: str
    annotated: str
    functions: Tuple[str, ...]   # every function the annotation JITs
    entry_point: str             # the serverless entry (Figure 3's `main`)

    def __post_init__(self) -> None:
        if self.entry_point not in self.functions:
            raise AnnotationError(
                f"entry point {self.entry_point!r} is not among the "
                f"annotated functions {self.functions!r}")


GATEWAY_IP = "172.17.0.1"
KAFKA_PORT = 9092
