"""The parameter passer: Kafka-based argument delivery (§3.6).

A restored snapshot has exactly the memory it was created with, so arguments
cannot live in guest memory.  Fireworks publishes them to a per-instance
Kafka topic *before* resuming the microVM; the resumed guest learns its fcID
from MMDS and consumes the newest record from ``topic<fcID>``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.config import FireworksConfig
from repro.errors import BusError
from repro.platforms.bus import MessageBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


def topic_for(fc_id: str) -> str:
    """Figure 3 line 24: the topic name is ``topic`` + fcID."""
    return f"topic{fc_id}"


class ParameterPasser:
    """Publishes and fetches invocation arguments over the message bus."""

    def __init__(self, sim: "Simulation", bus: MessageBus,
                 config: FireworksConfig, faults=None) -> None:
        self.sim = sim
        self.bus = bus
        self.config = config
        self.faults = faults  # optional FaultInjector

    def publish(self, fc_id: str, params: Dict[str, Any]):
        """Host side: enqueue *params* before resuming the snapshot."""
        yield self.sim.timeout(self.config.param_publish_ms)
        self.bus.produce(topic_for(fc_id), dict(params),
                         timestamp_ms=self.sim.now)

    def fetch(self, fc_id: str, fault_key: str = ""):
        """Guest side: ``kafkacat ... -o -1 -c 1`` after the snapshot point.

        Returns the parameters.  Raises :class:`BusError` if the host never
        published (a control-plane bug Fireworks must not mask).  An armed
        ``param-fetch`` fault (broker hiccup) surfaces after the consume
        timeout elapses; the caller retries.
        """
        yield self.sim.timeout(self.config.param_fetch_ms)
        if self.faults is not None:
            self.faults.check("param-fetch", fault_key or fc_id)
        record = self.bus.consume_latest(topic_for(fc_id))
        if not isinstance(record.value, dict):
            raise BusError(
                f"malformed parameter record on {topic_for(fc_id)!r}")
        return record.value
