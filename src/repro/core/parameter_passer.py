"""The parameter passer: Kafka-based argument delivery (§3.6).

A restored snapshot has exactly the memory it was created with, so arguments
cannot live in guest memory.  Fireworks publishes them to a per-instance
Kafka topic *before* resuming the microVM; the resumed guest learns its fcID
from MMDS and consumes the newest record from ``topic<fcID>``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.config import FireworksConfig
from repro.errors import BusError
from repro.platforms.bus import MessageBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


def topic_for(fc_id: str) -> str:
    """Figure 3 line 24: the topic name is ``topic`` + fcID."""
    return f"topic{fc_id}"


class ParameterPasser:
    """Publishes and fetches invocation arguments over the message bus."""

    def __init__(self, sim: "Simulation", bus: MessageBus,
                 config: FireworksConfig, faults=None) -> None:
        self.sim = sim
        self.bus = bus
        self.config = config
        self.faults = faults  # optional FaultInjector
        # fcID -> offset of the record publish() appended.  fetch() reads
        # *that* record rather than "the newest", so a record produced on
        # the topic between publish and fetch (a retried duplicate, an
        # operator poking the topic) cannot hand the guest stale or foreign
        # arguments.
        self._published: Dict[str, int] = {}

    def publish(self, fc_id: str, params: Dict[str, Any]):
        """Host side: enqueue *params* before resuming the snapshot."""
        yield self.sim.timeout(self.config.param_publish_ms)
        record = self.bus.produce(topic_for(fc_id), dict(params),
                                  timestamp_ms=self.sim.now)
        self._published[fc_id] = record.offset

    def fetch(self, fc_id: str, fault_key: str = ""):
        """Guest side: consume the published record after the snapshot point.

        Reads the exact offset the matching :meth:`publish` wrote (Figure
        3's ``kafkacat -o -1 -c 1`` is only equivalent when nothing else
        touched the topic).  Returns the parameters.  Raises
        :class:`BusError` if the host never published (a control-plane bug
        Fireworks must not mask).  An armed ``param-fetch`` fault (broker
        hiccup) surfaces after the consume timeout elapses; the caller
        retries.
        """
        yield self.sim.timeout(self.config.param_fetch_ms)
        if self.faults is not None:
            self.faults.check("param-fetch", fault_key or fc_id)
        topic = topic_for(fc_id)
        offset = self._published.get(fc_id)
        if offset is None:
            # Nothing published through this passer — fall back to the
            # paper's literal "newest record" consume (errors when empty).
            record = self.bus.consume_latest(topic)
        else:
            record = self.bus.consume_at(topic, offset)
        if not isinstance(record.value, dict):
            raise BusError(
                f"malformed parameter record on {topic!r}")
        self._published.pop(fc_id, None)
        return record.value
