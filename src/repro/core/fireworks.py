"""The Fireworks serverless platform (§3) — the paper's contribution.

Installation creates a VM-level *post-JIT* snapshot of every function;
invocation publishes the arguments to a per-instance Kafka topic, wires a
network namespace for the clone, writes its identity into MMDS, restores the
snapshot, and the resumed guest fetches the arguments and runs the original
entry point — already loaded, already JITted (Figure 2).

There is no cold/warm distinction: Fireworks always resumes from the
snapshot (§5.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.installer import Installer, InstallReport
from repro.core.microvm_manager import MicroVMManager
from repro.core.parameter_passer import ParameterPasser
from repro.errors import PlatformError
from repro.faults import (FaultInjector, InjectedFault,
                          SnapshotCorruptedError)
from repro.platforms.base import MODE_SNAPSHOT, ServerlessPlatform
from repro.sandbox.worker import Worker
from repro.snapshot.image import SnapshotImage
from repro.snapshot.prefetch import ReapRecorder
from repro.snapshot.restorer import POLICY_DEMAND
from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore
from repro.workloads.base import FunctionSpec


class FireworksPlatform(ServerlessPlatform):
    """Fireworks: VM isolation, snapshot+JIT performance (Table 1, last row)."""

    name = "fireworks"
    isolation_label = "High (VM)"
    performance_label = "Extreme (snapshot+JIT)"
    memory_label = "Extreme (snapshot+JIT)"
    supports_chains = True

    #: How often a corrupted snapshot is regenerated before giving up.
    MAX_RESTORE_ATTEMPTS = 2
    #: How often the guest retries a failed parameter fetch (§3.6).
    MAX_PARAM_FETCH_ATTEMPTS = 3
    PARAM_FETCH_BACKOFF_MS = 1.0

    def __init__(self, *args, restore_policy: str = POLICY_DEMAND,
                 faults: Optional[FaultInjector] = None,
                 **kwargs) -> None:
        super().__init__(*args, faults=faults, **kwargs)
        self.restore_policy = restore_policy
        self.installer = Installer(self.sim, self.params, self.host_memory,
                                   self.bridge)
        self.manager = MicroVMManager(self.sim, self.params,
                                      self.host_memory, self.bridge)
        self.manager.restorer.faults = faults
        self.passer = ParameterPasser(self.sim, self.bus,
                                      self.params.fireworks, faults=faults)
        self.restore_failures = 0
        self.param_fetch_retries = 0
        self.store = SnapshotStore(
            BlockDevice(self.params.host.disk_gb * 1024.0, name="fw-ssd"),
            capacity_images=self.params.snapshot.store_capacity_images)
        self.install_reports: Dict[str, InstallReport] = {}
        # REAP-style working-set recording (§7): profiles are captured after
        # each invocation and consulted by POLICY_REAP restores.
        self.recorder = ReapRecorder()
        self.manager.restorer.recorder = self.recorder

    # -- installation phase (§3.1 steps 1-4) ------------------------------------
    def _install_backend(self, spec: FunctionSpec):
        report = yield from self.installer.install(spec)
        self.store.put(spec.name, report.image)
        self.install_reports[spec.name] = report

    def image_for(self, name: str) -> SnapshotImage:
        """The stored snapshot image for *name* (refreshes LRU recency)."""
        image = self.store.get(name)
        if not isinstance(image, SnapshotImage):  # pragma: no cover
            raise PlatformError(f"corrupt snapshot store entry for {name!r}")
        return image

    # -- invocation phase (§3.1 steps 5-8) ------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str):
        del mode  # Fireworks has no cold/warm distinction (§5.1).
        tracer = self.sim.tracer
        image = self.image_for(spec.name)
        fc_id = self.manager.next_fc_id()

        # (5) put the arguments into the parameter passer queue *before*
        # resuming, so the guest's kafkacat finds them.  Publishing is
        # control-plane work, not start-up: tag it phase="other".
        started = self.sim.now
        with tracer.span("publish", phase="other", fc_id=fc_id):
            yield from self.passer.publish(fc_id, {"function": spec.name})
        publish_ms = self.sim.now - started

        # (6)+(7) network, metadata, restore.  A corrupted image is
        # regenerated once (the same §6 machinery ASLR re-randomization
        # uses) before the restore is retried.
        for attempt in range(1, self.MAX_RESTORE_ATTEMPTS + 1):
            try:
                worker = yield from self.manager.launch_clone(
                    image, fc_id, policy=self.restore_policy)
                break
            except SnapshotCorruptedError:
                self.restore_failures += 1
                if attempt == self.MAX_RESTORE_ATTEMPTS:
                    raise
                with tracer.span("retry", kind="retry", target="restore",
                                 attempt=attempt, fc_id=fc_id):
                    image = yield from self.regenerate_snapshot(spec.name)

        # (8) resumed guest reads its fcID and fetches the parameters,
        # retrying transient broker failures.
        for attempt in range(1, self.MAX_PARAM_FETCH_ATTEMPTS + 1):
            try:
                with tracer.span("param-fetch", fc_id=fc_id,
                                 attempt=attempt):
                    params = yield from self.passer.fetch(
                        fc_id, fault_key=spec.name)
                break
            except InjectedFault as fault:
                if fault.kind != "param-fetch" or \
                        attempt == self.MAX_PARAM_FETCH_ATTEMPTS:
                    raise
                self.param_fetch_retries += 1
                with tracer.span("retry", kind="retry",
                                 target="param-fetch", attempt=attempt,
                                 fc_id=fc_id):
                    yield self.sim.timeout(self.PARAM_FETCH_BACKOFF_MS)
        if params.get("function") != spec.name:
            raise PlatformError(
                f"parameter passer mismatch: expected {spec.name!r}, "
                f"got {params!r}")
        return worker, MODE_SNAPSHOT, publish_ms

    def _release_worker(self, spec: FunctionSpec, worker: Worker):
        if worker.invocations > 0:
            self.recorder.record(self.image_for(spec.name), worker,
                                 now_ms=self.sim.now)
        if not self.retain_workers:
            # Clone reclamation happens off the response's critical path.
            self.sim.process(self.manager.retire(worker),
                             name=f"retire:{worker.sandbox.name}")
        return
        yield  # pragma: no cover

    # -- §6 mitigations -----------------------------------------------------------
    def regenerate_snapshot(self, name: str):
        """Periodically re-create a function's snapshot (ASLR entropy, §6).

        A simulation generator: writes a fresh-generation image; clones
        restored afterwards share *new* segments, not the old ones.
        """
        old_image = self.image_for(name)
        new_image = old_image.clone_for_regeneration()
        write_ms = (self.params.snapshot.create_base_ms
                    + new_image.size_mb * self.params.snapshot.create_per_mb_ms)
        yield self.sim.timeout(write_ms)
        self.store.put(name, new_image)
        return new_image
