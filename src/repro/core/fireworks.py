"""The Fireworks serverless platform (§3) — the paper's contribution.

Installation creates a VM-level *post-JIT* snapshot of every function;
invocation publishes the arguments to a per-instance Kafka topic, wires a
network namespace for the clone, writes its identity into MMDS, restores the
snapshot, and the resumed guest fetches the arguments and runs the original
entry point — already loaded, already JITted (Figure 2).

There is no cold/warm distinction: Fireworks always resumes from the
snapshot (§5.1).

Snapshot machinery is per-host: each cluster host has its own installer,
microVM manager (restorer), and snapshot store.  Installation seeds the
function's home host; a restore placed on a host without the image first
pays the modeled cross-host snapshot transfer — the cost the
``snapshot-locality`` placement policy exists to avoid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.installer import Installer, InstallReport
from repro.core.microvm_manager import MicroVMManager
from repro.core.parameter_passer import ParameterPasser
from repro.errors import PlatformError, SnapshotNotFoundError
from repro.faults import (FaultInjector, InjectedFault,
                          SnapshotCorruptedError)
from repro.platforms.base import MODE_SNAPSHOT, MODE_WARM, ServerlessPlatform
from repro.platforms.pooling import WarmEntry
from repro.sandbox.worker import Worker
from repro.snapshot.image import SnapshotImage
from repro.snapshot.prefetch import ReapRecorder
from repro.snapshot.restorer import POLICY_DEMAND
from repro.storage.snapshot_store import SnapshotStore
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Host


class FireworksPlatform(ServerlessPlatform):
    """Fireworks: VM isolation, snapshot+JIT performance (Table 1, last row)."""

    name = "fireworks"
    isolation_label = "High (VM)"
    performance_label = "Extreme (snapshot+JIT)"
    memory_label = "Extreme (snapshot+JIT)"
    supports_chains = True

    #: How often a corrupted snapshot is regenerated before giving up.
    MAX_RESTORE_ATTEMPTS = 2
    #: How often the guest retries a failed parameter fetch (§3.6).
    MAX_PARAM_FETCH_ATTEMPTS = 3
    PARAM_FETCH_BACKOFF_MS = 1.0

    def __init__(self, *args, restore_policy: str = POLICY_DEMAND,
                 faults: Optional[FaultInjector] = None,
                 **kwargs) -> None:
        super().__init__(*args, faults=faults, **kwargs)
        self.restore_policy = restore_policy
        self._installers: Dict[int, Installer] = {}
        self._managers: Dict[int, MicroVMManager] = {}
        self.passer = ParameterPasser(self.sim, self.bus,
                                      self.params.fireworks, faults=faults)
        self.restore_failures = 0
        self.param_fetch_retries = 0
        self.regenerations = 0   # failover regenerations (lost replicas)
        self.install_reports: Dict[str, InstallReport] = {}
        # Autoscaler support: pre-restored live clones parked in a host's
        # warm pool keep the fcID they were launched with — the invoke
        # fast path publishes parameters straight to that topic.
        self._warm_fc_ids: Dict[Worker, tuple] = {}
        self.pool_hits = 0   # invocations served by a pre-restored clone
        # REAP-style working-set recording (§7): profiles are captured after
        # each invocation and consulted by POLICY_REAP / POLICY_LAZY
        # restores and by streaming cross-host transfers.  The recorder is
        # cluster-global — profiles are keyed on image key+generation,
        # which a transferred replica shares.
        self.recorder = ReapRecorder(
            chunk_size_mb=self.params.snapshot.chunk_mb)

    # -- per-host machinery -------------------------------------------------------
    def installer_for(self, host: Host) -> Installer:
        """The installer bound to *host*'s memory and bridge."""
        installer = self._installers.get(host.host_id)
        if installer is None:
            installer = Installer(self.sim, self.params, host.memory,
                                  host.bridge)
            self._installers[host.host_id] = installer
        return installer

    def manager_for(self, host: Host) -> MicroVMManager:
        """The microVM manager (and restorer) bound to *host*."""
        manager = self._managers.get(host.host_id)
        if manager is None:
            # Host 0 keeps the bare "fc" prefix so single-host traces are
            # unchanged; other hosts' fcIDs stay globally unique.
            prefix = "fc" if host.host_id == 0 else f"h{host.host_id}fc"
            manager = MicroVMManager(self.sim, self.params, host.memory,
                                     host.bridge, fc_prefix=prefix)
            manager.restorer.faults = self.faults
            manager.restorer.recorder = self.recorder
            manager.restorer.chaos = self.chaos
            self._managers[host.host_id] = manager
        return manager

    def on_chaos_attached(self) -> None:
        """Wire the chaos controller into restorers built before it
        attached, so they honour its slow-restore windows too."""
        for manager in self._managers.values():
            manager.restorer.chaos = self.chaos

    @property
    def installer(self) -> Installer:
        """Host 0's installer."""
        return self.installer_for(self.cluster.hosts[0])

    @property
    def manager(self) -> MicroVMManager:
        """Host 0's microVM manager."""
        return self.manager_for(self.cluster.hosts[0])

    @property
    def store(self) -> SnapshotStore:
        """Host 0's snapshot store."""
        return self.cluster.hosts[0].store

    # -- installation phase (§3.1 steps 1-4) ------------------------------------
    def _install_backend(self, spec: FunctionSpec, host: Host):
        report = yield from self.installer_for(host).install(spec)
        host.store.put(spec.name, report.image)
        self.install_reports[spec.name] = report

    def image_for(self, name: str, host: Host = None) -> SnapshotImage:
        """The stored snapshot image for *name* on *host* (default host 0);
        refreshes LRU recency."""
        if host is None:
            host = self.cluster.hosts[0]
        image = host.store.get(name)
        if not isinstance(image, SnapshotImage):  # pragma: no cover
            raise PlatformError(f"corrupt snapshot store entry for {name!r}")
        return image

    # -- invocation phase (§3.1 steps 5-8) ------------------------------------------
    def _host_affinity(self, host: Host, function: str) -> bool:
        # Restores are only cheap where the snapshot is already resident.
        return host.store.contains(function)

    def _transfer_working_set_mb(self, image):
        # Streaming transfers ship the recorded working-set chunks first;
        # with no profile yet (or a stale generation) the whole image moves.
        profile = self.recorder.profile_for(image)
        if profile is None:
            return None
        return profile.chunk_bytes_mb(image)

    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        del mode  # Fireworks has no cold/warm distinction (§5.1).
        tracer = self.sim.tracer
        if self.autoscaler is not None:
            # Serving-layer fast path: a clone the autoscaler pre-restored
            # on this host skips image fetch, netns/MMDS wiring and the
            # restore — only parameter publish + fetch remain.
            entry = host.pool.take(spec.name, self.sim.now)
            if entry is not None:
                fc_rec = self._warm_fc_ids.pop(entry.worker, None)
                if fc_rec is not None:
                    # Clones are single-use: tell the scaler so it tops
                    # the pool back up instead of waiting for a tick.
                    self.autoscaler.on_warm_taken(spec.name, host)
                    result = yield from self._invoke_pooled(
                        spec, entry.worker, fc_rec[0])
                    return result
                # Unknown provenance: never serve a clone whose fcID we
                # lost — reclaim it and fall through to a normal restore.
                self.discard_warm(entry, host)
        manager = self.manager_for(host)
        try:
            image = yield from self._fetch_image_to_host(spec.name, host)
        except SnapshotNotFoundError:
            # Every replica died (the home host crashed before the image
            # spread).  With failover on, re-create the snapshot on this
            # host from the installed image's metadata; otherwise the
            # function is simply unavailable.
            if self.chaos is None or not self.chaos.failover \
                    or spec.name not in self.install_reports:
                raise
            image = yield from self._regenerate_on_host(spec.name, host)
        fc_id = manager.next_fc_id()

        # (5) put the arguments into the parameter passer queue *before*
        # resuming, so the guest's kafkacat finds them.  Publishing is
        # control-plane work, not start-up: tag it phase="other".
        started = self.sim.now
        with tracer.span("publish", phase="other", fc_id=fc_id):
            yield from self.passer.publish(fc_id, {"function": spec.name})
        publish_ms = self.sim.now - started

        # (6)+(7) network, metadata, restore.  A corrupted image is
        # regenerated once (the same §6 machinery ASLR re-randomization
        # uses) before the restore is retried.
        for attempt in range(1, self.MAX_RESTORE_ATTEMPTS + 1):
            try:
                worker = yield from manager.launch_clone(
                    image, fc_id, policy=self.restore_policy)
                break
            except SnapshotCorruptedError:
                self.restore_failures += 1
                if attempt == self.MAX_RESTORE_ATTEMPTS:
                    raise
                with tracer.span("retry", kind="retry", target="restore",
                                 attempt=attempt, fc_id=fc_id):
                    image = yield from self.regenerate_snapshot(spec.name,
                                                                host=host)

        # (8) resumed guest reads its fcID and fetches the parameters,
        # retrying transient broker failures.
        for attempt in range(1, self.MAX_PARAM_FETCH_ATTEMPTS + 1):
            try:
                with tracer.span("param-fetch", fc_id=fc_id,
                                 attempt=attempt):
                    params = yield from self.passer.fetch(
                        fc_id, fault_key=spec.name)
                break
            except InjectedFault as fault:
                if fault.kind != "param-fetch" or \
                        attempt == self.MAX_PARAM_FETCH_ATTEMPTS:
                    raise
                self.param_fetch_retries += 1
                with tracer.span("retry", kind="retry",
                                 target="param-fetch", attempt=attempt,
                                 fc_id=fc_id):
                    yield self.sim.timeout(self.PARAM_FETCH_BACKOFF_MS)
        if params.get("function") != spec.name:
            raise PlatformError(
                f"parameter passer mismatch: expected {spec.name!r}, "
                f"got {params!r}")
        return worker, MODE_SNAPSHOT, publish_ms

    def _invoke_pooled(self, spec: FunctionSpec, worker: Worker,
                       fc_id: str):
        """Steps (5)+(8) only: the clone is already restored and waiting.

        Publish the arguments to its topic, let the guest fetch them —
        the restore (and everything before it) was paid off the critical
        path when the autoscaler pre-provisioned the clone.
        """
        tracer = self.sim.tracer
        started = self.sim.now
        with tracer.span("publish", phase="other", fc_id=fc_id,
                         pooled=True):
            yield from self.passer.publish(fc_id, {"function": spec.name})
        publish_ms = self.sim.now - started
        with tracer.span("param-fetch", fc_id=fc_id, attempt=1):
            params = yield from self.passer.fetch(fc_id,
                                                  fault_key=spec.name)
        if params.get("function") != spec.name:
            raise PlatformError(
                f"parameter passer mismatch: expected {spec.name!r}, "
                f"got {params!r}")
        self.pool_hits += 1
        return worker, MODE_WARM, publish_ms

    # -- autoscaler hooks ---------------------------------------------------------
    def provision_warm_on(self, spec: FunctionSpec, host: Host):
        """Pre-restore one clone on *host*, off the critical path.

        The clone is parked *live* (not paused): resuming a paused
        microVM costs more than a snapshot restore, so pausing would turn
        the warm pool into a pessimization.  Its memory is CoW-shared
        with the snapshot, so an idle clone is cheap to keep.
        """
        manager = self.manager_for(host)
        image = yield from self._fetch_image_to_host(spec.name, host)
        fc_id = manager.next_fc_id()
        worker = yield from manager.launch_clone(
            image, fc_id, policy=self.restore_policy)
        self._warm_fc_ids[worker] = (fc_id, host.host_id)
        return WarmEntry(worker, float("inf"), paused=False)

    def discard_warm(self, entry, host: Host) -> None:
        """Retire a pooled clone through its host's manager (netns/NAT
        teardown), like post-invocation reclamation."""
        self._warm_fc_ids.pop(entry.worker, None)
        self.sim.process(self.manager_for(host).retire(entry.worker),
                         name=f"warm-discard:{entry.worker.sandbox.name}")

    def on_host_crash(self, host: Host) -> None:
        """Drop fcID bookkeeping for clones that died with the host (the
        chaos controller already drained and stopped them)."""
        self._warm_fc_ids = {
            worker: rec for worker, rec in self._warm_fc_ids.items()
            if rec[1] != host.host_id}

    def _release_worker(self, spec: FunctionSpec, worker: Worker,
                        host: Host):
        if worker.invocations > 0:
            self.recorder.record(self.image_for(spec.name, host), worker,
                                 now_ms=self.sim.now)
        if not self.retain_workers:
            # Clone reclamation happens off the response's critical path.
            self.sim.process(self.manager_for(host).retire(worker),
                             name=f"retire:{worker.sandbox.name}")
        return
        yield  # pragma: no cover

    # -- §6 mitigations -----------------------------------------------------------
    def regenerate_snapshot(self, name: str, host: Host = None):
        """Periodically re-create a function's snapshot (ASLR entropy, §6).

        A simulation generator: writes a fresh-generation image into
        *host*'s store (default host 0); clones restored afterwards share
        *new* segments, not the old ones.
        """
        if host is None:
            host = self.cluster.hosts[0]
        old_image = self.image_for(name, host)
        new_image = old_image.clone_for_regeneration()
        write_ms = (self.params.snapshot.create_base_ms
                    + new_image.size_mb * self.params.snapshot.create_per_mb_ms)
        yield self.sim.timeout(write_ms)
        host.store.put(name, new_image)
        return new_image

    def _regenerate_on_host(self, name: str, host: Host):
        """Failover regeneration: re-create *name*'s snapshot on *host*.

        The installation report's image is metadata (layout, sizes, JIT
        state) — cloning it for a new generation does not need the dead
        replica's bytes, only the snapshot-creation work (§3.1 step 4).
        The span is untagged, so the time counts as start-up: the
        failover host pays it on the critical path.
        """
        report = self.install_reports[name]
        new_image = report.image.clone_for_regeneration()
        regen_span = self.sim.tracer.span(
            "regenerate", key=name, dst=host.host_id,
            size_mb=new_image.size_mb)
        with regen_span:
            write_ms = (self.params.snapshot.create_base_ms
                        + new_image.size_mb
                        * self.params.snapshot.create_per_mb_ms)
            yield self.sim.timeout(write_ms)
            host.store.put(name, new_image)
        self.regenerations += 1
        return new_image
