"""The microVM manager: snapshot-clone launch with network + metadata wiring.

§3.4-§3.5: before resuming a snapshot, Fireworks creates a network namespace
with a NAT pair (so the clone's snapshotted IP/MAC do not conflict), writes
the clone's identity (fcID) into MMDS, and only then restores the microVM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import CalibratedParameters
from repro.mem.host_memory import HostMemory
from repro.net.bridge import HostBridge
from repro.sandbox.base import STATE_STOPPED
from repro.sandbox.microvm import Mmds
from repro.sandbox.worker import Worker
from repro.snapshot.image import SnapshotImage
from repro.snapshot.restorer import POLICY_DEMAND, Restorer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class MicroVMManager:
    """Creates, restores, and retires Fireworks microVMs."""

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: HostMemory, bridge: HostBridge,
                 fc_prefix: str = "fc") -> None:
        self.sim = sim
        self.params = params
        self.host_memory = host_memory
        self.bridge = bridge
        self.fc_prefix = fc_prefix  # keeps fcIDs unique across per-host managers
        self.restorer = Restorer(sim, params, host_memory)
        self._fc_counter = 0
        self.launched_clones = 0

    def next_fc_id(self) -> str:
        """Allocate the next unique clone id (the guest's fcID)."""
        self._fc_counter += 1
        return f"{self.fc_prefix}{self._fc_counter}"

    def launch_clone(self, image: SnapshotImage, fc_id: str,
                     policy: str = POLICY_DEMAND):
        """Restore a clone of *image* with connectivity and identity.

        A simulation generator returning the ready :class:`Worker`.  Order
        follows §3.4: network first (step 6), identity into MMDS, then
        resume (step 7) — the guest must be able to read its fcID the
        moment it resumes.
        """
        fw = self.params.fireworks
        tracer = self.sim.tracer

        # (6) network namespace + tap + NAT for the clone's snapshotted IP.
        with tracer.span("netns-setup", fc_id=fc_id):
            yield self.sim.timeout(fw.netns_setup_ms)
        endpoint = self.bridge.connect_guest(image.guest_ip, image.guest_mac)

        # Identity via MMDS, written *before* resume so the resumed guest's
        # first metadata read already sees it (§3.4 step order).  The store
        # is created host-side here and handed to the restorer, which wires
        # it into the clone.
        mmds = Mmds()
        with tracer.span("mmds-write", fc_id=fc_id, src=image.key):
            yield self.sim.timeout(fw.mmds_write_ms)
        mmds.put("fcID", fc_id)
        mmds.put("srcfcID", image.key)

        # (7) restore the VM snapshot.  A failed restore must not leak the
        # namespace/NAT wiring set up above.
        try:
            worker = yield from self.restorer.restore(image, policy,
                                                      mmds=mmds)
        except Exception:
            self.bridge.disconnect(endpoint)
            raise
        worker.endpoint = endpoint
        self.launched_clones += 1
        return worker

    def retire(self, worker: Worker):
        """Tear a clone down, releasing network and memory.

        Exception-safe: if the sandbox teardown fails mid-way, the clone's
        guest memory is force-reclaimed and its network endpoint is still
        disconnected — a failed stop must not leak host frames or NAT
        entries.
        """
        try:
            yield from worker.stop()
        except Exception:
            sandbox = worker.sandbox
            if sandbox.state != STATE_STOPPED:
                sandbox.space.unmap_all()
                sandbox.state = STATE_STOPPED
            raise
        finally:
            if worker.endpoint is not None:
                self.bridge.disconnect(worker.endpoint)
                worker.endpoint = None
