"""The microVM manager: snapshot-clone launch with network + metadata wiring.

§3.4-§3.5: before resuming a snapshot, Fireworks creates a network namespace
with a NAT pair (so the clone's snapshotted IP/MAC do not conflict), writes
the clone's identity (fcID) into MMDS, and only then restores the microVM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import CalibratedParameters
from repro.mem.host_memory import HostMemory
from repro.net.bridge import HostBridge
from repro.sandbox.worker import Worker
from repro.snapshot.image import SnapshotImage
from repro.snapshot.restorer import POLICY_DEMAND, Restorer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class MicroVMManager:
    """Creates, restores, and retires Fireworks microVMs."""

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: HostMemory, bridge: HostBridge) -> None:
        self.sim = sim
        self.params = params
        self.host_memory = host_memory
        self.bridge = bridge
        self.restorer = Restorer(sim, params, host_memory)
        self._fc_counter = 0
        self.launched_clones = 0

    def next_fc_id(self) -> str:
        """Allocate the next unique clone id (the guest's fcID)."""
        self._fc_counter += 1
        return f"fc{self._fc_counter}"

    def launch_clone(self, image: SnapshotImage, fc_id: str,
                     policy: str = POLICY_DEMAND):
        """Restore a clone of *image* with connectivity and identity.

        A simulation generator returning the ready :class:`Worker`.  Order
        follows §3.4: network first (step 6), then resume (step 7).
        """
        fw = self.params.fireworks

        # (6) network namespace + tap + NAT for the clone's snapshotted IP.
        yield self.sim.timeout(fw.netns_setup_ms)
        endpoint = self.bridge.connect_guest(image.guest_ip, image.guest_mac)

        # Identity via MMDS, written before resume so the guest can read it.
        yield self.sim.timeout(fw.mmds_write_ms)

        # (7) restore the VM snapshot.  A failed restore must not leak the
        # namespace/NAT wiring set up above.
        try:
            worker = yield from self.restorer.restore(image, policy)
        except Exception:
            self.bridge.disconnect(endpoint)
            raise
        worker.endpoint = endpoint
        worker.sandbox.mmds.put("fcID", fc_id)
        worker.sandbox.mmds.put("srcfcID", image.key)
        self.launched_clones += 1
        return worker

    def retire(self, worker: Worker):
        """Tear a clone down, releasing network and memory."""
        if worker.endpoint is not None:
            self.bridge.disconnect(worker.endpoint)
            worker.endpoint = None
        yield from worker.stop()
