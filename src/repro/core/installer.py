"""The Fireworks installation phase (§3.1 steps 1-4).

Install = annotate the user's source, boot a fresh microVM, load the
annotated function, run ``__fireworks_jit()`` (forced JIT of every user
function), and create the post-JIT VM snapshot right before the original
entry point.  The report keeps the §5.1 timing decomposition ("the npm
package installation process dominates installation time" for Node;
"depends on the complexity of the application due to JIT compilation" for
Python).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import CalibratedParameters
from repro.core.annotator import AnnotatedSource, annotate
from repro.errors import AnnotationError
from repro.mem.host_memory import HostMemory
from repro.net.bridge import HostBridge
from repro.runtime import make_runtime
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_POST_JIT, SnapshotImage
from repro.snapshot.snapshotter import Snapshotter
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


@dataclass(frozen=True)
class InstallReport:
    """Timing decomposition of one installation (§5.1)."""

    function: str
    language: str
    annotate_ms: float
    boot_ms: float          # microVM + guest OS + runtime + app load
    jit_ms: float           # __fireworks_jit(): forced compilation
    snapshot_ms: float      # __fireworks_snapshot(): image creation + write
    image: SnapshotImage
    annotated: AnnotatedSource

    @property
    def total_ms(self) -> float:
        return (self.annotate_ms + self.boot_ms + self.jit_ms
                + self.snapshot_ms)


class Installer:
    """Runs the installation phase for one function."""

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: HostMemory, bridge: HostBridge) -> None:
        self.sim = sim
        self.params = params
        self.host_memory = host_memory
        self.bridge = bridge
        self.snapshotter = Snapshotter(sim, params.snapshot)

    def install(self, spec: FunctionSpec):
        """The whole installation phase (a simulation generator).

        Returns an :class:`InstallReport` carrying the post-JIT image.
        """
        if not spec.source:
            raise AnnotationError(
                f"function {spec.name!r} has no source code to annotate")

        tracer = self.sim.tracer
        with tracer.span("install", kind="install",
                         trace_id=f"install-{spec.name}",
                         function=spec.name, language=spec.language):
            # (2) transform the source code.
            started = self.sim.now
            annotated = annotate(spec.source, spec.language,
                                 service_name=spec.name)
            n_functions = max(1, len(annotated.functions))
            with tracer.span("annotate", functions=n_functions):
                yield self.sim.timeout(
                    self.params.fireworks.annotate_ms_per_function
                    * n_functions)
            annotate_ms = self.sim.now - started

            # (1)+(3) create a microVM ready for the runtime, load the
            # function.
            started = self.sim.now
            microvm = MicroVM(self.sim, self.params, self.host_memory,
                              spec.language, name=f"fw-install-{spec.name}")
            guest_ip, guest_mac = self.bridge.allocate_guest_addresses()
            microvm.assign_guest_addresses(guest_ip, guest_mac)
            worker = Worker(self.sim, microvm,
                            make_runtime(self.sim, self.params,
                                         spec.language))
            yield from worker.cold_start(spec.app)
            boot_ms = self.sim.now - started

            # (4a) __fireworks_jit(): force JIT of all annotated functions.
            started = self.sim.now
            yield from worker.force_jit()
            jit_ms = self.sim.now - started

            # (4b) __fireworks_snapshot(): post-JIT VM snapshot.
            started = self.sim.now
            with tracer.span("snapshot", function=spec.name):
                image = yield from self.snapshotter.create(
                    worker, spec.name, STAGE_POST_JIT)
            snapshot_ms = self.sim.now - started

            # The installer VM is done; clones will serve invocations.
            yield from worker.stop()

        return InstallReport(
            function=spec.name,
            language=spec.language,
            annotate_ms=annotate_ms,
            boot_ms=boot_ms,
            jit_ms=jit_ms,
            snapshot_ms=snapshot_ms,
            image=image,
            annotated=annotated,
        )
