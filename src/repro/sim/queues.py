"""Event queue implementations backing the DES kernel.

Two interchangeable priority queues over entries shaped
``(time, urgent_rank, sequence, payload)``:

:class:`HeapEventQueue`
    The reference implementation — a single binary heap, exactly the
    structure the kernel used before the calendar-queue rewrite.  Kept as
    the ground truth for differential tests and selectable on the kernel
    via ``Simulation(queue="heap")``.

:class:`CalendarEventQueue`
    A calendar queue (Brown 1988) specialised for the simulator's access
    pattern: most events land either *at the current time* (event
    triggers, zero-delay timeouts) or *a short delay ahead* (keep-alive
    timers, service times).  Three tiers:

    * a **deque** of same-time, normal-rank entries at the current pop
      frontier — append/popleft keeps FIFO order because the sequence
      number is assigned monotonically;
    * a **bucket ring** of ``NB`` one-millisecond-wide buckets covering
      the near-term window ``[int(now), int(now) + NB)`` — appends are
      O(1), buckets are sorted lazily when they become the active
      (lowest) bucket;
    * an **overflow heap** for far-future entries and *all* urgent
      (rank-0) entries, so urgency never has to be special-cased in the
      ring.

    Pops take the minimum of the three tier heads by plain tuple
    comparison, which preserves the exact ``(time, rank, sequence)``
    total order of the reference heap — this is the property the golden
    figure hashes depend on, and the property
    ``tests/property/test_kernel_equivalence.py`` checks exhaustively.

The kernel (:mod:`repro.sim.kernel`) inlines the calendar structure
directly onto :class:`Simulation` for speed; this module is the readable,
self-contained specification of that structure and the unit under test
for queue-level property checks.  Keep the two in sync.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

__all__ = ["HeapEventQueue", "CalendarEventQueue", "NB_BUCKETS"]

Entry = Tuple[float, int, int, Any]

_INF = float("inf")

#: Size of the calendar bucket ring (power of two; buckets are 1 ms wide,
#: so the ring covers a 512 ms near-term window).
NB_BUCKETS = 512
_MASK = NB_BUCKETS - 1

#: Below this many pending heap entries (with no bucketed entries), normal
#: pushes go straight to the overflow heap: C-level heapq beats the
#: Python-level bucket machinery until the pending set is large.  Routing
#: never changes pop order (the three-way head comparison enforces the
#: total order across tiers).  Mirrors ``repro.sim.kernel._SMALL_HEAP``.
SMALL_HEAP = 1024


class HeapEventQueue:
    """Reference binary-heap event queue (the pre-rewrite kernel order)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, entry: Entry) -> None:
        """Add *entry*; O(log n)."""
        heappush(self._heap, entry)

    def pop(self) -> Optional[Entry]:
        """Remove and return the minimum entry, or ``None`` when empty."""
        return heappop(self._heap) if self._heap else None

    def peek_time(self) -> float:
        """Time of the minimum entry, or ``inf`` when empty."""
        return self._heap[0][0] if self._heap else _INF

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarEventQueue:
    """Calendar queue: deque + bucket ring + overflow heap.

    Invariants (all proven against the kernel's access pattern, where every
    pushed time is ``>=`` the last popped time):

    * every deque entry has ``time == _dq_time`` and rank 1, in sequence
      order, and ``_dq_time`` is the minimum pending normal-rank time while
      the deque is non-empty;
    * every bucket entry has ``int(time)`` inside the ring window
      ``[int(frontier), int(frontier) + NB)``, so bucket index
      ``int(time) & MASK`` is collision-free across window laps;
    * ``_scan_vb`` is a lower bound on every bucket entry's virtual bucket
      number, making the head scan amortised O(1);
    * the *active* bucket is the lowest non-empty bucket, sorted from
      position ``_apos``; positions before ``_apos`` are already consumed.
    """

    __slots__ = ("_dq", "_dq_time", "_buckets", "_bcount", "_active",
                 "_apos", "_scan_vb", "_heap", "_frontier")

    def __init__(self) -> None:
        self._dq: deque = deque()
        self._dq_time = -1.0
        self._buckets: List[List[Entry]] = [[] for _ in range(NB_BUCKETS)]
        self._bcount = 0
        self._active = -1
        self._apos = 0
        self._scan_vb = 0
        self._heap: List[Entry] = []
        self._frontier = 0.0

    def push(self, entry: Entry) -> None:
        """Add *entry*, routing it to the deque, ring, or heap tier.

        Amortised O(1) for the common kernel access pattern (same-time
        and near-term pushes); O(log n) for urgent or far-future ones.
        """
        t = entry[0]
        if entry[1] == 0:
            # Urgent entries always ride the heap: they are rare, and the
            # three-way head comparison already ranks them correctly.
            heappush(self._heap, entry)
            return
        dq = self._dq
        if dq:
            if t == self._dq_time:
                dq.append(entry)
                return
        elif t == self._frontier:
            self._dq_time = t
            dq.append(entry)
            return
        if not self._bcount and len(self._heap) < SMALL_HEAP:
            heappush(self._heap, entry)
            return
        if t - self._frontier < NB_BUCKETS:  # inf-safe float precheck
            vb = int(t)
            if vb - int(self._frontier) < NB_BUCKETS:
                slot = vb & _MASK
                bucket = self._buckets[slot]
                if slot == self._active:
                    insort(bucket, entry, lo=self._apos)
                else:
                    bucket.append(entry)
                    if vb < self._scan_vb:
                        self._scan_vb = vb
                self._bcount += 1
                return
        heappush(self._heap, entry)

    def _bucket_head(self) -> Entry:
        """Head of the lowest non-empty bucket; activates (sorts) it."""
        buckets = self._buckets
        vbnow = int(self._frontier)
        if self._scan_vb > vbnow:
            vbnow = self._scan_vb
        active = self._active
        for k in range(NB_BUCKETS):
            slot = (vbnow + k) & _MASK
            if slot == active:
                self._scan_vb = vbnow + k
                return buckets[slot][self._apos]
            bucket = buckets[slot]
            if bucket:
                if active >= 0:
                    # A bucket earlier than the active one became
                    # non-empty: demote the active bucket, compacting its
                    # consumed prefix so it can be re-activated later.
                    del buckets[active][: self._apos]
                if len(bucket) > 1:
                    bucket.sort()
                self._active = slot
                self._apos = 0
                self._scan_vb = vbnow + k
                return bucket[0]
        raise AssertionError("calendar queue invariant violated: "
                             "bcount > 0 but scan found no bucket")

    def _bucket_pop(self) -> None:
        bucket = self._buckets[self._active]
        apos = self._apos + 1
        if apos == len(bucket):
            del bucket[:]
            self._active = -1
            self._apos = 0
        else:
            self._apos = apos
        self._bcount -= 1

    def pop(self) -> Optional[Entry]:
        """Remove and return the minimum entry (by ``(time, rank, seq)``
        tuple order across all three tiers), or ``None`` when empty."""
        dq = self._dq
        best = dq[0] if dq else None
        src = 1 if best is not None else 0
        if self._bcount:
            bhead = self._bucket_head()
            if src == 0 or bhead < best:
                best, src = bhead, 2
        heap = self._heap
        if heap:
            hhead = heap[0]
            if src == 0 or hhead < best:
                best, src = hhead, 3
        if src == 0:
            return None
        if src == 1:
            dq.popleft()
        elif src == 2:
            self._bucket_pop()
        else:
            heappop(heap)
        self._frontier = best[0]
        return best

    def peek_time(self) -> float:
        """Time of the minimum entry, or ``inf`` when empty."""
        dq = self._dq
        best = dq[0] if dq else None
        if self._bcount:
            bhead = self._bucket_head()
            if best is None or bhead < best:
                best = bhead
        heap = self._heap
        if heap and (best is None or heap[0] < best):
            best = heap[0]
        return best[0] if best is not None else _INF

    def __len__(self) -> int:
        return len(self._dq) + self._bcount + len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._dq) or self._bcount > 0 or bool(self._heap)
