"""Deterministic discrete-event simulation kernel.

All simulated components in the Fireworks reproduction run on this kernel:
time is a float number of milliseconds, concurrency is generator processes,
and all randomness flows through named seeded streams.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulation
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Request, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "RngStreams",
    "Simulation",
    "Store",
    "Timeout",
]
