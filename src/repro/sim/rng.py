"""Named, independently-seeded random streams.

Every stochastic choice in the simulator draws from a *named* stream so that
adding a new consumer of randomness never perturbs the draws seen by existing
components — the property that keeps regression numbers stable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A family of :class:`random.Random` streams derived from one seed."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                _derive_seed(self.root_seed, name))
        return self._streams[name]

    def jitter(self, name: str, mean: float, rel_stddev: float = 0.05,
               floor: float = 0.0) -> float:
        """Gaussian jitter around *mean* with relative stddev, clamped at floor.

        Used to give latency constants realistic run-to-run variance while
        staying reproducible for a fixed root seed.
        """
        if mean < 0:
            raise ValueError(f"jitter mean must be >= 0, got {mean}")
        if rel_stddev == 0 or mean == 0:
            return max(mean, floor)
        value = self.stream(name).gauss(mean, mean * rel_stddev)
        return max(value, floor)

    def fork(self, name: str) -> "RngStreams":
        """A child family whose streams are independent of this family's."""
        return RngStreams(_derive_seed(self.root_seed, f"fork:{name}"))
