"""The discrete-event simulation kernel.

:class:`Simulation` owns the virtual clock and the event heap.  Components
throughout the library (sandboxes, runtimes, platforms) are written as
generator processes scheduled on a single ``Simulation`` so that concurrent
activity — warm-pool expiry, chained function invocations, background JIT —
interleaves deterministically.

Time is measured in **milliseconds** as floats; the clock starts at 0.0.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.rng import RngStreams
from repro.trace.tracer import Tracer

__all__ = ["Simulation", "Interrupt"]

# Heap entries are (time, urgent_rank, sequence, event): the sequence number
# makes ordering total and FIFO among same-time events.
_HeapEntry = Tuple[float, int, int, Event]


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams (see :class:`RngStreams`).
    strict:
        When True (the default for tests), exceptions escaping a process
        propagate out of :meth:`run` instead of failing the process event.
        When False, a failed ``run(until=event)`` target does not raise
        either: the exception comes back as the return value and the
        caller inspects ``event.ok``.
    """

    def __init__(self, seed: int = 2022, strict: bool = True) -> None:
        self._now = 0.0
        self._heap: List[_HeapEntry] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self.rng = RngStreams(seed)
        self._trace_hooks: List[Callable[[float, Event], None]] = []
        #: Per-invocation span tracing (repro.trace); always on — records
        #: derive their latency breakdown from these spans.
        self.tracer = Tracer(self)

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event on this simulation."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start a new process from *generator*; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event firing once every event in *events* has fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event firing once any event in *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority_urgent: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._sequence += 1
        rank = 0 if priority_urgent else 1
        heapq.heappush(
            self._heap, (self._now + delay, rank, self._sequence, event))

    def add_trace_hook(self, hook: Callable[[float, Event], None]) -> None:
        """Register a hook called with (time, event) for each processed event."""
        self._trace_hooks.append(hook)

    # -- execution ---------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.  Raises if the heap is empty."""
        if not self._heap:
            raise SimulationError("simulation has no scheduled events")
        time, _rank, _seq, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("event heap time went backwards")
        self._now = time
        # Tracing is off in the common case; don't pay for the loop setup
        # on every event of every experiment.
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(time, event)
        event._fire()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires, returning its value.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is before now={self._now}")
        while self._heap and self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None

    def _run_until_event(self, until: Event) -> Any:
        if until.sim is not self:
            raise SimulationError("run(until=...) got a foreign event")
        finished = []

        def mark(_event: Event) -> None:
            finished.append(True)

        if until.processed:
            finished.append(True)
        elif until.triggered:
            # Triggered but not yet processed: it is on the heap already.
            assert until.callbacks is not None
            until.callbacks.append(mark)
        else:
            assert until.callbacks is not None
            until.callbacks.append(mark)
        while not finished:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: no events left but {until!r} never fired")
            self.step()
        if not until.ok and self.strict:
            raise until.value
        # Non-strict: a failed event does not raise out of run(); the
        # caller inspects ``until.ok`` and gets the exception as the value.
        return until.value
