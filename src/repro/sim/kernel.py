"""The discrete-event simulation kernel.

:class:`Simulation` owns the virtual clock and the pending-event queue.
Components throughout the library (sandboxes, runtimes, platforms) are
written as generator processes scheduled on a single ``Simulation`` so that
concurrent activity — warm-pool expiry, chained function invocations,
background JIT — interleaves deterministically.

Time is measured in **milliseconds** as floats; the clock starts at 0.0.

Hot-path design
---------------
The kernel was rewritten from a single ``heapq`` to a calendar queue once
million-invocation replays made the scheduler the scaling ceiling (see
``docs/performance.md``).  The structure — a same-time deque, a ring of
1 ms buckets for the near-term window, and an overflow heap for far-future
and urgent entries — is specified and unit-tested in
:mod:`repro.sim.queues`; it is *inlined* onto :class:`Simulation` here
because attribute-local loops are measurably faster than method calls in
CPython, and this loop dominates every experiment's run time.  The pop
order is the exact ``(time, urgent_rank, sequence)`` total order of the
old heap, which `tests/property/test_kernel_equivalence.py` checks by
differential testing against ``Simulation(queue="heap")``.

Two pooled, slot-only payload types ride the queue alongside full
:class:`~repro.sim.events.Event` objects:

* :class:`_Timer` — created by :meth:`Simulation.schedule_timeout`, the
  fast path for fire-and-forget callbacks (keep-alive expiry, samplers).
  No Event protocol, no name string, no callbacks list.
* :class:`_Wakeup` — created by :meth:`Simulation._schedule_wakeup` to
  resume a process (bootstrap, redelivery of an already-processed yield
  target, interrupts) without allocating a throwaway Event.

Both are recycled through free lists owned by the simulation, so steady
state replays allocate almost nothing per event.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.rng import RngStreams
from repro.trace.tracer import Tracer

__all__ = ["Simulation", "Interrupt"]

# Queue entries are (time, urgent_rank, sequence, item): the sequence number
# makes ordering total and FIFO among same-time events.  ``item`` is an
# Event, a pooled _Timer, or a pooled _Wakeup.
_HeapEntry = Tuple[float, int, int, Any]

_INF = float("inf")

# Calendar geometry: 512 one-millisecond buckets (power of two so the slot
# index is a mask).  Mirrors repro.sim.queues.NB_BUCKETS.
_NB = 512
_MASK = _NB - 1

# Below this many pending heap entries (and with no bucketed entries),
# normal-rank pushes go straight to the overflow heap: C-level heapq ops
# beat the Python-level bucket machinery until the pending set is large.
# Tier choice never affects pop order — the three-way head comparison
# enforces the (time, rank, seq) total order regardless of which tier
# holds an entry — so this is purely a performance routing decision.
# Mirrors repro.sim.queues.SMALL_HEAP.
_SMALL_HEAP = 1024

# Free-list caps: bound worst-case retained memory after a burst.
_TIMER_POOL_MAX = 4096
_WAKEUP_POOL_MAX = 4096
_CB_POOL_MAX = 1024


class _Timer:
    """Pooled fast-path timer: fires ``callback(value)``.

    Not an Event — it cannot be yielded on or waited for.  Only
    :meth:`Simulation.schedule_timeout` creates these.
    """

    __slots__ = ("sim", "_callback", "_value")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self._callback: Optional[Callable[[Any], None]] = None
        self._value: Any = None

    def _fire(self) -> None:
        # Generic-path firing (step(), run(until=event)); the run() hot
        # loops inline this body instead.
        cb = self._callback
        value = self._value
        self._callback = None
        self._value = None
        pool = self.sim._timer_pool
        if len(pool) < _TIMER_POOL_MAX:
            pool.append(self)
        assert cb is not None
        cb(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Timer cb={self._callback!r}>"


class _Wakeup:
    """Pooled process wakeup: delivers ``(ok, value)`` to one callback.

    Quacks just enough like a triggered Event for ``Process._resume``,
    which only reads ``_ok`` and ``_value`` from its trigger.
    """

    __slots__ = ("sim", "_callback", "_ok", "_value")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self._callback: Optional[Callable[[Any], None]] = None
        self._ok = True
        self._value: Any = None

    def _fire(self) -> None:
        cb = self._callback
        self._callback = None
        assert cb is not None
        cb(self)
        # Recycle only on clean return: if the callback raised (strict
        # mode), the wakeup is simply dropped for the GC.
        self._value = None
        pool = self.sim._wakeup_pool
        if len(pool) < _WAKEUP_POOL_MAX:
            pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Wakeup ok={self._ok} value={self._value!r}>"


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams (see :class:`RngStreams`).
    strict:
        When True (the default for tests), exceptions escaping a process
        propagate out of :meth:`run` instead of failing the process event.
        When False, a failed ``run(until=event)`` target does not raise
        either: the exception comes back as the return value and the
        caller inspects ``event.ok``.
    queue:
        ``"calendar"`` (default) uses the bucketed scheduler;
        ``"heap"`` routes every entry through the overflow heap, which
        reproduces the pre-rewrite single-heapq kernel.  Both orders are
        identical; the option exists for differential testing.
    """

    def __init__(self, seed: int = 2022, strict: bool = True,
                 queue: str = "calendar") -> None:
        if queue not in ("calendar", "heap"):
            raise SimulationError(f"unknown queue implementation {queue!r}")
        self._now = 0.0
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self.rng = RngStreams(seed)
        self._trace_hooks: List[Callable[[float, Any], None]] = []
        #: Total events fired by this simulation (timers and wakeups
        #: included); bench tooling derives events/sec from this.
        self.events_processed = 0
        # -- pending-event structure (see repro.sim.queues for the spec) --
        self._use_heap = queue == "heap"
        self._heap: List[_HeapEntry] = []
        self._dq: deque = deque()
        self._dq_time = -1.0
        self._buckets: List[List[_HeapEntry]] = [[] for _ in range(_NB)]
        self._bcount = 0
        self._active = -1
        self._apos = 0
        self._scan_vb = 0
        # -- free lists ---------------------------------------------------
        self._timer_pool: List[_Timer] = []
        self._wakeup_pool: List[_Wakeup] = []
        self._cb_pool: List[list] = []
        #: Per-invocation span tracing (repro.trace); always on — records
        #: derive their latency breakdown from these spans.
        self.tracer = Tracer(self)

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event on this simulation."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start a new process from *generator*; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event firing once every event in *events* has fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event firing once any event in *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------
    def _push_normal(self, entry: _HeapEntry) -> None:
        """Route a normal-rank entry to the deque, a bucket, or the heap.

        Mirrored inline in :meth:`schedule_timeout`; keep the two in sync.
        """
        if self._use_heap:
            heappush(self._heap, entry)
            return
        t = entry[0]
        dq = self._dq
        if dq:
            if t == self._dq_time:
                dq.append(entry)
                return
        elif t == self._now:
            self._dq_time = t
            dq.append(entry)
            return
        if not self._bcount and len(self._heap) < _SMALL_HEAP:
            heappush(self._heap, entry)
            return
        if t - self._now < _NB:  # inf-safe float precheck
            vb = int(t)
            if vb - int(self._now) < _NB:
                slot = vb & _MASK
                bucket = self._buckets[slot]
                if slot == self._active:
                    insort(bucket, entry, lo=self._apos)
                else:
                    bucket.append(entry)
                    if vb < self._scan_vb:
                        self._scan_vb = vb
                self._bcount += 1
                return
        heappush(self._heap, entry)

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority_urgent: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._sequence = seq = self._sequence + 1
        if priority_urgent:
            heappush(self._heap, (self._now + delay, 0, seq, event))
            return
        self._push_normal((self._now + delay, 1, seq, event))

    def schedule_timeout(self, delay: float,
                         callback: Callable[[Any], None],
                         value: Any = None) -> None:
        """Fast path: run ``callback(value)`` after *delay* ms.

        Unlike :meth:`timeout`, no :class:`Event` is allocated: nothing can
        wait on, cancel, or compose the timer, and the callback receives
        the *value* (not an event).  Use this for fire-and-forget work —
        expiry sweeps, samplers, retry kick-offs — where the Event protocol
        is pure overhead.  The timer object itself is pooled.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        pool = self._timer_pool
        if pool:
            timer = pool.pop()
        else:
            timer = _Timer(self)
        timer._callback = callback
        timer._value = value
        self._sequence = seq = self._sequence + 1
        t = self._now + delay
        entry = (t, 1, seq, timer)
        # -- inline _push_normal (hot path) --
        if self._use_heap:
            heappush(self._heap, entry)
            return
        dq = self._dq
        if dq:
            if t == self._dq_time:
                dq.append(entry)
                return
        elif t == self._now:
            self._dq_time = t
            dq.append(entry)
            return
        if not self._bcount and len(self._heap) < _SMALL_HEAP:
            heappush(self._heap, entry)
            return
        if t - self._now < _NB:
            vb = int(t)
            if vb - int(self._now) < _NB:
                slot = vb & _MASK
                bucket = self._buckets[slot]
                if slot == self._active:
                    insort(bucket, entry, lo=self._apos)
                else:
                    bucket.append(entry)
                    if vb < self._scan_vb:
                        self._scan_vb = vb
                self._bcount += 1
                return
        heappush(self._heap, entry)

    def _schedule_wakeup(self, callback: Callable[[Any], None], ok: bool,
                         value: Any, urgent: bool = False) -> None:
        """Schedule a pooled process wakeup at the current time."""
        pool = self._wakeup_pool
        if pool:
            wakeup = pool.pop()
        else:
            wakeup = _Wakeup(self)
        wakeup._callback = callback
        wakeup._ok = ok
        wakeup._value = value
        self._sequence = seq = self._sequence + 1
        if urgent:
            heappush(self._heap, (self._now, 0, seq, wakeup))
        else:
            self._push_normal((self._now, 1, seq, wakeup))

    def add_trace_hook(self, hook: Callable[[float, Any], None]) -> None:
        """Register a hook called with (time, item) for each processed event.

        ``item`` is usually an :class:`Event` but may be a pooled kernel
        timer or wakeup for events scheduled through the fast paths.
        """
        self._trace_hooks.append(hook)

    # -- queue internals ---------------------------------------------------------
    def _bucket_head(self) -> _HeapEntry:
        """Head entry of the lowest non-empty bucket; activates it.

        Scans the ring from ``max(int(now), _scan_vb)`` — both are proven
        lower bounds on every bucket entry's virtual bucket number — and
        demotes a stale active bucket if an earlier one became non-empty.
        """
        buckets = self._buckets
        vbnow = int(self._now)
        if self._scan_vb > vbnow:
            vbnow = self._scan_vb
        active = self._active
        for k in range(_NB):
            slot = (vbnow + k) & _MASK
            if slot == active:
                self._scan_vb = vbnow + k
                return buckets[slot][self._apos]
            bucket = buckets[slot]
            if bucket:
                if active >= 0:
                    del buckets[active][: self._apos]
                if len(bucket) > 1:
                    bucket.sort()
                self._active = slot
                self._apos = 0
                self._scan_vb = vbnow + k
                return bucket[0]
        raise SimulationError("calendar queue invariant violated: "
                              "bucket count > 0 but scan found no bucket")

    def _bucket_pop(self) -> None:
        """Consume the active bucket's head (must follow _bucket_head)."""
        bucket = self._buckets[self._active]
        apos = self._apos + 1
        if apos == len(bucket):
            del bucket[:]
            self._active = -1
            self._apos = 0
        else:
            self._apos = apos
        self._bcount -= 1

    def _select(self) -> Tuple[Optional[_HeapEntry], int]:
        """Minimum entry across the three tiers, without popping.

        Returns ``(entry, src)`` with src 0=empty, 1=deque, 2=bucket,
        3=heap.
        """
        dq = self._dq
        best = dq[0] if dq else None
        src = 1 if best is not None else 0
        if self._bcount:
            bhead = self._bucket_head()
            if src == 0 or bhead < best:
                best, src = bhead, 2
        heap = self._heap
        if heap:
            hhead = heap[0]
            if src == 0 or hhead < best:
                best, src = hhead, 3
        return best, src

    def _pop_selected(self, src: int) -> None:
        if src == 1:
            self._dq.popleft()
        elif src == 2:
            self._bucket_pop()
        else:
            heappop(self._heap)

    # -- execution ---------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.  Raises if none are scheduled."""
        best, src = self._select()
        if best is None:
            raise SimulationError("simulation has no scheduled events")
        time = best[0]
        if time < self._now:
            raise SimulationError("event heap time went backwards")
        self._pop_selected(src)
        self._now = time
        self.events_processed += 1
        # Tracing is off in the common case; don't pay for the loop setup
        # on every event of every experiment.
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(time, best[3])
        best[3]._fire()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        best, _src = self._select()
        return best[0] if best is not None else _INF

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires, returning its value.
        """
        if until is None:
            self._run_core(_INF)
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is before now={self._now}")
        self._run_core(deadline)
        # Everything at or before the deadline has fired; all pending
        # entries are strictly later, so advancing the clock keeps every
        # queue invariant (the clock is a lower bound on pending times).
        self._now = deadline
        return None

    def _run_core(self, deadline: float) -> None:
        """Fire events in order while their time is <= *deadline*.

        This is the hot loop: the deque drain and timer firing are inlined
        (no step()/method-call overhead per event), which is worth ~2x on
        replay throughput in CPython.
        """
        dq = self._dq
        heap = self._heap
        hooks = self._trace_hooks  # list identity is stable
        tpool = self._timer_pool
        timer_cls = _Timer
        processed = 0
        try:
            while True:
                if dq and not self._bcount and not heap:
                    # -- fast subloop: only same-time deque entries pending.
                    # All deque entries share _dq_time, so one deadline
                    # check covers the whole drain (entries appended during
                    # the drain are admitted only at the same time).
                    if self._dq_time > deadline:
                        return
                    while dq and not self._bcount and not heap:
                        entry = dq.popleft()
                        self._now = entry[0]
                        processed += 1
                        item = entry[3]
                        if hooks:
                            for hook in hooks:
                                hook(entry[0], item)
                        if item.__class__ is timer_cls:
                            cb = item._callback
                            item._callback = None
                            value = item._value
                            item._value = None
                            if len(tpool) < _TIMER_POOL_MAX:
                                tpool.append(item)
                            cb(value)
                        else:
                            item._fire()
                    continue
                # -- general three-way selection; _select/_pop_selected are
                # inlined because two extra method calls per event are
                # measurable at replay scale (see docs/performance.md).
                best = dq[0] if dq else None
                src = 1 if best is not None else 0
                if self._bcount:
                    bhead = self._bucket_head()
                    if src == 0 or bhead < best:
                        best, src = bhead, 2
                if heap:
                    hhead = heap[0]
                    if src == 0 or hhead < best:
                        best, src = hhead, 3
                if best is None:
                    return
                time = best[0]
                if time > deadline:
                    return
                if time < self._now:
                    raise SimulationError("event heap time went backwards")
                if src == 1:
                    dq.popleft()
                elif src == 3:
                    heappop(heap)
                else:
                    # inline _bucket_pop: consume the active bucket's head
                    bucket = self._buckets[self._active]
                    apos = self._apos + 1
                    if apos == len(bucket):
                        del bucket[:]
                        self._active = -1
                        self._apos = 0
                    else:
                        self._apos = apos
                    self._bcount -= 1
                self._now = time
                processed += 1
                item = best[3]
                if hooks:
                    for hook in hooks:
                        hook(time, item)
                if item.__class__ is timer_cls:
                    cb = item._callback
                    item._callback = None
                    value = item._value
                    item._value = None
                    if len(tpool) < _TIMER_POOL_MAX:
                        tpool.append(item)
                    cb(value)
                else:
                    item._fire()
        finally:
            self.events_processed += processed

    def _run_until_event(self, until: Event) -> Any:
        if until.sim is not self:
            raise SimulationError("run(until=...) got a foreign event")
        finished: List[bool] = []

        def mark(_event: Event) -> None:
            finished.append(True)

        if until.processed:
            finished.append(True)
        elif until.triggered:
            # Triggered but not yet processed: it is on the queue already.
            assert until.callbacks is not None
            until.callbacks.append(mark)
        else:
            assert until.callbacks is not None
            until.callbacks.append(mark)
        while not finished:
            if not (self._dq or self._bcount or self._heap):
                raise SimulationError(
                    f"deadlock: no events left but {until!r} never fired")
            self.step()
        if not until.ok and self.strict:
            raise until.value
        # Non-strict: a failed event does not raise out of run(); the
        # caller inspects ``until.ok`` and gets the exception as the value.
        return until.value
