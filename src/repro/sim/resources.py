"""Shared resources and queues for simulation processes.

``Resource`` models a capacity-limited resource (e.g. a vCPU, an invoker
slot): processes yield ``resource.request()`` and later call
``resource.release(req)``.  ``Store`` is an unbounded FIFO of Python objects
used as the backbone of message queues and mailboxes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=f"request({resource.name})")
        self.resource = resource


class Resource:
    """A FIFO resource with fixed capacity.

    Usage inside a process::

        req = cpu.request()
        yield req
        try:
            yield sim.timeout(work_ms)
        finally:
            cpu.release(req)

    If the requesting process can be *interrupted*, release on
    ``req.triggered`` instead: a grant can race the interrupt (the slot is
    assigned, then the Interrupt is delivered before the process observes
    the grant), and an untriggered request is withdrawn automatically::

        req = cpu.request()
        try:
            yield req
            yield sim.timeout(work_ms)
        finally:
            if req.triggered:
                cpu.release(req)
    """

    def __init__(self, sim: "Simulation", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(req)
        else:
            self._waiters.append(req)
            # An interrupted waiter must not be granted a slot it can
            # never release.
            req.on_abandoned = lambda: self._discard_waiter(req)
        return req

    def _discard_waiter(self, req: Request) -> None:
        if req in self._waiters:
            self._waiters.remove(req)

    def release(self, req: Request) -> None:
        """Return a previously granted slot."""
        if req not in self._users:
            raise SimulationError(
                f"release of {req!r} which does not hold {self.name}")
        self._users.remove(req)
        if self._waiters:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)


class Store:
    """An unbounded FIFO store of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the next
    item, in strict arrival order; concurrent getters are served FIFO.
    """

    def __init__(self, sim: "Simulation", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append *item*; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next item (immediately if one is queued)."""
        event = Event(self.sim, name=f"get({self.name})")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
            # An interrupted getter must not swallow the next item.
            event.on_abandoned = lambda: self._discard_getter(event)
        return event

    def _discard_getter(self, event: Event) -> None:
        if event in self._getters:
            self._getters.remove(event)

    def try_get(self) -> Any:
        """Pop the next item without blocking; raises if the store is empty."""
        if not self._items:
            raise SimulationError(f"try_get on empty store {self.name!r}")
        return self._items.popleft()
