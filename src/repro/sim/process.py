"""Processes: generator-based coroutines running on the simulation kernel.

A process wraps a Python generator.  Each ``yield`` hands the kernel an
:class:`~repro.sim.events.Event`; the process resumes when that event fires,
receiving the event's value (or its exception, for failed events).  A process
is itself an event that succeeds with the generator's return value, so
processes can wait on each other (``yield other_process``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; also an event that fires on completion."""

    __slots__ = ("_generator", "_waiting_on", "trace_stack")

    def __init__(self, sim: "Simulation",
                 generator: Generator[Event, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name or getattr(
            generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Span-context stack (repro.trace): lazily created by the tracer so
        # untraced processes pay one attribute slot and nothing else.
        self.trace_stack = None
        # Bootstrap: run the first step as soon as the kernel is able to.
        # A pooled kernel wakeup — nothing can wait on the bootstrap, so a
        # full Event (name string, callbacks list) would be pure overhead.
        sim._schedule_wakeup(self._resume, True, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is not None:
            waited = self._waiting_on
            if waited.callbacks is not None and self._resume in waited.callbacks:
                waited.callbacks.remove(self._resume)
                if not waited.callbacks and not waited.triggered and \
                        waited.on_abandoned is not None:
                    waited.on_abandoned()
            self._waiting_on = None
        self.sim._schedule_wakeup(
            self._resume, False, Interrupt(cause), urgent=True)

    # -- internal -----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            # A stale wakeup (e.g. a second interrupt armed in the same
            # instant) arrived after the generator finished — drop it.
            return
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        self.sim._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"{self.name} yielded {target!r}; processes must yield events")
        if target.sim is not self.sim:
            raise SimulationError(
                f"{self.name} yielded an event from another simulation")
        if target.processed:
            # The event already fired and ran its callbacks; resume this
            # process at the current time with the same outcome, via a
            # pooled wakeup instead of a throwaway Event.
            self.sim._schedule_wakeup(self._resume, target._ok, target._value)
            return
        self._waiting_on = target
        assert target.callbacks is not None
        target.callbacks.append(self._resume)
