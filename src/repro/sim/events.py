"""Events: the unit of scheduling in the discrete-event kernel.

An :class:`Event` is a one-shot occurrence on the simulation timeline.
Processes (see :mod:`repro.sim.process`) yield events to suspend until the
event fires.  Events carry a *value* (delivered to every waiter) and an *ok*
flag; a failed event re-raises its value as an exception inside each waiting
process, mirroring how real async frameworks propagate errors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation

PENDING = object()
"""Sentinel for an event value that has not been decided yet."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *untriggered* (just created),
    *triggered* (scheduled on the event heap with a value), and *processed*
    (callbacks ran).  Triggering twice is an error — it almost always
    indicates two components believe they own the same completion.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "on_abandoned")

    def __init__(self, sim: "Simulation", name: str = "") -> None:
        self.sim = sim
        self.name = name
        # Callbacks lists are pooled: short-lived events dominate replays,
        # and the empty list is the single hottest allocation after the
        # queue entry tuple itself.  Lists are recycled (cleared) by
        # _run_callbacks once the event is processed.
        cb_pool = sim._cb_pool
        self.callbacks: Optional[List[Callable[["Event"], None]]] = (
            cb_pool.pop() if cb_pool else [])
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Called when the last waiter detaches before the event fired
        #: (e.g. an interrupted process).  Resources/stores use this to
        #: drop dangling queue entries instead of granting to the dead.
        self.on_abandoned: Optional[Callable[[], None]] = None

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; *exc* is raised in each waiter."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = ok
        self._value = value
        self.sim._schedule(self)

    # -- internal -----------------------------------------------------------
    def _fire(self) -> None:
        """Kernel hook: apply any deferred outcome, then run callbacks."""
        self._run_callbacks()

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        # Recycle only on clean completion: if a callback raised, the
        # list may be mid-iteration state and is left for the GC.
        callbacks.clear()
        cb_pool = self.sim._cb_pool
        if len(cb_pool) < 1024:
            cb_pool.append(callbacks)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    The outcome is deferred: the timeout only counts as *triggered* once the
    simulation clock reaches its deadline, so conditions waiting on it
    behave correctly.
    """

    __slots__ = ("delay", "_deferred_value")

    def __init__(self, sim: "Simulation", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # The default name used to be rendered eagerly with an f-string;
        # at millions of timeouts per replay that formatting dominated
        # construction, so __repr__ now renders it lazily instead.
        super().__init__(sim, name)
        self.delay = delay
        self._deferred_value = value
        sim._schedule(self, delay=delay)

    def _fire(self) -> None:
        self._ok = True
        self._value = self._deferred_value
        self._run_callbacks()

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = self.name or f"timeout({self.delay:g})"
        return f"<{label} {state} at t={self.sim.now:.3f}>"


class Condition(Event):
    """Base for events that fire when some set of child events fire."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulation", events: List[Event],
                 name: str = "") -> None:
        super().__init__(sim, name)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulations")
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            if event.processed or event.triggered:
                # Already decided; evaluate immediately via a callback shim.
                self._check(event)
            else:
                self._pending += 1
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> List[Any]:
        return [event.value for event in self._events if event.triggered]


class AllOf(Condition):
    """Fires when every child event has fired (or any child fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if all(child.triggered and child.ok for child in self._events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as any child event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(event.value)
