"""Operational metrics: per-platform summaries of invocation records.

What a fleet dashboard would show: request counts by start mode, latency
statistics per function, and the start-up share of total latency — derived
purely from :class:`InvocationRecord` lists, so any platform (or any
subset of records) can be summarized.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.bench.stats import LatencyStats, percentile
from repro.platforms.base import FailedInvocation, InvocationRecord
from repro.trace import phase_breakdown


@dataclass(frozen=True)
class FunctionMetrics:
    """One function's operational view."""

    function: str
    invocations: int
    by_mode: Dict[str, int]
    latency: LatencyStats
    startup_share: float     # fraction of total latency spent starting up

    def as_line(self) -> str:
        """One-line dashboard row."""
        modes = ",".join(f"{mode}={count}"
                         for mode, count in sorted(self.by_mode.items()))
        return (f"{self.function:<26} n={self.invocations:<5d} "
                f"p50={self.latency.p50_ms:8.1f}ms "
                f"p99={self.latency.p99_ms:8.1f}ms "
                f"startup-share={self.startup_share:6.1%} [{modes}]")


@dataclass(frozen=True)
class PlatformMetrics:
    """The whole platform's operational view."""

    platform: str
    total_invocations: int
    by_mode: Dict[str, int]
    functions: List[FunctionMetrics]
    # Chaos-era fields: requests that exhausted their retry budget.  The
    # defaults keep pre-chaos callers (and their golden output) unchanged.
    failed_invocations: int = 0
    by_failure_reason: Dict[str, int] = field(default_factory=dict)
    # Serving-layer fields (repro.autoscale): requests the admission
    # controller rejected, and how long admitted requests queued.  Same
    # backward-compatible contract: the defaults are inert.
    shedded_invocations: int = 0
    by_shed_reason: Dict[str, int] = field(default_factory=dict)
    queue_wait_p50_ms: float = 0.0
    queue_wait_p99_ms: float = 0.0

    @property
    def availability(self) -> float:
        """Completed / (completed + failed); 1.0 with no traffic."""
        total = self.total_invocations + self.failed_invocations
        if total == 0:
            return 1.0
        return self.total_invocations / total

    @property
    def shed_rate(self) -> float:
        """Shedded / submitted (completed + failed + shedded)."""
        total = (self.total_invocations + self.failed_invocations
                 + self.shedded_invocations)
        if total == 0:
            return 0.0
        return self.shedded_invocations / total

    @property
    def goodput(self) -> float:
        """Fraction of submitted requests that completed successfully
        (sheds and failures are the badput)."""
        submitted = (self.total_invocations + self.failed_invocations
                     + self.shedded_invocations)
        if submitted == 0:
            return 1.0
        return self.total_invocations / submitted

    def function(self, name: str) -> FunctionMetrics:
        """Look up one function's metrics; KeyError if absent."""
        for entry in self.functions:
            if entry.function == name:
                return entry
        raise KeyError(f"no metrics for function {name!r}")

    def as_table(self) -> str:
        """Render the dashboard."""
        lines = [f"== metrics: {self.platform} "
                 f"({self.total_invocations} invocations) =="]
        if self.failed_invocations:
            reasons = ",".join(
                f"{reason}={count}" for reason, count
                in sorted(self.by_failure_reason.items()))
            lines.append(f"failed={self.failed_invocations} "
                         f"availability={self.availability:.4%} [{reasons}]")
        if self.shedded_invocations:
            reasons = ",".join(
                f"{reason}={count}" for reason, count
                in sorted(self.by_shed_reason.items()))
            lines.append(f"shed={self.shedded_invocations} "
                         f"shed-rate={self.shed_rate:.4%} "
                         f"queue-wait p50={self.queue_wait_p50_ms:.1f}ms "
                         f"p99={self.queue_wait_p99_ms:.1f}ms [{reasons}]")
        lines.extend(entry.as_line() for entry in self.functions)
        return "\n".join(lines)


def _startup_and_total_ms(record: InvocationRecord):
    """(startup, total) for one record, preferring its span tree.

    Traced records re-derive the split from their spans (the source of
    truth since the breakdown rebase); hand-built records without a span
    (unit-test fixtures, external importers) fall back to the recorded
    fields.
    """
    if record.span is not None:
        breakdown = phase_breakdown(record.span)
        return breakdown.startup_ms, breakdown.total_ms
    return record.startup_ms, record.total_ms


class _FunctionAccumulator:
    """Per-function running aggregates for the single-pass summary."""

    __slots__ = ("modes", "totals", "startup_sum", "total_sum")

    def __init__(self) -> None:
        self.modes: Dict[str, int] = {}
        self.totals = array("d")
        # Seeded with int 0, like the sum() builtin the multi-pass
        # implementation used, so float accumulation is bit-identical.
        self.startup_sum = 0
        self.total_sum = 0


def _failure_class(failed: FailedInvocation) -> str:
    """Coarse failure bucket for the dashboard: the leading word of the
    reason ('host3 is down ...' -> 'host-down' style buckets would
    over-fit message text, so bucket on the first token)."""
    return failed.reason.split(" ", 1)[0] if failed.reason else "unknown"


def summarize(platform_name: str,
              records: Iterable[InvocationRecord],
              include_chains: bool = True,
              failed: Optional[Iterable[FailedInvocation]] = None,
              shedded: Optional[Iterable] = None
              ) -> PlatformMetrics:
    """Build the operational summary for *records*.

    *failed* is the platform's ``failed_invocations`` list (chaos runs);
    *shedded* its ``shedded_invocations`` (serving-layer runs); omitted,
    the summary is identical to the pre-chaos one.  Queue-wait
    percentiles come from the records' derived ``queue_wait_ms`` (the
    admission + core-pool queue spans).
    """
    # One pass over the (chain-expanded) records accumulates everything:
    # per-function mode counts, latency samples (unboxed array('d')),
    # startup/total sums, the global mode counts, and the queue waits.
    # Accumulation order matches the old multi-pass implementation
    # exactly — record order within each function, sums seeded at 0 —
    # so every derived number is bit-identical.
    by_function: Dict[str, _FunctionAccumulator] = {}
    total_by_mode: Dict[str, int] = {}
    waits = array("d")
    total_records = 0
    for outer in records:
        chain = outer.chain_records() if include_chains else (outer,)
        for record in chain:
            total_records += 1
            acc = by_function.get(record.function)
            if acc is None:
                acc = by_function[record.function] = _FunctionAccumulator()
            mode = record.mode
            acc.modes[mode] = acc.modes.get(mode, 0) + 1
            total_by_mode[mode] = total_by_mode.get(mode, 0) + 1
            startup, total = _startup_and_total_ms(record)
            acc.totals.append(total)
            acc.startup_sum = acc.startup_sum + startup
            acc.total_sum = acc.total_sum + total
            waits.append(record.queue_wait_ms)

    functions = []
    for name in sorted(by_function):
        acc = by_function[name]
        functions.append(FunctionMetrics(
            function=name,
            invocations=len(acc.totals),
            by_mode=acc.modes,
            latency=LatencyStats.from_samples(acc.totals),
            startup_share=(0.0 if acc.total_sum == 0
                           else acc.startup_sum / acc.total_sum)))

    failed_list = list(failed) if failed is not None else []
    by_reason: Dict[str, int] = {}
    for entry in failed_list:
        bucket = _failure_class(entry)
        by_reason[bucket] = by_reason.get(bucket, 0) + 1

    shed_list = list(shedded) if shedded is not None else []
    by_shed: Dict[str, int] = {}
    for entry in shed_list:
        by_shed[entry.reason] = by_shed.get(entry.reason, 0) + 1
    queue_p50 = percentile(waits, 50) if waits else 0.0
    queue_p99 = percentile(waits, 99) if waits else 0.0

    return PlatformMetrics(
        platform=platform_name,
        total_invocations=total_records,
        by_mode=total_by_mode,
        functions=functions,
        failed_invocations=len(failed_list),
        by_failure_reason=by_reason,
        shedded_invocations=len(shed_list),
        by_shed_reason=by_shed,
        queue_wait_p50_ms=queue_p50,
        queue_wait_p99_ms=queue_p99)
