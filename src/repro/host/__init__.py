"""Host hardware beyond memory: the shared CPU core pool."""

from repro.host.cpu import HostCpu

__all__ = ["HostCpu"]
