"""Host CPU: a finite pool of cores shared by all sandboxes.

The paper's testbed has 64 physical cores (§5.1) and each sandbox gets one
vCPU.  For single-invocation latency figures, CPU contention is irrelevant —
but for burst behaviour (hundreds of concurrent cold starts or snapshot
restores) the core pool is the bottleneck, so the concurrency extension
benches model it explicitly.

Usage inside a platform/worker process::

    claim = yield from host_cpu.acquire()
    try:
        ... run the work ...
    finally:
        host_cpu.release(claim)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.resources import Request, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class HostCpu:
    """The host's core pool, with queueing statistics."""

    def __init__(self, sim: "Simulation", cores: int = 64) -> None:
        if cores < 1:
            raise SimulationError(f"host needs >= 1 core, got {cores}")
        self.sim = sim
        self.cores = cores
        self._resource = Resource(sim, capacity=cores, name="host-cpu")
        self.total_claims = 0
        self.total_queue_wait_ms = 0.0
        self.peak_queue_length = 0

    @property
    def busy_cores(self) -> int:
        return self._resource.count

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def acquire(self):
        """Claim one core (a simulation generator returning the claim)."""
        requested_at = self.sim.now
        request = self._resource.request()
        self.peak_queue_length = max(self.peak_queue_length,
                                     self._resource.queue_length)
        yield request
        self.total_claims += 1
        self.total_queue_wait_ms += self.sim.now - requested_at
        return request

    def release(self, claim: Request) -> None:
        """Return a core claimed with :meth:`acquire`."""
        self._resource.release(claim)

    @property
    def mean_queue_wait_ms(self) -> float:
        if self.total_claims == 0:
            return 0.0
        return self.total_queue_wait_ms / self.total_claims
