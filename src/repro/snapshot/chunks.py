"""Chunk-granular view of a snapshot image (REAP / fastpull direction).

A snapshot image file is logically divided into fixed-size chunks — the
unit of lazy loading.  REAP [54] records which guest pages an invocation
touches and prefetches exactly those on later restores; lazy-loading
snapshotters (fastpull-style) pull only the chunks a start actually needs
and stream the rest in the background.  :class:`ChunkMap` is the shared
arithmetic both use: a pure value object mapping ``(size_mb,
chunk_size_mb)`` to chunk indices and byte counts, with no simulation
state.

Determinism notes:

* chunk selection (:meth:`ChunkMap.spread`) uses integer arithmetic
  (``(i * n) // k``), never ``hash()`` — results are independent of
  ``PYTHONHASHSEED``;
* the last chunk is sized so the per-chunk sizes ledger back to the image
  size by construction (``size - (n-1) * chunk``), not by accumulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import ValidationError

#: Default lazy-loading granularity.  2 MiB matches a hugepage / typical
#: lazy-snapshotter block: coarse enough that per-chunk overheads stay
#: small, fine enough that a 170 MiB image has ~85 chunks to be lazy about.
DEFAULT_CHUNK_MB = 2.0


@dataclass(frozen=True)
class ChunkMap:
    """Fixed-size logical chunks over a snapshot image's regions.

    The map is defined by the image's total size: region boundaries do not
    matter for transfer/prefetch cost, only bytes do, so chunk ``i`` covers
    ``[i * chunk_size_mb, min((i + 1) * chunk_size_mb, size_mb))``.
    """

    size_mb: float
    chunk_size_mb: float = DEFAULT_CHUNK_MB

    def __post_init__(self) -> None:
        if self.size_mb <= 0.0:
            raise ValidationError(
                f"chunk map needs a positive image size, got {self.size_mb}")
        if self.chunk_size_mb <= 0.0:
            raise ValidationError(
                f"chunk size must be positive, got {self.chunk_size_mb}")

    @property
    def n_chunks(self) -> int:
        """Number of chunks; the last one may be partial."""
        return max(1, int(math.ceil(self.size_mb / self.chunk_size_mb
                                    - 1e-12)))

    def chunk_mb(self, index: int) -> float:
        """Size of chunk *index* in MiB (the last chunk may be partial)."""
        n = self.n_chunks
        if not 0 <= index < n:
            raise ValidationError(
                f"chunk index {index} out of range [0, {n})")
        if index < n - 1:
            return self.chunk_size_mb
        return self.size_mb - self.chunk_size_mb * (n - 1)

    def bytes_mb(self, indices: Iterable[int]) -> float:
        """Total MiB covered by *indices* (each counted once)."""
        return math.fsum(self.chunk_mb(i) for i in set(indices))

    def spread(self, want_mb: float) -> Tuple[int, ...]:
        """A deterministic chunk set covering at least *want_mb*.

        A working set is scattered across the image (text here, heap
        there), so the recorded chunks are spread evenly over the index
        space with pure integer arithmetic: ``k`` chunks out of ``n`` at
        positions ``(i * n) // k`` — strictly increasing for ``k <= n``,
        stable across processes and hash seeds.
        """
        if want_mb <= 0.0:
            return ()
        n = self.n_chunks
        if want_mb >= self.size_mb:
            return tuple(range(n))
        k = min(n, int(math.ceil(want_mb / self.chunk_size_mb)))
        chunks = tuple((i * n) // k for i in range(k))
        # Rounding down to full chunks can leave the set short of want_mb
        # when the tail (partial) chunk was picked; top up from the front.
        if self.bytes_mb(chunks) < want_mb and len(chunks) < n:
            missing = sorted(set(range(n)) - set(chunks))
            chunks = tuple(sorted(chunks + (missing[0],)))
        return chunks

    def all_chunks(self) -> Tuple[int, ...]:
        """Every chunk index (whole-image transfer/prefetch)."""
        return tuple(range(self.n_chunks))
