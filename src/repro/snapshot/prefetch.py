"""REAP-style working-set recording and prefetch (§7 extension).

REAP [54] observes that restoring a snapshot by demand paging faults in a
small, *stable* working set with expensive random reads; it records the set
of pages an invocation actually touches and, on later restores, prefetches
exactly those pages with one sequential read.

The paper notes Fireworks "can also employ REAP's prefetching to further
reduce the overhead for reading snapshots from disk" — this module is that
employment:

* :class:`ReapRecorder` captures a per-function working-set profile from a
  worker after its invocation;
* :class:`Restorer` (see :mod:`repro.snapshot.restorer`) consults the
  recorder under ``POLICY_REAP``: with a profile it prefetches just the
  recorded working set; without one it falls back to whole-image prefetch
  (the conservative first-invocation behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SnapshotNotFoundError
from repro.sandbox.worker import Worker
from repro.snapshot.image import SnapshotImage

#: Fraction of clean (shared, executed-over) pages an invocation touches
#: beyond what it dirties — text and read-only data of the hot path.
CLEAN_TOUCH_FRACTION = 0.10


@dataclass(frozen=True)
class WorkingSetProfile:
    """The recorded pages one invocation of a function touches."""

    image_key: str
    generation: int
    working_set_mb: float
    recorded_at_ms: float

    def matches(self, image: SnapshotImage) -> bool:
        """A profile is only valid for the generation it was recorded on —
        regeneration (ASLR, §6) changes the page layout."""
        return (self.image_key == image.key
                and self.generation == image.generation)


class ReapRecorder:
    """Records and serves working-set profiles, keyed by function."""

    def __init__(self) -> None:
        self._profiles: Dict[str, WorkingSetProfile] = {}
        self.recordings = 0

    def record(self, image: SnapshotImage, worker: Worker,
               now_ms: float) -> WorkingSetProfile:
        """Capture the working set of *worker* after an invocation.

        The working set is what the invocation actually touched: its
        private (CoW-broken + fresh) pages plus the hot fraction of the
        still-clean mapped pages it executed over.
        """
        if worker.invocations == 0:
            raise SnapshotNotFoundError(
                "cannot record a working set before any invocation ran")
        space = worker.sandbox.space
        vmm_mb = (space.region_rss_mb("vmm")
                  if space.has_region("vmm") else 0.0)
        private_mb = space.uss_mb() - vmm_mb
        clean_mb = space.rss_mb() - space.uss_mb()
        profile = WorkingSetProfile(
            image_key=image.key,
            generation=image.generation,
            working_set_mb=max(0.0, private_mb
                               + clean_mb * CLEAN_TOUCH_FRACTION),
            recorded_at_ms=now_ms,
        )
        self._profiles[image.key] = profile
        self.recordings += 1
        return profile

    def profile_for(self, image: SnapshotImage
                    ) -> Optional[WorkingSetProfile]:
        """The valid profile for *image*, or None (record first / stale
        generation)."""
        profile = self._profiles.get(image.key)
        if profile is None or not profile.matches(image):
            return None
        return profile

    def invalidate(self, image_key: str) -> None:
        """Drop a profile (e.g. after the function is reinstalled)."""
        self._profiles.pop(image_key, None)

    def __len__(self) -> int:
        return len(self._profiles)
