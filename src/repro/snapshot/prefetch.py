"""REAP-style working-set recording and prefetch (§7 extension).

REAP [54] observes that restoring a snapshot by demand paging faults in a
small, *stable* working set with expensive random reads; it records the set
of pages an invocation actually touches and, on later restores, prefetches
exactly those pages with one sequential read.

The paper notes Fireworks "can also employ REAP's prefetching to further
reduce the overhead for reading snapshots from disk" — this module is that
employment:

* :class:`ReapRecorder` captures a per-function working-set profile from a
  worker after its invocation, including the *chunk set* covering the
  working set on the image's :class:`~repro.snapshot.chunks.ChunkMap`;
* :class:`Restorer` (see :mod:`repro.snapshot.restorer`) consults the
  recorder under ``POLICY_REAP`` (scalar prefetch of the recorded bytes)
  and ``POLICY_LAZY`` (prefetch exactly the recorded chunks, demand-fault
  the rest); without a profile both fall back to conservative
  first-invocation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import StateError
from repro.sandbox.worker import Worker
from repro.snapshot.chunks import DEFAULT_CHUNK_MB
from repro.snapshot.image import SnapshotImage

#: Fraction of clean (shared, executed-over) pages an invocation touches
#: beyond what it dirties — text and read-only data of the hot path.
CLEAN_TOUCH_FRACTION = 0.10


@dataclass(frozen=True)
class WorkingSetProfile:
    """The recorded pages one invocation of a function touches."""

    image_key: str
    generation: int
    working_set_mb: float
    recorded_at_ms: float
    #: Chunk indices (on a ``ChunkMap(image.size_mb, chunk_size_mb)``)
    #: covering the working set — what POLICY_LAZY prefetches and what a
    #: streaming cross-host transfer ships first.
    chunks: Tuple[int, ...] = field(default=())
    chunk_size_mb: float = DEFAULT_CHUNK_MB

    def matches(self, image: SnapshotImage) -> bool:
        """A profile is only valid for the generation it was recorded on —
        regeneration (ASLR, §6) changes the page layout."""
        return (self.image_key == image.key
                and self.generation == image.generation)

    def chunk_bytes_mb(self, image: SnapshotImage) -> float:
        """MiB covered by the recorded chunk set (>= working_set_mb:
        chunk-granular prefetch rounds the set up to whole chunks)."""
        if not self.chunks:
            return 0.0
        return image.chunk_map(self.chunk_size_mb).bytes_mb(self.chunks)


class ReapRecorder:
    """Records and serves working-set profiles, keyed by function."""

    def __init__(self, chunk_size_mb: float = DEFAULT_CHUNK_MB) -> None:
        self.chunk_size_mb = chunk_size_mb
        self._profiles: Dict[str, WorkingSetProfile] = {}
        self.recordings = 0

    def record(self, image: SnapshotImage, worker: Worker,
               now_ms: float) -> WorkingSetProfile:
        """Capture the working set of *worker* after an invocation.

        The working set is what the invocation actually touched: its
        private (CoW-broken + fresh) pages plus the hot fraction of the
        still-clean mapped pages it executed over.  The covering chunk set
        is derived on the image's chunk map with the recorder's
        granularity.
        """
        if worker.invocations == 0:
            raise StateError(
                "cannot record a working set before any invocation ran")
        space = worker.sandbox.space
        vmm_mb = (space.region_rss_mb("vmm")
                  if space.has_region("vmm") else 0.0)
        private_mb = space.uss_mb() - vmm_mb
        clean_mb = space.rss_mb() - space.uss_mb()
        working_set_mb = max(0.0, private_mb
                             + clean_mb * CLEAN_TOUCH_FRACTION)
        profile = WorkingSetProfile(
            image_key=image.key,
            generation=image.generation,
            working_set_mb=working_set_mb,
            recorded_at_ms=now_ms,
            chunks=image.chunk_map(self.chunk_size_mb).spread(working_set_mb),
            chunk_size_mb=self.chunk_size_mb,
        )
        self._profiles[image.key] = profile
        self.recordings += 1
        return profile

    def profile_for(self, image: SnapshotImage
                    ) -> Optional[WorkingSetProfile]:
        """The valid profile for *image*, or None (record first / stale
        generation)."""
        profile = self._profiles.get(image.key)
        if profile is None or not profile.matches(image):
            return None
        return profile

    def invalidate(self, image_key: str) -> None:
        """Drop a profile (e.g. after the function is reinstalled)."""
        self._profiles.pop(image_key, None)

    def __len__(self) -> int:
        return len(self._profiles)
