"""Creating VM-level snapshots through the (modeled) Firecracker API.

§3.3: the guest's ``__fireworks_snapshot()`` sends an HTTP request to the
host; Firecracker pauses the VM, serializes device state, and writes all
guest physical memory to an image file.  Cost scales with resident guest
memory — the source of the 0.36-0.47 s creation times in §5.1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SnapshotConfig
from repro.errors import SandboxError, SnapshotNotFoundError
from repro.sandbox.base import STATE_RUNNING
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import (STAGE_OS, STAGE_POST_JIT, STAGE_POST_LOAD,
                                  SnapshotImage)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation

#: Guest regions that belong in a VM-level memory snapshot.  The host-side
#: VMM overhead is process state of Firecracker itself, not guest memory.
GUEST_REGIONS = ("kernel", "runtime", "app", "heap", "jit_code")


class Snapshotter:
    """Creates :class:`SnapshotImage` objects from running microVMs."""

    def __init__(self, sim: "Simulation", config: SnapshotConfig) -> None:
        self.sim = sim
        self.config = config

    def create(self, worker: Worker, key: str, stage: str):
        """Snapshot *worker*'s microVM (a simulation generator).

        Returns the new :class:`SnapshotImage`.  The worker must be running
        and must be a microVM — VM-level snapshots are a hypervisor feature
        (containers would need CRIU, which is a different mechanism).
        """
        sandbox = worker.sandbox
        if not isinstance(sandbox, MicroVM):
            raise SandboxError(
                f"VM-level snapshot of non-VM sandbox {sandbox.name!r}")
        if sandbox.state != STATE_RUNNING:
            raise SandboxError(
                f"snapshot of {sandbox.name} in state {sandbox.state!r}")
        if sandbox.guest_ip is None or sandbox.guest_mac is None:
            raise SandboxError(
                f"snapshot of {sandbox.name} before network configuration")
        self._check_stage_consistency(worker, stage)

        regions_mb = {
            region: sandbox.space.region_rss_mb(region)
            for region in GUEST_REGIONS
            if sandbox.space.has_region(region)
        }
        image = SnapshotImage(
            key=key,
            language=sandbox.language,
            stage=stage,
            regions_mb=regions_mb,
            guest_ip=sandbox.guest_ip,
            guest_mac=sandbox.guest_mac,
            app=worker.app if stage != STAGE_OS else None,
            jit_state=worker.runtime.export_jit_state()
            if stage != STAGE_OS else {},
            created_at_ms=self.sim.now,
        )
        write_ms = (self.config.create_base_ms
                    + image.size_mb * self.config.create_per_mb_ms)
        yield self.sim.timeout(write_ms)
        return image

    @staticmethod
    def _check_stage_consistency(worker: Worker, stage: str) -> None:
        runtime = worker.runtime
        if stage == STAGE_OS:
            return
        if stage in (STAGE_POST_LOAD, STAGE_POST_JIT):
            if worker.app is None:
                raise SnapshotNotFoundError(
                    f"{stage} snapshot requires a loaded app")
        if stage == STAGE_POST_JIT and not runtime.jit.optimized_functions():
            raise SnapshotNotFoundError(
                "post-JIT snapshot requested but nothing is JIT-compiled; "
                "run the annotated __fireworks_jit() first (Figure 3)")
