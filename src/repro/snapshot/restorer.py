"""Restoring microVMs from snapshot images.

§3.4: "invoking the serverless function is nothing but loading the snapshot
as a file into memory".  The restored microVM maps every image region
MAP_PRIVATE from the image's page-cache segments, so clones share all clean
pages (Figure 4) and CoW-break only what they write.

Four restore policies are modeled:

* ``demand``      — demand paging with a warm page cache (the common case on
                    a busy host; the paper's steady-state numbers).
* ``demand-cold`` — demand paging with a cold page cache: every working-set
                    page is a random 4 KiB disk read (REAP's observed
                    bottleneck [54]).
* ``reap``        — REAP-style working-set prefetch: one sequential read of
                    the image before resuming (§7: Fireworks "can also
                    employ REAP's prefetching").
* ``lazy``        — chunk-granular lazy loading: sequentially prefetch only
                    the *recorded* working-set chunks, demand-fault the rest
                    with per-fault cost.  Without a profile (first restore)
                    everything the invocation touches is demand-faulted —
                    the honest fastpull cold case.  Emits ``prefetch`` /
                    ``demand-fault`` child spans and exact bytes-moved
                    counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import CalibratedParameters
from repro.errors import SnapshotNotFoundError, ValidationError
from repro.mem.host_memory import HostMemory
from repro.runtime import make_runtime
from repro.runtime.interpreter import LanguageRuntime
from repro.sandbox.base import STATE_RUNNING
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_OS, SnapshotImage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation

POLICY_DEMAND = "demand"
POLICY_DEMAND_COLD = "demand-cold"
POLICY_REAP = "reap"
POLICY_LAZY = "lazy"

_POLICIES = (POLICY_DEMAND, POLICY_DEMAND_COLD, POLICY_REAP, POLICY_LAZY)


@dataclass(frozen=True)
class LazyRestorePlan:
    """Exact byte/latency ledger of one lazy restore.

    ``touched_mb == covered_mb + faulted_mb`` holds *exactly* (it is
    defined as that sum): every byte the invocation touches is served by
    the prefetched chunk set or by a demand fault, never both, never
    neither.  ``prefetch_mb >= covered_mb`` — chunk-granular prefetch can
    over-read by at most the rounding of the recorded set to whole chunks.
    """

    touched_mb: float     # bytes the invocation faults in, total
    prefetch_mb: float    # bytes read by the sequential chunk prefetch
    covered_mb: float     # touched bytes the prefetch satisfied
    faulted_mb: float     # touched bytes served by demand faults
    n_faults: int         # chunk-granular fault count
    prefetch_ms: float
    fault_ms: float

    @property
    def bytes_moved_mb(self) -> float:
        """Bytes actually read from the store file."""
        return self.prefetch_mb + self.faulted_mb


class Restorer:
    """Builds ready-to-run workers from snapshot images."""

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: HostMemory, recorder=None,
                 faults=None) -> None:
        self.sim = sim
        self.params = params
        self.host_memory = host_memory
        self.recorder = recorder  # optional ReapRecorder (reap/lazy)
        self.faults = faults      # optional FaultInjector
        self.chaos = None         # optional chaos controller (slow-restore)
        self._clone_counter = 0
        # Lazy-restore byte ledger (exact, see LazyRestorePlan).
        self.bytes_prefetched_mb = 0.0
        self.bytes_demand_faulted_mb = 0.0
        self.demand_faults = 0
        self.lazy_restores = 0

    def _working_mb(self, image: SnapshotImage) -> float:
        layout = self.params.memory_layout(image.language)
        return image.size_mb * layout.snapshot_working_set_mb_fraction

    def _profile(self, image: SnapshotImage):
        if self.recorder is None:
            return None
        return self.recorder.profile_for(image)

    def lazy_plan(self, image: SnapshotImage) -> LazyRestorePlan:
        """The byte/latency ledger a lazy restore of *image* would incur
        right now (depends on whether a working-set profile is recorded)."""
        cfg = self.params.snapshot
        touched_raw = self._working_mb(image)
        profile = self._profile(image)
        prefetch_mb = (profile.chunk_bytes_mb(image)
                       if profile is not None else 0.0)
        covered_mb = min(touched_raw, prefetch_mb)
        faulted_mb = touched_raw - covered_mb
        if faulted_mb > 0.0:
            n_faults = max(1, int(math.ceil(faulted_mb / cfg.chunk_mb
                                            - 1e-12)))
        else:
            n_faults = 0
        return LazyRestorePlan(
            touched_mb=covered_mb + faulted_mb,
            prefetch_mb=prefetch_mb,
            covered_mb=covered_mb,
            faulted_mb=faulted_mb,
            n_faults=n_faults,
            prefetch_ms=prefetch_mb * cfg.prefetch_per_mb_ms,
            fault_ms=(faulted_mb * cfg.restore_per_working_mb_cold_ms
                      + n_faults * cfg.demand_fault_chunk_ms),
        )

    def restore_ms(self, image: SnapshotImage,
                   policy: str = POLICY_DEMAND) -> float:
        """The restore latency for *image* under *policy*."""
        if policy not in _POLICIES:
            raise ValidationError(f"unknown restore policy {policy!r}")
        cfg = self.params.snapshot
        working_mb = self._working_mb(image)
        if policy == POLICY_DEMAND:
            return cfg.restore_base_ms + working_mb * cfg.restore_per_working_mb_ms
        if policy == POLICY_DEMAND_COLD:
            return (cfg.restore_base_ms
                    + working_mb * cfg.restore_per_working_mb_cold_ms)
        if policy == POLICY_LAZY:
            plan = self.lazy_plan(image)
            return cfg.restore_base_ms + plan.prefetch_ms + plan.fault_ms
        # REAP: one sequential prefetch, then cheap faults.  With a recorded
        # working-set profile only those pages are read; without one the
        # whole image is (the conservative first-invocation behaviour).
        profile = self._profile(image)
        prefetch_mb = (profile.working_set_mb if profile is not None
                       else image.size_mb)
        return (cfg.restore_base_ms
                + prefetch_mb * cfg.prefetch_per_mb_ms
                + working_mb * cfg.restore_per_working_mb_ms * 0.1)

    def bytes_moved_mb(self, image: SnapshotImage,
                       policy: str = POLICY_DEMAND) -> float:
        """Bytes a restore under *policy* reads from the store file now.

        ``demand`` reads nothing (warm page cache); ``demand-cold`` random-
        reads the working set; ``reap`` sequentially reads the recorded set
        or the whole image; ``lazy`` reads the recorded chunks plus demand-
        faulted residual.
        """
        if policy not in _POLICIES:
            raise ValidationError(f"unknown restore policy {policy!r}")
        if policy == POLICY_DEMAND:
            return 0.0
        if policy == POLICY_DEMAND_COLD:
            return self._working_mb(image)
        if policy == POLICY_LAZY:
            return self.lazy_plan(image).bytes_moved_mb
        profile = self._profile(image)
        return (profile.working_set_mb if profile is not None
                else image.size_mb)

    def restore(self, image: SnapshotImage, policy: str = POLICY_DEMAND,
                name: str = "", mmds=None):
        """Restore a clone of *image* (a simulation generator) -> Worker.

        With a fault injector attached, an armed ``restore`` fault surfaces
        after the device-state load (where Firecracker's integrity check
        runs), leaving no clone behind.  ``mmds`` is an optional
        pre-populated host-side metadata store wired into the clone, so
        identity written before the restore is readable at resume time
        (§3.4).
        """
        restore_span = self.sim.tracer.span(
            "restore", policy=policy, image=image.key, stage=image.stage,
            image_mb=image.size_mb, generation=image.generation)
        with restore_span:
            duration = self.restore_ms(image, policy)  # validates policy
            slowdown = 1.0
            if self.chaos is not None:
                slowdown = self.chaos.restore_slowdown(self.sim.now)
                if slowdown != 1.0:
                    duration *= slowdown
                    restore_span.attrs["slowdown"] = slowdown
            base_elapsed = False
            if self.faults is not None:
                cfg = self.params.snapshot
                yield self.sim.timeout(cfg.restore_base_ms)
                duration = max(0.0, duration - cfg.restore_base_ms)
                base_elapsed = True
                self.faults.check("restore", image.key)
            segments = image.materialize(self.host_memory)
            self._clone_counter += 1
            vm_name = name or f"{image.key}-clone-{self._clone_counter}"

            microvm = MicroVM(self.sim, self.params, self.host_memory,
                              image.language, name=vm_name, mmds=mmds)
            # Snapshot clones inherit the snapshotted network identity
            # verbatim (§3.5) — the namespace/NAT layer makes that safe.
            microvm.assign_guest_addresses(image.guest_ip, image.guest_mac)
            microvm.restored_from_snapshot = True

            if policy == POLICY_LAZY:
                yield from self._lazy_load(image, restore_span, slowdown,
                                           base_elapsed)
            else:
                restore_span.attrs["bytes_moved_mb"] = self.bytes_moved_mb(
                    image, policy)
                yield self.sim.timeout(duration)

            # Map guest memory from the shared image segments, VMM state
            # fresh.
            microvm.space.map_private("vmm", microvm.layout.vmm_overhead_mb,
                                      "vmm")
            for region, segment in segments.items():
                microvm.space.map_segment(region, segment)
            microvm.state = STATE_RUNNING
            microvm.boot_completed_at = self.sim.now

            runtime = self._rebuild_runtime(image)
        return Worker(self.sim, microvm, runtime, app=image.app)

    def _lazy_load(self, image: SnapshotImage, restore_span,
                   slowdown: float, base_elapsed: bool):
        """The lazy-restore timeline: base (device state + mmap), then a
        sequential ``prefetch`` of the recorded chunks, then the
        ``demand-fault`` tail for the touched bytes the prefetch missed."""
        cfg = self.params.snapshot
        plan = self.lazy_plan(image)
        if not base_elapsed:
            yield self.sim.timeout(cfg.restore_base_ms * slowdown)
        if plan.prefetch_mb > 0.0:
            with self.sim.tracer.span(
                    "prefetch", kind="prefetch", mb=plan.prefetch_mb,
                    chunks=len(self._profile(image).chunks)):
                yield self.sim.timeout(plan.prefetch_ms * slowdown)
        if plan.faulted_mb > 0.0:
            with self.sim.tracer.span(
                    "demand-fault", kind="demand-fault", mb=plan.faulted_mb,
                    faults=plan.n_faults):
                yield self.sim.timeout(plan.fault_ms * slowdown)
        self.bytes_prefetched_mb += plan.prefetch_mb
        self.bytes_demand_faulted_mb += plan.faulted_mb
        self.demand_faults += plan.n_faults
        self.lazy_restores += 1
        restore_span.attrs["bytes_moved_mb"] = plan.bytes_moved_mb
        restore_span.attrs["prefetched_mb"] = plan.prefetch_mb
        restore_span.attrs["demand_faulted_mb"] = plan.faulted_mb

    # -- internal -----------------------------------------------------------------
    def _rebuild_runtime(self, image: SnapshotImage) -> LanguageRuntime:
        runtime = make_runtime(self.sim, self.params, image.language)
        if image.stage == STAGE_OS:
            # The OS-stage image has the runtime agent up but nothing loaded.
            runtime.state = LanguageRuntime.STATE_LAUNCHED
            return runtime
        if image.app is None:
            raise SnapshotNotFoundError(
                f"{image.stage} image {image.key!r} has no app recorded")
        runtime.state = LanguageRuntime.STATE_LOADED
        runtime.app = image.app
        runtime.jit.import_state(image.jit_state)
        return runtime
