"""Restoring microVMs from snapshot images.

§3.4: "invoking the serverless function is nothing but loading the snapshot
as a file into memory".  The restored microVM maps every image region
MAP_PRIVATE from the image's page-cache segments, so clones share all clean
pages (Figure 4) and CoW-break only what they write.

Three restore policies are modeled:

* ``demand``      — demand paging with a warm page cache (the common case on
                    a busy host; the paper's steady-state numbers).
* ``demand-cold`` — demand paging with a cold page cache: every working-set
                    page is a random 4 KiB disk read (REAP's observed
                    bottleneck [54]).
* ``reap``        — REAP-style working-set prefetch: one sequential read of
                    the image before resuming (§7: Fireworks "can also
                    employ REAP's prefetching").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import CalibratedParameters
from repro.errors import SnapshotNotFoundError
from repro.mem.host_memory import HostMemory
from repro.runtime import make_runtime
from repro.runtime.interpreter import LanguageRuntime
from repro.sandbox.base import STATE_RUNNING
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_OS, SnapshotImage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation

POLICY_DEMAND = "demand"
POLICY_DEMAND_COLD = "demand-cold"
POLICY_REAP = "reap"

_POLICIES = (POLICY_DEMAND, POLICY_DEMAND_COLD, POLICY_REAP)


class Restorer:
    """Builds ready-to-run workers from snapshot images."""

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: HostMemory, recorder=None,
                 faults=None) -> None:
        self.sim = sim
        self.params = params
        self.host_memory = host_memory
        self.recorder = recorder  # optional ReapRecorder (POLICY_REAP)
        self.faults = faults      # optional FaultInjector
        self.chaos = None         # optional chaos controller (slow-restore)
        self._clone_counter = 0

    def restore_ms(self, image: SnapshotImage,
                   policy: str = POLICY_DEMAND) -> float:
        """The restore latency for *image* under *policy*."""
        if policy not in _POLICIES:
            raise SnapshotNotFoundError(f"unknown restore policy {policy!r}")
        cfg = self.params.snapshot
        layout = self.params.memory_layout(image.language)
        working_mb = image.size_mb * layout.snapshot_working_set_mb_fraction
        if policy == POLICY_DEMAND:
            return cfg.restore_base_ms + working_mb * cfg.restore_per_working_mb_ms
        if policy == POLICY_DEMAND_COLD:
            return (cfg.restore_base_ms
                    + working_mb * cfg.restore_per_working_mb_cold_ms)
        # REAP: one sequential prefetch, then cheap faults.  With a recorded
        # working-set profile only those pages are read; without one the
        # whole image is (the conservative first-invocation behaviour).
        profile = (self.recorder.profile_for(image)
                   if self.recorder is not None else None)
        prefetch_mb = (profile.working_set_mb if profile is not None
                       else image.size_mb)
        return (cfg.restore_base_ms
                + prefetch_mb * cfg.prefetch_per_mb_ms
                + working_mb * cfg.restore_per_working_mb_ms * 0.1)

    def restore(self, image: SnapshotImage, policy: str = POLICY_DEMAND,
                name: str = "", mmds=None):
        """Restore a clone of *image* (a simulation generator) -> Worker.

        With a fault injector attached, an armed ``restore`` fault surfaces
        after the device-state load (where Firecracker's integrity check
        runs), leaving no clone behind.  ``mmds`` is an optional
        pre-populated host-side metadata store wired into the clone, so
        identity written before the restore is readable at resume time
        (§3.4).
        """
        restore_span = self.sim.tracer.span(
            "restore", policy=policy, image=image.key, stage=image.stage,
            image_mb=image.size_mb, generation=image.generation)
        with restore_span:
            duration = self.restore_ms(image, policy)  # validates policy
            if self.chaos is not None:
                slowdown = self.chaos.restore_slowdown(self.sim.now)
                if slowdown != 1.0:
                    duration *= slowdown
                    restore_span.attrs["slowdown"] = slowdown
            if self.faults is not None:
                cfg = self.params.snapshot
                yield self.sim.timeout(cfg.restore_base_ms)
                duration = max(0.0, duration - cfg.restore_base_ms)
                self.faults.check("restore", image.key)
            segments = image.materialize(self.host_memory)
            self._clone_counter += 1
            vm_name = name or f"{image.key}-clone-{self._clone_counter}"

            microvm = MicroVM(self.sim, self.params, self.host_memory,
                              image.language, name=vm_name, mmds=mmds)
            # Snapshot clones inherit the snapshotted network identity
            # verbatim (§3.5) — the namespace/NAT layer makes that safe.
            microvm.assign_guest_addresses(image.guest_ip, image.guest_mac)
            microvm.restored_from_snapshot = True

            yield self.sim.timeout(duration)

            # Map guest memory from the shared image segments, VMM state
            # fresh.
            microvm.space.map_private("vmm", microvm.layout.vmm_overhead_mb,
                                      "vmm")
            for region, segment in segments.items():
                microvm.space.map_segment(region, segment)
            microvm.state = STATE_RUNNING
            microvm.boot_completed_at = self.sim.now

            runtime = self._rebuild_runtime(image)
        return Worker(self.sim, microvm, runtime, app=image.app)

    # -- internal -----------------------------------------------------------------
    def _rebuild_runtime(self, image: SnapshotImage) -> LanguageRuntime:
        runtime = make_runtime(self.sim, self.params, image.language)
        if image.stage == STAGE_OS:
            # The OS-stage image has the runtime agent up but nothing loaded.
            runtime.state = LanguageRuntime.STATE_LAUNCHED
            return runtime
        if image.app is None:
            raise SnapshotNotFoundError(
                f"{image.stage} image {image.key!r} has no app recorded")
        runtime.state = LanguageRuntime.STATE_LOADED
        runtime.app = image.app
        runtime.jit.import_state(image.jit_state)
        return runtime
