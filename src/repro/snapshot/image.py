"""Snapshot images: serialized guest memory + device state + runtime state.

An image captures, per §3.3 and Figure 4: guest kernel, libraries, language
runtime, app code, heap, and — for post-JIT snapshots — the JITted machine
code, plus the guest's network identity (which clones inherit, §3.5) and the
runtime's JIT tier state (what makes the restored function "already
compiled").

On the host, the image file's page cache is modeled as one
:class:`SharedSegment` per region; every restored microVM maps those
segments MAP_PRIVATE (§3.1: "FIREWORKS uses private mapping for the
snapshot").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SnapshotNotFoundError
from repro.mem.host_memory import HostMemory
from repro.mem.segments import SharedSegment
from repro.net.address import IpAddress, MacAddress
from repro.runtime.interpreter import AppCode
from repro.runtime.jit import FunctionJitState
from repro.snapshot.chunks import DEFAULT_CHUNK_MB, ChunkMap

# Snapshot stages (Fig 11/12 factor analysis).
STAGE_OS = "os"              # after guest OS boot + runtime agent launch
STAGE_POST_LOAD = "post-load"  # after the function is loaded (no forced JIT)
STAGE_POST_JIT = "post-jit"  # after loading AND JITting — Fireworks proper

_VALID_STAGES = (STAGE_OS, STAGE_POST_LOAD, STAGE_POST_JIT)


@dataclass
class SnapshotImage:
    """One VM-level snapshot of an installed function (or boot template)."""

    key: str
    language: str
    stage: str
    regions_mb: Dict[str, float]
    guest_ip: IpAddress
    guest_mac: MacAddress
    app: Optional[AppCode] = None
    jit_state: Dict[str, FunctionJitState] = field(default_factory=dict)
    created_at_ms: float = 0.0
    generation: int = 1      # bumped by ASLR-driven regeneration (§6)
    _segments: Dict[str, SharedSegment] = field(default_factory=dict)
    _host: Optional[HostMemory] = None

    def __post_init__(self) -> None:
        if self.stage not in _VALID_STAGES:
            raise SnapshotNotFoundError(
                f"invalid snapshot stage {self.stage!r}")

    @property
    def size_mb(self) -> float:
        """Image file size: all snapshotted guest memory."""
        return sum(self.regions_mb.values())

    def chunk_map(self, chunk_size_mb: float = DEFAULT_CHUNK_MB) -> ChunkMap:
        """The fixed-size chunk view of this image file (lazy loading)."""
        return ChunkMap(self.size_mb, chunk_size_mb)

    # -- page cache management --------------------------------------------------
    def materialize(self, host: HostMemory) -> Dict[str, SharedSegment]:
        """Fault the image into the host page cache (first restore).

        Idempotent: later restores reuse the same segments — that reuse *is*
        the memory sharing of Figure 4.
        """
        if not self._segments:
            self._host = host
            for region, mb in self.regions_mb.items():
                segment = host.create_segment(
                    mb, kind=region,
                    name=f"{self.key}.g{self.generation}.{region}")
                segment.pin()  # the store's file copy keeps it cached
                self._segments[region] = segment
        return dict(self._segments)

    @property
    def materialized(self) -> bool:
        return bool(self._segments)

    def on_evicted(self) -> None:
        """Store eviction hook: drop the page-cache pin."""
        for segment in self._segments.values():
            segment.unpin()
        self._segments.clear()

    def clone_for_transfer(self) -> "SnapshotImage":
        """A same-generation replica for another host's snapshot store.

        Page-cache segments are per-host (``materialize`` pins them on one
        ``HostMemory``), so a cross-host copy must be a distinct image
        object that materializes its own segments on the destination.  The
        key and generation are unchanged: it is the same snapshot file, so
        recorded working-set profiles keyed on them still match.
        """
        return SnapshotImage(
            key=self.key,
            language=self.language,
            stage=self.stage,
            regions_mb=dict(self.regions_mb),
            guest_ip=self.guest_ip,
            guest_mac=self.guest_mac,
            app=self.app,
            jit_state={name: state.clone()
                       for name, state in self.jit_state.items()},
            created_at_ms=self.created_at_ms,
            generation=self.generation,
        )

    def clone_for_regeneration(self) -> "SnapshotImage":
        """A fresh-generation image (periodic ASLR re-randomization, §6)."""
        return SnapshotImage(
            key=self.key,
            language=self.language,
            stage=self.stage,
            regions_mb=dict(self.regions_mb),
            guest_ip=self.guest_ip,
            guest_mac=self.guest_mac,
            app=self.app,
            jit_state={name: state.clone()
                       for name, state in self.jit_state.items()},
            created_at_ms=self.created_at_ms,
            generation=self.generation + 1,
        )

    def __repr__(self) -> str:
        return (f"<SnapshotImage {self.key} stage={self.stage} "
                f"{self.size_mb:.0f}MiB gen={self.generation}>")
