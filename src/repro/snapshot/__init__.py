"""VM-level snapshot subsystem: images, snapshotter, CoW restorer."""

from repro.snapshot.image import (STAGE_OS, STAGE_POST_JIT, STAGE_POST_LOAD,
                                  SnapshotImage)
from repro.snapshot.prefetch import ReapRecorder, WorkingSetProfile
from repro.snapshot.restorer import (POLICY_DEMAND, POLICY_DEMAND_COLD,
                                     POLICY_REAP, Restorer)
from repro.snapshot.snapshotter import GUEST_REGIONS, Snapshotter

__all__ = [
    "GUEST_REGIONS",
    "POLICY_DEMAND",
    "POLICY_DEMAND_COLD",
    "POLICY_REAP",
    "ReapRecorder",
    "Restorer",
    "STAGE_OS",
    "STAGE_POST_JIT",
    "STAGE_POST_LOAD",
    "SnapshotImage",
    "Snapshotter",
    "WorkingSetProfile",
]
