"""Seeded, schedulable fault plans for the chaos engine.

A :class:`ChaosPlan` is a sorted list of :class:`ChaosEvent`\\ s in
simulation time.  Plans are plain data: the same plan applied to the same
seeded experiment produces byte-identical results, which is what makes the
chaos suite a *regression* suite rather than a flake generator.

Fault taxonomy (docs/chaos.md):

* ``host-crash``          — the host dies: placement skips it, its warm
                            pool is torn down, its snapshot store is lost;
* ``host-recover``        — the crashed host rejoins empty;
* ``host-degraded``       — the host stays up but every invocation placed
                            on it pays an extra dispatch penalty for a
                            window;
* ``bus-partition``       — the controller cannot publish to the message
                            bus for a window (every dispatch fails fast);
* ``snapshot-store-loss`` — one host's snapshot store is wiped (disk
                            loss) while the host stays up;
* ``slow-restore``        — every snapshot restore is slowed by a factor
                            for a window (page-cache thrash, noisy
                            neighbour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ChaosError
from repro.sim.rng import RngStreams

KIND_HOST_CRASH = "host-crash"
KIND_HOST_RECOVER = "host-recover"
KIND_HOST_DEGRADED = "host-degraded"
KIND_BUS_PARTITION = "bus-partition"
KIND_STORE_LOSS = "snapshot-store-loss"
KIND_SLOW_RESTORE = "slow-restore"

KINDS = (KIND_HOST_CRASH, KIND_HOST_RECOVER, KIND_HOST_DEGRADED,
         KIND_BUS_PARTITION, KIND_STORE_LOSS, KIND_SLOW_RESTORE)

#: Kinds that target one host (require ``host_id``).
_HOST_KINDS = (KIND_HOST_CRASH, KIND_HOST_RECOVER, KIND_HOST_DEGRADED,
               KIND_STORE_LOSS)
#: Kinds that open a time window (require ``duration_ms > 0``).
_WINDOW_KINDS = (KIND_HOST_DEGRADED, KIND_BUS_PARTITION, KIND_SLOW_RESTORE)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    ``duration_ms`` opens a window for the window kinds; ``penalty_ms``
    is the per-invocation dispatch penalty of ``host-degraded``;
    ``factor`` is the restore multiplier of ``slow-restore``.
    """

    at_ms: float
    kind: str
    host_id: Optional[int] = None
    duration_ms: float = 0.0
    penalty_ms: float = 0.0
    factor: float = 1.0

    def validate(self) -> None:
        """Reject malformed events (unknown kind, missing target, ...)."""
        if self.kind not in KINDS:
            raise ChaosError(f"unknown chaos event kind {self.kind!r}")
        if self.at_ms < 0:
            raise ChaosError(f"{self.kind} scheduled at {self.at_ms}ms < 0")
        if self.kind in _HOST_KINDS and self.host_id is None:
            raise ChaosError(f"{self.kind} needs a host_id")
        if self.kind in _WINDOW_KINDS and self.duration_ms <= 0:
            raise ChaosError(f"{self.kind} needs duration_ms > 0")
        if self.kind == KIND_HOST_DEGRADED and self.penalty_ms <= 0:
            raise ChaosError("host-degraded needs penalty_ms > 0")
        if self.kind == KIND_SLOW_RESTORE and self.factor < 1.0:
            raise ChaosError(
                f"slow-restore factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class ChaosPlan:
    """A validated, time-sorted sequence of fault events."""

    events: Tuple[ChaosEvent, ...]

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        for event in events:
            event.validate()
        object.__setattr__(
            self, "events",
            tuple(sorted(events, key=lambda event: event.at_ms)))

    def __len__(self) -> int:
        return len(self.events)

    def crash_times(self) -> Tuple[Tuple[float, int], ...]:
        """``(at_ms, host_id)`` of every host-crash, in order."""
        return tuple((event.at_ms, event.host_id) for event in self.events
                     if event.kind == KIND_HOST_CRASH)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def single_crash(cls, at_ms: float, host_id: int,
                     recover_at_ms: Optional[float] = None) -> "ChaosPlan":
        """The canonical experiment: one host dies mid-trace (optionally
        rejoining later, empty)."""
        events = [ChaosEvent(at_ms, KIND_HOST_CRASH, host_id=host_id)]
        if recover_at_ms is not None:
            if recover_at_ms <= at_ms:
                raise ChaosError(
                    f"recovery at {recover_at_ms}ms must follow the crash "
                    f"at {at_ms}ms")
            events.append(
                ChaosEvent(recover_at_ms, KIND_HOST_RECOVER, host_id=host_id))
        return cls(events)

    @classmethod
    def random(cls, seed: int, n_hosts: int, duration_ms: float,
               n_events: int = 5) -> "ChaosPlan":
        """A seeded random plan (property tests): same seed, same plan."""
        if n_hosts < 1:
            raise ChaosError(f"need >= 1 host, got {n_hosts}")
        if duration_ms <= 0:
            raise ChaosError(f"need duration_ms > 0, got {duration_ms}")
        rng = RngStreams(seed).stream("chaos-plan")
        events = []
        for _ in range(n_events):
            at_ms = rng.uniform(0.05, 0.85) * duration_ms
            kind = rng.choice((KIND_HOST_CRASH, KIND_HOST_DEGRADED,
                               KIND_BUS_PARTITION, KIND_STORE_LOSS,
                               KIND_SLOW_RESTORE))
            if kind == KIND_HOST_CRASH:
                host_id = rng.randrange(n_hosts)
                events.append(
                    ChaosEvent(at_ms, KIND_HOST_CRASH, host_id=host_id))
                if rng.random() < 0.5:
                    recover_at = at_ms + rng.uniform(0.02, 0.1) * duration_ms
                    events.append(ChaosEvent(recover_at, KIND_HOST_RECOVER,
                                             host_id=host_id))
            elif kind == KIND_HOST_DEGRADED:
                events.append(ChaosEvent(
                    at_ms, kind, host_id=rng.randrange(n_hosts),
                    duration_ms=rng.uniform(0.02, 0.1) * duration_ms,
                    penalty_ms=rng.uniform(5.0, 50.0)))
            elif kind == KIND_BUS_PARTITION:
                events.append(ChaosEvent(
                    at_ms, kind,
                    duration_ms=rng.uniform(0.005, 0.02) * duration_ms))
            elif kind == KIND_STORE_LOSS:
                events.append(ChaosEvent(at_ms, kind,
                                         host_id=rng.randrange(n_hosts)))
            else:  # slow-restore
                events.append(ChaosEvent(
                    at_ms, kind,
                    duration_ms=rng.uniform(0.02, 0.1) * duration_ms,
                    factor=rng.uniform(1.5, 4.0)))
        return cls(events)
