"""Cluster-wide chaos engine: scheduled host failures, failover, retry.

The plan (:mod:`repro.chaos.plan`) is data; the controller
(:mod:`repro.chaos.controller`) applies it to a live platform on the
simulation clock.  See docs/chaos.md for the fault taxonomy and the
determinism story.
"""

from repro.chaos.controller import ChaosEventRecord, HostFailureController
from repro.chaos.plan import (KIND_BUS_PARTITION, KIND_HOST_CRASH,
                              KIND_HOST_DEGRADED, KIND_HOST_RECOVER,
                              KIND_SLOW_RESTORE, KIND_STORE_LOSS, KINDS,
                              ChaosEvent, ChaosPlan)

__all__ = [
    "ChaosEvent",
    "ChaosEventRecord",
    "ChaosPlan",
    "HostFailureController",
    "KINDS",
    "KIND_BUS_PARTITION",
    "KIND_HOST_CRASH",
    "KIND_HOST_DEGRADED",
    "KIND_HOST_RECOVER",
    "KIND_SLOW_RESTORE",
    "KIND_STORE_LOSS",
]
