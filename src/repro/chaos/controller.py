"""The chaos controller: applies a :class:`ChaosPlan` to a live platform.

:class:`HostFailureController` binds to a platform, walks the plan's
events on the simulation clock, and mutates cluster state exactly the way
a machine failure would: a crashed host stops advertising room (every
placement policy fails over), its warm pool is torn down, and its
snapshot-store replicas die with its disk.  The platform's retry loop
(:meth:`repro.platforms.base.ServerlessPlatform.invoke`) sees the fallout
as :class:`~repro.errors.RetryableChaosError`\\ s and re-dispatches.

Everything is deterministic: the plan is data, the controller draws no
randomness of its own, and the retry path's jitter comes from the seeded
``chaos-retry`` stream — two identically-seeded runs replay the same
failures, the same backoffs, and the same traces byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.chaos.plan import (KIND_BUS_PARTITION, KIND_HOST_CRASH,
                              KIND_HOST_DEGRADED, KIND_HOST_RECOVER,
                              KIND_SLOW_RESTORE, KIND_STORE_LOSS, ChaosEvent,
                              ChaosPlan)
from repro.errors import ChaosError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Host
    from repro.platforms.base import ServerlessPlatform
    from repro.sandbox.worker import Worker


@dataclass(frozen=True)
class ChaosEventRecord:
    """One applied fault, as the controller's log remembers it."""

    at_ms: float
    kind: str
    host_id: Optional[int]
    detail: str


class HostFailureController:
    """Drives host failures (and the other fault kinds) from a plan.

    *failover* gates the platform-side recovery machinery that goes
    beyond rerouting: with it off, requests are still retried on live
    hosts, but a snapshot whose only replica died is simply gone (the
    invocation fails); with it on, Fireworks regenerates the snapshot on
    the failover host from the installed image's metadata.
    """

    def __init__(self, platform: "ServerlessPlatform", plan: ChaosPlan,
                 failover: bool = True) -> None:
        if platform.chaos is not None:
            raise ChaosError(
                f"{platform.name} already has a chaos controller attached")
        self.platform = platform
        self.plan = plan
        self.failover = failover
        self.sim = platform.sim
        self.log: List[ChaosEventRecord] = []
        self._partitions: List[Tuple[float, float]] = []
        self._slow_windows: List[Tuple[float, float, float]] = []
        platform.chaos = self
        platform.on_chaos_attached()
        self.process = self.sim.process(self._run(), name="chaos-controller")

    # -- plan execution --------------------------------------------------------
    def _run(self):
        for event in self.plan.events:
            if event.at_ms > self.sim.now:
                yield self.sim.timeout(event.at_ms - self.sim.now)
            self._apply(event)

    def _apply(self, event: ChaosEvent) -> None:
        now = self.sim.now
        if event.kind == KIND_HOST_CRASH:
            host = self.platform.cluster.host(event.host_id)
            if host.down:
                self._note(event, "already down (no-op)")
                return
            # Serving layer: mark_down flushes queued admission waiters
            # with HostDownError (they retry/fail over); count them here
            # so the log shows what the crash displaced.
            queued = (host.admission.depth
                      if host.admission is not None else 0)
            host.mark_down(now)
            drained = host.pool.drain_all()
            for entry in drained:
                self._teardown(entry.worker)
            lost = host.store.clear()
            self.platform.on_host_crash(host)
            self._note(event, f"drained {len(drained)} warm worker(s), "
                              f"lost {lost} snapshot(s), "
                              f"flushed {queued} queued request(s)")
        elif event.kind == KIND_HOST_RECOVER:
            host = self.platform.cluster.host(event.host_id)
            if not host.down:
                self._note(event, "already up (no-op)")
                return
            host.mark_up()
            self._note(event, "rejoined empty")
        elif event.kind == KIND_HOST_DEGRADED:
            host = self.platform.cluster.host(event.host_id)
            host.degrade(now + event.duration_ms, event.penalty_ms)
            self._note(event, f"+{event.penalty_ms:g}ms dispatch for "
                              f"{event.duration_ms:g}ms")
        elif event.kind == KIND_BUS_PARTITION:
            self._partitions.append((now, now + event.duration_ms))
            self._note(event, f"bus unreachable for {event.duration_ms:g}ms")
        elif event.kind == KIND_STORE_LOSS:
            host = self.platform.cluster.host(event.host_id)
            lost = host.store.clear()
            self._note(event, f"lost {lost} snapshot(s), host stays up")
        elif event.kind == KIND_SLOW_RESTORE:
            self._slow_windows.append(
                (now, now + event.duration_ms, event.factor))
            self._note(event, f"restores x{event.factor:g} for "
                              f"{event.duration_ms:g}ms")
        else:  # pragma: no cover - ChaosPlan validates kinds
            raise ChaosError(f"unknown chaos event kind {event.kind!r}")

    def _teardown(self, worker: "Worker") -> None:
        # The sandbox dies with the machine; run its teardown as a
        # detached process so reclamation never blocks the event walk.
        self.sim.process(worker.stop(),
                         name=f"chaos-teardown:{worker.sandbox.name}")

    def _note(self, event: ChaosEvent, detail: str) -> None:
        self.log.append(ChaosEventRecord(
            at_ms=self.sim.now, kind=event.kind, host_id=event.host_id,
            detail=detail))

    # -- state queries (the platform's invoke path asks these) -----------------
    def bus_partitioned(self, now_ms: float) -> bool:
        """Whether the controller-to-bus link is partitioned at *now_ms*."""
        return any(start <= now_ms < end
                   for start, end in self._partitions)

    def restore_slowdown(self, now_ms: float) -> float:
        """The restore multiplier in force at *now_ms* (1.0 = none)."""
        factor = 1.0
        for start, end, window_factor in self._slow_windows:
            if start <= now_ms < end:
                factor = max(factor, window_factor)
        return factor

    def hosts_down(self) -> Tuple[int, ...]:
        """Host ids currently marked down."""
        return tuple(host.host_id for host in self.platform.cluster.hosts
                     if host.down)
