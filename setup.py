"""Setup shim so `pip install -e .` works without the `wheel` package.

The environment has setuptools 65 but no `wheel`, so PEP 660 editable
installs fail; `python setup.py develop` (or pip's legacy fallback) works.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
