#!/usr/bin/env python3
"""CI smoke test for the experiment service's determinism guarantee.

Usage: ``python tools/serve_smoke.py [scenario-name]``

Boots the real HTTP server (``repro.serve.http``) on an ephemeral
localhost port, submits *scenario-name* (default ``search-smoke``)
twice over real sockets, waits for both runs, and byte-diffs the
results, binary results, and figures artifacts between the two runs —
the same sha256 byte-identity the end-to-end test suite pins, but
through the full socket + chunked-SSE stack a user actually hits.

Exit code 0 when both runs succeed and every artifact pair is
byte-identical; 1 otherwise (details on stderr).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import threading
import urllib.request
from typing import Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def fetch(url: str, data: bytes = None) -> bytes:
    request = urllib.request.Request(url, data=data)
    if data is not None:
        request.add_header("content-type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.read()


def run_once(base: str, scenario: str) -> Tuple[str, bytes, bytes, bytes]:
    """Submit, wait via long-poll, stream the SSE log, fetch artifacts."""
    body = json.loads(fetch(
        f"{base}/experiments",
        data=json.dumps({"scenario": scenario}).encode()))
    run_id = body["id"]

    for _ in range(120):
        snapshot = json.loads(fetch(f"{base}/experiments/{run_id}?wait=5"))
        if snapshot["state"] in ("done", "failed"):
            break
    if snapshot["state"] != "done":
        raise RuntimeError(
            f"run {run_id} ended {snapshot['state']}: "
            f"{snapshot.get('error')}")

    # Exercise the chunked SSE path too: the stream must terminate.
    stream = fetch(f"{base}/experiments/{run_id}/events").decode()
    if "run-finished" not in stream:
        raise RuntimeError(f"run {run_id}: SSE stream missing terminal "
                           "event")

    return (run_id,
            fetch(f"{base}/experiments/{run_id}/results"),
            fetch(f"{base}/experiments/{run_id}/results?format=binary"),
            fetch(f"{base}/experiments/{run_id}/figures"))


def main(argv) -> int:
    scenario = argv[1] if len(argv) > 1 else "search-smoke"
    from repro.serve.http import make_server

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        server = make_server("127.0.0.1", 0,
                             cache_dir=os.path.join(tmp, "cache"))
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            first = run_once(base, scenario)
            second = run_once(base, scenario)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    failures = 0
    for label, a, b in (("results", first[1], second[1]),
                        ("results?format=binary", first[2], second[2]),
                        ("figures", first[3], second[3])):
        digest_a = hashlib.sha256(a).hexdigest()
        digest_b = hashlib.sha256(b).hexdigest()
        status = "OK " if digest_a == digest_b else "DIFF"
        print(f"[{status}] {label}: {first[0]} {digest_a[:16]} vs "
              f"{second[0]} {digest_b[:16]}")
        if digest_a != digest_b:
            failures += 1
    if failures:
        print(f"error: {failures} artifact(s) differ between two "
              f"consecutive runs of {scenario!r}", file=sys.stderr)
        return 1
    print(f"serve smoke: {scenario!r} byte-identical across two runs "
          "(computed, then cache-served)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
