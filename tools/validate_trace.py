#!/usr/bin/env python3
"""Validate a Chrome ``trace_event`` JSON file (stdlib only).

Usage: ``python tools/validate_trace.py <trace.json>``

Checks the shape ``chrome://tracing``/Perfetto expects from
``repro trace --format chrome``:

* top level is an object with a ``traceEvents`` list;
* every event is an object carrying ``name``, ``ph``, ``ts``, ``pid`` and
  ``tid``;
* complete events (``ph == "X"``) carry a non-negative ``dur``;
* timestamps are non-negative and finite;
* placement events (``cat == "placement"``) carry the chosen ``host`` and
  the ``policy`` that chose it in ``args``;
* retry events (``cat == "retry"``) carry an integer ``args.attempt >= 1``;
* failover events (``cat == "failover"``) carry an integer
  ``args.from_host`` naming the host the request is fleeing;
* every retry/failover event nests inside some ``invoke`` complete event
  on its thread (a retry outside an invocation is a structural bug).

Exit code 0 when the file is valid, 1 otherwise (problems on stderr).
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, List

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")

#: Nesting tolerance in microseconds: float noise from the ms->us scaling.
_NEST_EPS_US = 1e-3


def _invoke_windows(events: List[Any]) -> dict:
    """``tid -> [(ts, ts+dur), ...]`` of every well-formed invoke event."""
    windows: dict = {}
    for event in events:
        if not isinstance(event, dict) or event.get("cat") != "invoke":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            windows.setdefault(event.get("tid"), []).append((ts, ts + dur))
    return windows


def _nested_in_invoke(event: dict, windows: dict) -> bool:
    ts = event.get("ts")
    dur = event.get("dur") if isinstance(event.get("dur"),
                                         (int, float)) else 0.0
    if not isinstance(ts, (int, float)):
        return False
    return any(start - _NEST_EPS_US <= ts
               and ts + dur <= end + _NEST_EPS_US
               for start, end in windows.get(event.get("tid"), ()))


def validate_trace(payload: Any) -> List[str]:
    """All shape problems found in *payload*; empty means valid."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    invoke_windows = _invoke_windows(events)
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if not math.isfinite(ts) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        elif "ts" in event:
            problems.append(f"{where}: ts is not a number")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) \
                    or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0, "
                                f"got {dur!r}")
        if event.get("cat") == "placement":
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: placement event needs args")
                continue
            if not isinstance(args.get("host"), int):
                problems.append(f"{where}: placement event needs an integer "
                                f"args.host, got {args.get('host')!r}")
            if not isinstance(args.get("policy"), str):
                problems.append(f"{where}: placement event needs a string "
                                f"args.policy, got {args.get('policy')!r}")
        if event.get("cat") in ("retry", "failover"):
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: {event['cat']} event needs args")
                continue
            if event["cat"] == "retry":
                attempt = args.get("attempt")
                if not isinstance(attempt, int) or attempt < 1:
                    problems.append(
                        f"{where}: retry event needs an integer "
                        f"args.attempt >= 1, got {attempt!r}")
            else:
                from_host = args.get("from_host")
                if not isinstance(from_host, int):
                    problems.append(
                        f"{where}: failover event needs an integer "
                        f"args.from_host, got {from_host!r}")
            if not _nested_in_invoke(event, invoke_windows):
                problems.append(
                    f"{where}: {event['cat']} event is not nested inside "
                    "any invoke event on its tid")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the exit code."""
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 1
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {argv[1]}: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace(payload)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"{argv[1]}: valid trace_event JSON "
          f"({len(payload['traceEvents'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
