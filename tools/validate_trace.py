#!/usr/bin/env python3
"""Validate a Chrome ``trace_event`` JSON file (stdlib only).

Usage: ``python tools/validate_trace.py <trace.json>``

Checks the shape ``chrome://tracing``/Perfetto expects from
``repro trace --format chrome``:

* top level is an object with a ``traceEvents`` list;
* every event is an object carrying ``name``, ``ph``, ``ts``, ``pid`` and
  ``tid``;
* complete events (``ph == "X"``) carry a non-negative ``dur``;
* timestamps are non-negative and finite;
* placement events (``cat == "placement"``) carry the chosen ``host``,
  the ``policy`` name that chose it, and the policy ``source``
  (``"builtin"`` or ``"dsl"``) in ``args``;
* retry events (``cat == "retry"``) carry an integer ``args.attempt >= 1``;
* failover events (``cat == "failover"``) carry an integer
  ``args.from_host`` naming the host the request is fleeing;
* every retry/failover event nests inside some ``invoke`` complete event
  on its thread (a retry outside an invocation is a structural bug);
* lazy-restore events (``cat == "prefetch"`` / ``"demand-fault"``) carry a
  non-negative ``args.mb`` and nest inside some ``restore`` complete event
  on their thread (a page-load phase outside a restore is a structural
  bug);
* streamed snapshot transfers (``cat == "transfer"`` with
  ``args.streamed``) contain a nested ``transfer-working-set`` event, and
  every ``transfer-residual`` event for the same key+destination starts at
  or after that working-set portion ends — the working set moves *first*;
* chain events (``cat == "chain"``) carry the DAG name, execution mode,
  an integer stage count, and an ``args.end_to_end_ms`` equal to the
  event's own duration — the chain root *is* the end-to-end latency;
* stage events (``cat == "stage"``) carry their stage/function/chain ids
  and nest inside the chain event they name on the same thread;
* db-trigger events (``cat == "db-trigger"``) carry the database and
  function, and start at or after the first ``db-put`` to that database
  ends — a change feed cannot fire before any write happened.

Exit code 0 when the file is valid, 1 otherwise (problems on stderr).
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, List

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")

#: Nesting tolerance in microseconds: float noise from the ms->us scaling.
_NEST_EPS_US = 1e-3


def _invoke_windows(events: List[Any]) -> dict:
    """``tid -> [(ts, ts+dur), ...]`` of every well-formed invoke event."""
    windows: dict = {}
    for event in events:
        if not isinstance(event, dict) or event.get("cat") != "invoke":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            windows.setdefault(event.get("tid"), []).append((ts, ts + dur))
    return windows


def _nested_in_invoke(event: dict, windows: dict) -> bool:
    ts = event.get("ts")
    dur = event.get("dur") if isinstance(event.get("dur"),
                                         (int, float)) else 0.0
    if not isinstance(ts, (int, float)):
        return False
    return any(start - _NEST_EPS_US <= ts
               and ts + dur <= end + _NEST_EPS_US
               for start, end in windows.get(event.get("tid"), ()))


def _restore_windows(events: List[Any]) -> dict:
    """``tid -> [(ts, ts+dur), ...]`` of every complete restore event."""
    windows: dict = {}
    for event in events:
        if not isinstance(event, dict) or event.get("name") != "restore" \
                or event.get("ph") != "X":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            windows.setdefault(event.get("tid"), []).append((ts, ts + dur))
    return windows


def _working_set_ends(events: List[Any]) -> dict:
    """``(key, dst) -> latest working-set portion end`` per streamed
    transfer, pairing each ``transfer-working-set`` child with the
    ``cat == "transfer"`` event whose window contains it on the same tid."""
    ends: dict = {}
    transfers = [e for e in events if isinstance(e, dict)
                 and e.get("cat") == "transfer"
                 and isinstance(e.get("ts"), (int, float))
                 and isinstance(e.get("dur"), (int, float))
                 and isinstance(e.get("args"), dict)
                 and e["args"].get("streamed")]
    for event in events:
        if not isinstance(event, dict) \
                or event.get("cat") != "transfer-working-set":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not (isinstance(ts, (int, float))
                and isinstance(dur, (int, float))):
            continue
        for transfer in transfers:
            if transfer.get("tid") != event.get("tid"):
                continue
            start, end = transfer["ts"], transfer["ts"] + transfer["dur"]
            if start - _NEST_EPS_US <= ts and ts + dur <= end + _NEST_EPS_US:
                pair = (transfer["args"].get("key"),
                        transfer["args"].get("dst"))
                ends[pair] = max(ends.get(pair, float("-inf")), ts + dur)
    return ends


def _chain_windows(events: List[Any]) -> dict:
    """``tid -> [(ts, end, trace_id), ...]`` of every chain event."""
    windows: dict = {}
    for event in events:
        if not isinstance(event, dict) or event.get("cat") != "chain":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        args = event.get("args")
        if isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            trace_id = args.get("trace_id") if isinstance(args, dict) \
                else None
            windows.setdefault(event.get("tid"), []).append(
                (ts, ts + dur, trace_id))
    return windows


def _first_db_put_ends(events: List[Any]) -> dict:
    """``database -> earliest db-put end`` over every db-put event."""
    ends: dict = {}
    for event in events:
        if not isinstance(event, dict) or event.get("name") != "db-put":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        args = event.get("args")
        if not (isinstance(ts, (int, float))
                and isinstance(dur, (int, float))
                and isinstance(args, dict)):
            continue
        database = args.get("database")
        if not isinstance(database, str):
            continue
        end = ts + dur
        if database not in ends or end < ends[database]:
            ends[database] = end
    return ends


def validate_trace(payload: Any) -> List[str]:
    """All shape problems found in *payload*; empty means valid."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    invoke_windows = _invoke_windows(events)
    restore_windows = _restore_windows(events)
    working_set_ends = _working_set_ends(events)
    chain_windows = _chain_windows(events)
    db_put_ends = _first_db_put_ends(events)
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if not math.isfinite(ts) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        elif "ts" in event:
            problems.append(f"{where}: ts is not a number")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) \
                    or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0, "
                                f"got {dur!r}")
        if event.get("cat") == "placement":
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: placement event needs args")
                continue
            if not isinstance(args.get("host"), int):
                problems.append(f"{where}: placement event needs an integer "
                                f"args.host, got {args.get('host')!r}")
            if not isinstance(args.get("policy"), str):
                problems.append(f"{where}: placement event needs a string "
                                f"args.policy, got {args.get('policy')!r}")
            if args.get("source") not in ("builtin", "dsl"):
                problems.append(
                    f"{where}: placement event needs args.source of "
                    f"'builtin' or 'dsl', got {args.get('source')!r}")
        if event.get("cat") in ("retry", "failover"):
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: {event['cat']} event needs args")
                continue
            if event["cat"] == "retry":
                attempt = args.get("attempt")
                if not isinstance(attempt, int) or attempt < 1:
                    problems.append(
                        f"{where}: retry event needs an integer "
                        f"args.attempt >= 1, got {attempt!r}")
            else:
                from_host = args.get("from_host")
                if not isinstance(from_host, int):
                    problems.append(
                        f"{where}: failover event needs an integer "
                        f"args.from_host, got {from_host!r}")
            if not _nested_in_invoke(event, invoke_windows):
                problems.append(
                    f"{where}: {event['cat']} event is not nested inside "
                    "any invoke event on its tid")
        if event.get("cat") in ("prefetch", "demand-fault"):
            args = event.get("args")
            mb = args.get("mb") if isinstance(args, dict) else None
            if not isinstance(mb, (int, float)) or not math.isfinite(mb) \
                    or mb < 0:
                problems.append(
                    f"{where}: {event['cat']} event needs a finite "
                    f"args.mb >= 0, got {mb!r}")
            if not _nested_in_invoke(event, restore_windows):
                problems.append(
                    f"{where}: {event['cat']} event is not nested inside "
                    "any restore event on its tid")
        if event.get("cat") == "transfer" and isinstance(event.get("args"),
                                                         dict) \
                and event["args"].get("streamed"):
            pair = (event["args"].get("key"), event["args"].get("dst"))
            if pair not in working_set_ends:
                problems.append(
                    f"{where}: streamed transfer event has no nested "
                    "transfer-working-set event")
        if event.get("cat") == "chain":
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: chain event needs args")
                continue
            if not isinstance(args.get("dag"), str):
                problems.append(f"{where}: chain event needs a string "
                                f"args.dag, got {args.get('dag')!r}")
            if args.get("mode") not in ("guest", "orchestrated"):
                problems.append(
                    f"{where}: chain event needs args.mode of 'guest' or "
                    f"'orchestrated', got {args.get('mode')!r}")
            stages = args.get("stages")
            if not isinstance(stages, int) or stages < 0:
                problems.append(f"{where}: chain event needs an integer "
                                f"args.stages >= 0, got {stages!r}")
            e2e = args.get("end_to_end_ms")
            dur = event.get("dur")
            if not isinstance(e2e, (int, float)) or not math.isfinite(e2e) \
                    or e2e < 0:
                problems.append(
                    f"{where}: chain event needs a finite "
                    f"args.end_to_end_ms >= 0, got {e2e!r}")
            elif isinstance(dur, (int, float)) \
                    and abs(e2e * 1000.0 - dur) > _NEST_EPS_US:
                problems.append(
                    f"{where}: chain end_to_end_ms {e2e} does not match "
                    f"the event duration {dur}us — the chain root span "
                    "must be exactly the end-to-end latency")
        if event.get("cat") == "stage":
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: stage event needs args")
                continue
            for key in ("stage", "function", "chain"):
                if not isinstance(args.get(key), str) or not args.get(key):
                    problems.append(
                        f"{where}: stage event needs a non-empty string "
                        f"args.{key}, got {args.get(key)!r}")
            ts = event.get("ts")
            dur = event.get("dur") if isinstance(event.get("dur"),
                                                 (int, float)) else 0.0
            chain_id = args.get("chain")
            nested = isinstance(ts, (int, float)) and any(
                start - _NEST_EPS_US <= ts
                and ts + dur <= end + _NEST_EPS_US
                and trace_id == chain_id
                for start, end, trace_id in
                chain_windows.get(event.get("tid"), ()))
            if not nested:
                problems.append(
                    f"{where}: stage event is not nested inside chain "
                    f"{chain_id!r} on its tid")
        if event.get("cat") == "db-trigger":
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: db-trigger event needs args")
                continue
            for key in ("database", "function"):
                if not isinstance(args.get(key), str) or not args.get(key):
                    problems.append(
                        f"{where}: db-trigger event needs a non-empty "
                        f"string args.{key}, got {args.get(key)!r}")
            database = args.get("database")
            ts = event.get("ts")
            first_put = db_put_ends.get(database) \
                if isinstance(database, str) else None
            if first_put is None:
                problems.append(
                    f"{where}: db-trigger for {database!r} has no db-put "
                    "event to that database anywhere in the trace")
            elif isinstance(ts, (int, float)) \
                    and ts + _NEST_EPS_US < first_put:
                problems.append(
                    f"{where}: db-trigger for {database!r} starts at {ts} "
                    f"before the first db-put to it ends at {first_put} — "
                    "a change feed cannot fire before any write")
        if event.get("cat") == "transfer-residual":
            args = event.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: transfer-residual event needs "
                                "args")
                continue
            pair = (args.get("key"), args.get("dst"))
            ws_end = working_set_ends.get(pair)
            ts = event.get("ts")
            if ws_end is not None and isinstance(ts, (int, float)) \
                    and ts + _NEST_EPS_US < ws_end:
                problems.append(
                    f"{where}: transfer-residual for {pair!r} starts at "
                    f"{ts} before its working-set portion ends at {ws_end} "
                    "(the working set must move first)")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the exit code."""
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 1
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {argv[1]}: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace(payload)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"{argv[1]}: valid trace_event JSON "
          f"({len(payload['traceEvents'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
