#!/usr/bin/env python3
"""Validate the named-scenario library under ``scenarios/``.

Usage: ``python tools/validate_scenarios.py [directory]``

Every scenario document must load through the schema
(``repro.serve.scenarios.load_scenario_library``: known experiment ids,
filename == name, no duplicates), round-trip exactly through
``dump_scenario``, and point its ``docs`` entries at files that exist.
The whole library must also cover every engine experiment id, so no
experiment is unreachable by name.  CI runs this so a broken scenario
fails the build at review time rather than at the first
``repro run <name>`` or ``POST /experiments``.

Exit code 0 when the library is valid, 1 otherwise (problems on
stderr).
"""

from __future__ import annotations

import os
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def validate_scenario_dir(directory: str) -> List[str]:
    """All problems found across *directory*'s documents; empty = valid."""
    from repro.bench.engine import experiment_ids
    from repro.errors import ValidationError
    from repro.serve.scenarios import (dump_scenario, load_scenario,
                                       load_scenario_library)
    problems: List[str] = []
    try:
        library = load_scenario_library(directory)
    except ValidationError as exc:
        return [str(exc)]
    if not library:
        return [f"{directory}: no scenario documents found"]

    covered = set()
    for scenario in library.values():
        covered.update(scenario.experiments)
        if load_scenario(dump_scenario(scenario)) != scenario:
            problems.append(
                f"{scenario.name}: does not round-trip through "
                "dump_scenario")
        for doc in scenario.docs:
            if not os.path.isfile(os.path.join(REPO_ROOT, doc)):
                problems.append(
                    f"{scenario.name}: docs entry {doc!r} does not exist")

    missing = set(experiment_ids()) - covered
    if missing:
        problems.append(
            "experiments unreachable from any scenario: "
            + ", ".join(sorted(missing)))
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the exit code."""
    if len(argv) > 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 1
    if len(argv) == 2:
        directory = argv[1]
    else:
        from repro.serve.scenarios import default_library_root
        directory = str(default_library_root())
    if not os.path.isdir(directory):
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 1
    problems = validate_scenario_dir(directory)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems:
        return 1
    from repro.serve.scenarios import load_scenario_library
    library = load_scenario_library(directory)
    print(f"{directory}: {len(library)} scenarios valid, "
          "every experiment covered")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
