#!/usr/bin/env python3
"""Wall-clock benchmarks: the experiment engine and the DES kernel.

Default mode times the full ``figure all`` suite three ways — serial
compute, parallel compute (``--jobs N``), and a fully cache-hit rerun —
plus the Fig 10 consolidation driver on its own (the hot path the
incremental PSS accounting optimizes).  Results land in
``BENCH_harness.json``.

``--des`` runs the DES-kernel suite instead: timer/process churn and
cascade microbenchmarks (events/sec), a heavy open-loop load replay
(events/sec, invocations/sec, peak RSS), and a result-codec comparison
(binary vs JSON).  Results land in ``BENCH_des.json`` next to the
recorded pre-rewrite baseline, so the before/after ratio is always in
the artifact.

``--des-smoke`` is the CI guard: one quick churn bench plus a seeded
load shard, asserting a *conservative* events/sec floor (exit 1 below
it).  The floor is far under the measured rate on purpose — CI machines
are slow and noisy; the floor catches order-of-magnitude regressions
(an accidental O(n) scan in the scheduler), not percent-level drift.

Each configuration runs in a *fresh subprocess* so import caching and
allocator warm-up in this process can't flatter any configuration;
microbenchmarks additionally take the best of several in-process
repetitions because CPU frequency scaling makes single runs drift.

Usage::

    PYTHONPATH=src python tools/bench_wallclock.py [--jobs N] [--out FILE]
    PYTHONPATH=src python tools/bench_wallclock.py --des [--out FILE]
    PYTHONPATH=src python tools/bench_wallclock.py --des-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _engine_child(cache_dir: str, jobs: int) -> str:
    return (
        "import time\n"
        "from repro.bench.engine import run_experiments\n"
        "t0 = time.perf_counter()\n"
        f"outcome = run_experiments(['all'], jobs={jobs}, "
        f"cache_dir={cache_dir!r})\n"
        "import json, sys\n"
        "json.dump({'elapsed_s': time.perf_counter() - t0,\n"
        "           'shards': outcome.stats.shards_total,\n"
        "           'cache_hits': outcome.stats.cache_hits},\n"
        "          sys.stdout)\n"
    )


def _run_child(code: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


def bench_engine(jobs: int) -> dict:
    """Serial vs parallel vs cache-hit timings of ``figure all``."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_dir = str(Path(tmp) / "serial")
        parallel_dir = str(Path(tmp) / "parallel")

        serial = _run_child(_engine_child(serial_dir, jobs=1))
        parallel = _run_child(_engine_child(parallel_dir, jobs=jobs))
        # Rerun against the serial run's populated cache: every shard hits.
        cached = _run_child(_engine_child(serial_dir, jobs=jobs))
        assert cached["cache_hits"] == cached["shards"], cached

    return {
        "shards": serial["shards"],
        "serial_s": round(serial["elapsed_s"], 3),
        "parallel_s": round(parallel["elapsed_s"], 3),
        "cached_s": round(cached["elapsed_s"], 3),
        "parallel_jobs": jobs,
        "parallel_speedup_x":
            round(serial["elapsed_s"] / parallel["elapsed_s"], 2),
        "cached_speedup_x":
            round(serial["elapsed_s"] / cached["elapsed_s"], 2),
    }


def bench_fig10(max_vms: int = 800) -> dict:
    """Time the Fig 10 consolidation loop (incremental-PSS hot path)."""
    code = (
        "import time\n"
        "from repro.bench.memory import run_fig10\n"
        f"t0 = time.perf_counter()\n"
        f"series = run_fig10(max_vms={max_vms})\n"
        "elapsed = time.perf_counter() - t0\n"
        "import json, sys\n"
        "json.dump({'elapsed_s': elapsed,\n"
        "           'max_vms_before_swap': {p: s.max_vms_before_swap\n"
        "                                   for p, s in series.items()}},\n"
        "          sys.stdout)\n"
    )
    result = _run_child(code)
    return {
        "max_vms": max_vms,
        "elapsed_s": round(result["elapsed_s"], 3),
        "max_vms_before_swap": result["max_vms_before_swap"],
    }


# ---------------------------------------------------------------------------
# DES kernel suite (--des / --des-smoke)
# ---------------------------------------------------------------------------

#: Pre-rewrite kernel numbers, measured on the same machine and Python
#: (3.11) that produced the committed "after" numbers, at the commit
#: before the calendar-queue rewrite.  Workload shapes match the
#: corresponding "after" benches exactly (same event counts, same
#: pending depths, same load-replay configuration).
DES_BASELINE = {
    "note": ("single-heap kernel + per-event Timeout construction, "
             "measured with this harness's workload shapes before the "
             "calendar-queue rewrite"),
    "generic_churn_small_ev_per_s": 375_506.0,
    "generic_churn_10k_ev_per_s": 347_416.0,
    "generic_churn_500k_ev_per_s": 312_517.0,
    "process_churn_ev_per_s": 305_177.0,
    "zero_delay_cascade_ev_per_s": 434_180.0,
    "mixed_cascade_ev_per_s": 440_905.0,
    "replay_events_per_s": 35_378.0,
    "replay_invocations_per_s": 2_428.0,
    "replay_peak_rss_mib": 71.18,
}

#: Conservative CI floors (events/sec) for --des-smoke: far below the
#: measured rates so slow, noisy CI runners pass, but an accidental
#: O(n)-scan regression in the scheduler still fails loudly.
SMOKE_CHURN_FLOOR_EV_S = 60_000.0
SMOKE_REPLAY_FLOOR_EV_S = 8_000.0


def _des_generic_churn(n_events: int, n_pending: int,
                       delay: float = 1.0) -> dict:
    """Self-rescheduling timers through the generic timeout+callback API.

    *n_pending* timers stay live the whole run (queue depth stays at
    about that), each firing and re-arming until *n_events* fire.
    """
    import time

    from repro.sim import Simulation
    sim = Simulation()
    fired = [0]

    def make_cb():
        def cb(event):
            fired[0] += 1
            if fired[0] + n_pending <= n_events:
                t = sim.timeout(delay)
                t.callbacks.append(cb)
        return cb

    for _ in range(n_pending):
        t = sim.timeout(delay)
        t.callbacks.append(make_cb())
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"events": fired[0], "elapsed_s": elapsed,
            "events_per_s": fired[0] / elapsed}


def _des_fastpath_churn(n_events: int, n_pending: int,
                        delay: float = 1.0) -> dict:
    """Same churn shape through the pooled ``schedule_timeout`` fast path."""
    import time

    from repro.sim import Simulation
    sim = Simulation()
    fired = [0]

    def cb(_value):
        fired[0] += 1
        if fired[0] + n_pending <= n_events:
            sim.schedule_timeout(delay, cb)

    for _ in range(n_pending):
        sim.schedule_timeout(delay, cb)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"events": fired[0], "elapsed_s": elapsed,
            "events_per_s": fired[0] / elapsed}


def _des_cascade(n_events: int, delays: tuple) -> dict:
    """Chained timeouts cycling through *delays* (generic API)."""
    import time

    from repro.sim import Simulation
    sim = Simulation()
    chains = 512
    fired = [0]

    def cb(event):
        k = fired[0] = fired[0] + 1
        if k + chains <= n_events:
            t = sim.timeout(delays[k % len(delays)])
            t.callbacks.append(cb)

    for i in range(chains):
        t = sim.timeout(delays[i % len(delays)])
        t.callbacks.append(cb)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"events": fired[0], "elapsed_s": elapsed,
            "events_per_s": fired[0] / elapsed}


def _des_process_churn(n_procs: int, wakes: int) -> dict:
    """Generator processes sleeping in loops — the platform idiom."""
    import time

    from repro.sim import Simulation
    sim = Simulation()

    def proc():
        for _ in range(wakes):
            yield sim.timeout(1.0)

    for _ in range(n_procs):
        sim.process(proc())
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    events = n_procs * (wakes + 1)
    return {"events": events, "elapsed_s": elapsed,
            "events_per_s": events / elapsed}


def _des_replay(duration_ms: float = 60_000.0,
                popular_interarrival_ms: float = 20.0,
                n_hosts: int = 4, n_functions: int = 12) -> dict:
    """Heavy open-loop load replay: the end-to-end number.

    Counts events as scheduled entries (``sim._sequence``) to match how
    the pre-rewrite baseline was measured.
    """
    import resource
    import time

    from repro.bench.load import run_load_platform
    t0 = time.perf_counter()
    outcome, platform = run_load_platform(
        "fireworks", "predictive", n_hosts=n_hosts,
        n_functions=n_functions, duration_ms=duration_ms, seed=7,
        popular_interarrival_ms=popular_interarrival_ms,
        return_platform=True)
    elapsed = time.perf_counter() - t0
    events = platform.sim._sequence
    peak_rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {"requests": outcome.requests,
            "completed": outcome.completed,
            "shed": outcome.shed,
            "events": events,
            "events_processed": platform.sim.events_processed,
            "elapsed_s": elapsed,
            "events_per_s": events / elapsed,
            "invocations_per_s": outcome.completed / elapsed,
            "p99_ms": outcome.latency.p99_ms,
            "peak_rss_mib": round(peak_rss_mib, 2)}


def _des_codec() -> dict:
    """Binary vs JSON result codec on a replay-shaped payload."""
    import json as json_module
    import time

    from repro.bench.load import run_load_platform
    from repro.bench.serialization import (decode_result, dumps_result,
                                           encode_result, loads_result)
    outcome = run_load_platform("fireworks", "predictive", n_hosts=2,
                                n_functions=6, duration_ms=8_000.0, seed=7)
    # A merged load experiment is a dict of outcomes; pad it out so the
    # codec has representative bulk (float-heavy nested dataclasses).
    payload = {f"row-{i}": outcome for i in range(200)}

    t0 = time.perf_counter()
    blob = dumps_result(payload)
    binary_enc_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    loads_result(blob)
    binary_dec_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    text = json_module.dumps(encode_result(payload),
                             separators=(",", ":"))
    json_enc_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    decode_result(json_module.loads(text))
    json_dec_s = time.perf_counter() - t0

    return {"binary_bytes": len(blob),
            "json_bytes": len(text.encode("utf-8")),
            "size_ratio": round(len(text.encode("utf-8")) / len(blob), 3),
            "binary_encode_s": round(binary_enc_s, 6),
            "binary_decode_s": round(binary_dec_s, 6),
            "json_encode_s": round(json_enc_s, 6),
            "json_decode_s": round(json_dec_s, 6)}


#: name -> (callable, kwargs, repetitions).  Microbenches repeat and keep
#: the best rate (frequency scaling makes single runs drift 2x); the
#: replay and codec benches are long enough to run once.
DES_BENCHES = {
    "generic_churn_small": (_des_generic_churn,
                            {"n_events": 200_000, "n_pending": 1}, 3),
    "generic_churn_10k": (_des_generic_churn,
                          {"n_events": 200_000, "n_pending": 10_000}, 3),
    "generic_churn_500k": (_des_generic_churn,
                           {"n_events": 1_000_000, "n_pending": 500_000}, 2),
    "fastpath_churn": (_des_fastpath_churn,
                       {"n_events": 200_000, "n_pending": 1}, 3),
    "zero_delay_cascade": (_des_cascade,
                           {"n_events": 200_000, "delays": (0.0,)}, 3),
    "mixed_cascade": (_des_cascade,
                      {"n_events": 200_000, "delays": (0.0, 1.0)}, 3),
    "process_churn": (_des_process_churn,
                      {"n_procs": 2_000, "wakes": 100}, 3),
    "replay": (_des_replay, {}, 1),
    "codec": (_des_codec, {}, 1),
}


def _des_child(name: str) -> int:
    """Hidden child mode: run one DES bench, print its best-of-reps JSON."""
    fn, kwargs, reps = DES_BENCHES[name]
    best = None
    for _ in range(reps):
        result = fn(**kwargs)
        if best is None or result.get("events_per_s",
                                      0) > best.get("events_per_s", 0):
            best = result
    json.dump(best, sys.stdout)
    return 0


def _run_des_bench(name: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--child-des", name],
        env=env, capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


def run_des_suite(out_path: str) -> int:
    """The full DES suite -> BENCH_des.json with before/after ratios."""
    after = {}
    for name in DES_BENCHES:
        print(f"des: {name} ...", flush=True)
        after[name] = _run_des_bench(name)
        if "events_per_s" in after[name]:
            print(f"  {after[name]['events_per_s']:12,.0f} ev/s")
        else:
            print(f"  binary {after[name]['binary_bytes']:,}B vs "
                  f"json {after[name]['json_bytes']:,}B "
                  f"({after[name]['size_ratio']}x)")

    speedups = {}
    for bench, baseline_key in (
            ("generic_churn_small", "generic_churn_small_ev_per_s"),
            ("generic_churn_10k", "generic_churn_10k_ev_per_s"),
            ("generic_churn_500k", "generic_churn_500k_ev_per_s"),
            ("zero_delay_cascade", "zero_delay_cascade_ev_per_s"),
            ("mixed_cascade", "mixed_cascade_ev_per_s"),
            ("process_churn", "process_churn_ev_per_s")):
        speedups[bench] = round(
            after[bench]["events_per_s"] / DES_BASELINE[baseline_key], 2)
    speedups["replay_events"] = round(
        after["replay"]["events_per_s"] / DES_BASELINE["replay_events_per_s"],
        2)
    speedups["replay_invocations"] = round(
        after["replay"]["invocations_per_s"]
        / DES_BASELINE["replay_invocations_per_s"], 2)

    payload = {
        "benchmark": "repro.sim DES kernel wall-clock",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "note": ("microbench rates are best-of-N fresh-subprocess runs; "
                 "single runs drift ~2x with CPU frequency scaling"),
        "before": DES_BASELINE,
        "after": after,
        "speedup_x": speedups,
    }
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    for bench, ratio in speedups.items():
        print(f"  {bench:<22} {ratio:5.2f}x")
    return 0


def run_des_smoke() -> int:
    """CI guard: quick churn + seeded load shard vs conservative floors."""
    churn = _des_generic_churn(n_events=100_000, n_pending=1)
    print(f"smoke churn: {churn['events_per_s']:,.0f} ev/s "
          f"(floor {SMOKE_CHURN_FLOOR_EV_S:,.0f})")
    replay = _des_replay(duration_ms=8_000.0, popular_interarrival_ms=50.0,
                         n_hosts=2, n_functions=6)
    print(f"smoke replay: {replay['events_per_s']:,.0f} ev/s, "
          f"{replay['invocations_per_s']:,.0f} inv/s "
          f"(floor {SMOKE_REPLAY_FLOOR_EV_S:,.0f})")
    ok = True
    if churn["events_per_s"] < SMOKE_CHURN_FLOOR_EV_S:
        print("FAIL: churn throughput below floor", file=sys.stderr)
        ok = False
    if replay["events_per_s"] < SMOKE_REPLAY_FLOOR_EV_S:
        print("FAIL: replay throughput below floor", file=sys.stderr)
        ok = False
    if replay["completed"] == 0:
        print("FAIL: replay completed no invocations", file=sys.stderr)
        ok = False
    print("perf smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel run (default 4)")
    parser.add_argument("--out", default=None,
                        help="output JSON (default BENCH_harness.json, or "
                             "BENCH_des.json with --des)")
    parser.add_argument("--des", action="store_true",
                        help="run the DES kernel suite instead")
    parser.add_argument("--des-smoke", action="store_true",
                        help="quick CI floor check (exit 1 on regression)")
    parser.add_argument("--child-des", default=None, metavar="BENCH",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child_des:
        return _des_child(args.child_des)
    if args.des_smoke:
        return run_des_smoke()
    if args.des:
        return run_des_suite(args.out or str(REPO_ROOT / "BENCH_des.json"))
    args.out = args.out or str(REPO_ROOT / "BENCH_harness.json")

    print(f"engine: figure all, jobs=1 vs jobs={args.jobs} vs cache-hit "
          f"(cpu_count={os.cpu_count()}) ...", flush=True)
    engine = bench_engine(args.jobs)
    print(f"  serial   {engine['serial_s']:7.2f}s  ({engine['shards']} "
          "shards)")
    print(f"  parallel {engine['parallel_s']:7.2f}s  "
          f"({engine['parallel_speedup_x']}x)")
    print(f"  cached   {engine['cached_s']:7.2f}s  "
          f"({engine['cached_speedup_x']}x)")

    print("fig10: run_fig10(max_vms=800) ...", flush=True)
    fig10 = bench_fig10()
    print(f"  {fig10['elapsed_s']:.2f}s, swap points "
          f"{fig10['max_vms_before_swap']}")

    payload = {
        "benchmark": "repro.bench.engine wall-clock",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "note": ("parallel speedup scales with available cores; on a "
                 "single-core host the parallel run only measures pool "
                 "overhead"),
        "engine": engine,
        "fig10": fig10,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
