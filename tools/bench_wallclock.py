#!/usr/bin/env python3
"""Wall-clock benchmark of the parallel experiment engine.

Times the full ``figure all`` suite three ways — serial compute, parallel
compute (``--jobs N``), and a fully cache-hit rerun — plus the Fig 10
consolidation driver on its own (the hot path the incremental PSS
accounting optimizes).  Results land in ``BENCH_harness.json``.

Each engine configuration runs in a *fresh subprocess* so import caching
and allocator warm-up in this process can't flatter any configuration.

Usage::

    PYTHONPATH=src python tools/bench_wallclock.py [--jobs N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _engine_child(cache_dir: str, jobs: int) -> str:
    return (
        "import time\n"
        "from repro.bench.engine import run_experiments\n"
        "t0 = time.perf_counter()\n"
        f"outcome = run_experiments(['all'], jobs={jobs}, "
        f"cache_dir={cache_dir!r})\n"
        "import json, sys\n"
        "json.dump({'elapsed_s': time.perf_counter() - t0,\n"
        "           'shards': outcome.stats.shards_total,\n"
        "           'cache_hits': outcome.stats.cache_hits},\n"
        "          sys.stdout)\n"
    )


def _run_child(code: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


def bench_engine(jobs: int) -> dict:
    """Serial vs parallel vs cache-hit timings of ``figure all``."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_dir = str(Path(tmp) / "serial")
        parallel_dir = str(Path(tmp) / "parallel")

        serial = _run_child(_engine_child(serial_dir, jobs=1))
        parallel = _run_child(_engine_child(parallel_dir, jobs=jobs))
        # Rerun against the serial run's populated cache: every shard hits.
        cached = _run_child(_engine_child(serial_dir, jobs=jobs))
        assert cached["cache_hits"] == cached["shards"], cached

    return {
        "shards": serial["shards"],
        "serial_s": round(serial["elapsed_s"], 3),
        "parallel_s": round(parallel["elapsed_s"], 3),
        "cached_s": round(cached["elapsed_s"], 3),
        "parallel_jobs": jobs,
        "parallel_speedup_x":
            round(serial["elapsed_s"] / parallel["elapsed_s"], 2),
        "cached_speedup_x":
            round(serial["elapsed_s"] / cached["elapsed_s"], 2),
    }


def bench_fig10(max_vms: int = 800) -> dict:
    """Time the Fig 10 consolidation loop (incremental-PSS hot path)."""
    code = (
        "import time\n"
        "from repro.bench.memory import run_fig10\n"
        f"t0 = time.perf_counter()\n"
        f"series = run_fig10(max_vms={max_vms})\n"
        "elapsed = time.perf_counter() - t0\n"
        "import json, sys\n"
        "json.dump({'elapsed_s': elapsed,\n"
        "           'max_vms_before_swap': {p: s.max_vms_before_swap\n"
        "                                   for p, s in series.items()}},\n"
        "          sys.stdout)\n"
    )
    result = _run_child(code)
    return {
        "max_vms": max_vms,
        "elapsed_s": round(result["elapsed_s"], 3),
        "max_vms_before_swap": result["max_vms_before_swap"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel run (default 4)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_harness.json"))
    args = parser.parse_args(argv)

    print(f"engine: figure all, jobs=1 vs jobs={args.jobs} vs cache-hit "
          f"(cpu_count={os.cpu_count()}) ...", flush=True)
    engine = bench_engine(args.jobs)
    print(f"  serial   {engine['serial_s']:7.2f}s  ({engine['shards']} "
          "shards)")
    print(f"  parallel {engine['parallel_s']:7.2f}s  "
          f"({engine['parallel_speedup_x']}x)")
    print(f"  cached   {engine['cached_s']:7.2f}s  "
          f"({engine['cached_speedup_x']}x)")

    print("fig10: run_fig10(max_vms=800) ...", flush=True)
    fig10 = bench_fig10()
    print(f"  {fig10['elapsed_s']:.2f}s, swap points "
          f"{fig10['max_vms_before_swap']}")

    payload = {
        "benchmark": "repro.bench.engine wall-clock",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "note": ("parallel speedup scales with available cores; on a "
                 "single-core host the parallel run only measures pool "
                 "overhead"),
        "engine": engine,
        "fig10": fig10,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
