#!/usr/bin/env python3
"""Validate every shipped policy document under ``scenarios/policies/``.

Usage: ``python tools/validate_policies.py [directory]``

Each ``*.json`` file must parse, compile through the ``repro.policy``
DSL compiler, and register without a name collision — exactly what
``load_policy_dir`` enforces at runtime.  CI runs this so a malformed
or duplicate document fails the build at review time rather than the
first ``repro search`` invocation.

Exit code 0 when every document is valid, 1 otherwise (problems on
stderr).
"""

from __future__ import annotations

import json
import os
import sys
from typing import List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def validate_policy_dir(directory: str) -> List[str]:
    """All problems found across *directory*'s documents; empty = valid."""
    from repro.errors import ValidationError
    from repro.policy import compile_policy
    problems: List[str] = []
    names = {}
    files = sorted(name for name in os.listdir(directory)
                   if name.endswith(".json"))
    if not files:
        return [f"{directory}: no policy documents found"]
    for filename in files:
        path = os.path.join(directory, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            problems.append(f"{filename}: cannot load: {exc}")
            continue
        try:
            compiled = compile_policy(document)
        except ValidationError as exc:
            problems.append(f"{filename}: {exc}")
            continue
        key = (compiled.domain, compiled.name)
        if key in names:
            problems.append(
                f"{filename}: duplicate {compiled.domain} policy "
                f"{compiled.name!r} (also in {names[key]})")
        else:
            names[key] = filename
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the exit code."""
    if len(argv) > 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 1
    if len(argv) == 2:
        directory = argv[1]
    else:
        from repro.policy import shipped_policy_dir
        directory = shipped_policy_dir()
    if not os.path.isdir(directory):
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 1
    problems = validate_policy_dir(directory)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems:
        return 1
    count = sum(1 for name in os.listdir(directory)
                if name.endswith(".json"))
    print(f"{directory}: {count} policy documents valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
